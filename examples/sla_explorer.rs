//! SLA explorer: sweep a latency SLA from strict to relaxed and watch the
//! warehouse slide along the performance/cost Pareto frontier (Figure 2 of
//! the paper), choosing cheaper configurations as the SLA loosens.
//!
//! ```sh
//! cargo run --release --example sla_explorer
//! ```

use cost_intel::types::SimDuration;
use cost_intel::workload::CabGenerator;
use cost_intel::{Constraint, Warehouse, WarehouseConfig};

const SQL: &str = "SELECT c_segment, p_category, SUM(l_price) AS revenue \
                   FROM lineitem l \
                   JOIN orders o ON l.l_order = o.o_id \
                   JOIN customer c ON o.o_cust = c.c_id \
                   JOIN part p ON l.l_part = p.p_id \
                   WHERE l_discount < 0.08 GROUP BY c_segment, p_category";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let catalog = CabGenerator::at_scale(0.5).build_catalog()?;
    let mut warehouse = Warehouse::new(catalog, WarehouseConfig::default());

    println!("4-way star join, sweeping the latency SLA:\n");
    println!(
        "{:>10} | {:>12} | {:>10} | {:>9} | {:>7} | dops",
        "SLA", "latency", "cost", "pred lat", "SLA met"
    );
    println!("{}", "-".repeat(78));

    for sla_ms in [1_000u64, 2_000, 4_000, 8_000, 16_000, 60_000] {
        let sla = SimDuration::from_millis(sla_ms);
        let report = warehouse.submit(SQL, Constraint::LatencySla(sla))?;
        println!(
            "{:>10} | {:>12} | {:>10} | {:>9} | {:>7} | {:?}",
            format!("{sla}"),
            format!("{}", report.latency),
            format!("{}", report.cost.round_cents()),
            format!("{}", report.predicted_latency),
            report.constraint_met,
            report.dops,
        );
    }

    println!(
        "\nTighter SLAs buy parallelism (higher DOPs, higher cost); relaxed \
         SLAs fall back to cheap narrow clusters — the Figure-2 trade-off, \
         made by the system instead of the user."
    );
    println!(
        "\nTotal session spend: {}",
        warehouse.total_spend().round_cents()
    );
    Ok(())
}
