//! Quickstart: open a cost-intelligent warehouse, run a query under a
//! latency SLA, and read the bill next to the prediction.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cost_intel::types::SimDuration;
use cost_intel::workload::CabGenerator;
use cost_intel::{Constraint, Warehouse, WarehouseConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate the CAB star schema (scale factor 0.5: ~100k orders,
    // ~400k lineitems) and open a warehouse over it. No T-shirt sizes —
    // the warehouse deploys resources per query (§2 of the paper).
    let catalog = CabGenerator::at_scale(0.5).build_catalog()?;
    let mut warehouse = Warehouse::new(catalog, WarehouseConfig::default());

    // Revenue by region, with a 5-second latency SLA. The optimizer finds
    // the cheapest distributed plan + DOP assignment predicted to meet it.
    let report = warehouse.submit(
        "SELECT c_region, SUM(o_total) AS revenue, COUNT(*) AS orders \
         FROM orders o JOIN customer c ON o.o_cust = c.c_id \
         WHERE o_date >= 1200 GROUP BY c_region ORDER BY revenue DESC",
        Constraint::LatencySla(SimDuration::from_secs(5)),
    )?;

    println!("== results ==");
    for row in 0..report.result.rows() {
        let vals = report.result.row(row);
        println!("  {} revenue={} orders={}", vals[0], vals[1], vals[2]);
    }

    println!("\n== cost intelligence ==");
    println!("  {}", report.summary());
    println!("  per-pipeline DOPs chosen: {:?}", report.dops);
    println!("  SLA met: {}", report.constraint_met);
    println!("\n== physical plan ==\n{}", report.plan_text);

    // The same query under a tight budget instead: the optimizer trades
    // latency for dollars along the same Pareto frontier (Figure 2).
    let frugal = warehouse.submit(
        "SELECT c_region, SUM(o_total) AS revenue, COUNT(*) AS orders \
         FROM orders o JOIN customer c ON o.o_cust = c.c_id \
         WHERE o_date >= 1200 GROUP BY c_region ORDER BY revenue DESC",
        Constraint::Budget(cost_intel::types::Dollars::new(0.002)),
    )?;
    println!("== same query, $0.002 budget ==");
    println!("  {}", frugal.summary());
    println!("  DOPs: {:?}", frugal.dops);

    Ok(())
}
