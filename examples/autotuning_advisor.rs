//! Auto-tuning advisor: replay a recurring workload, let the Statistics
//! Service learn it, ask the What-If Service for dollar-denominated tuning
//! proposals (§4 of the paper), apply the accepted ones on background
//! compute, and verify the savings materialize.
//!
//! ```sh
//! cargo run --release --example autotuning_advisor
//! ```

use cost_intel::autotune::TuningAction;
use cost_intel::workload::{CabGenerator, TraceConfig, WorkloadTrace};
use cost_intel::{Constraint, Warehouse, WarehouseConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gen = CabGenerator::at_scale(0.3);
    let catalog = gen.build_catalog()?;
    let mut warehouse = Warehouse::new(catalog, WarehouseConfig::default());

    // A day of recurring dashboards (Q3 revenue-by-region, Q6 forecast)
    // plus some ad-hoc exploration.
    let trace = WorkloadTrace::generate(
        &TraceConfig {
            hours: 24.0,
            recurring_per_hour: 12.0,
            adhoc_per_hour: 2.0,
            recurring_templates: vec![3, 6],
            seed: 11,
        },
        &gen,
    );
    println!(
        "replaying {} queries over 24h of virtual time...",
        trace.len()
    );
    let reports = warehouse.run_trace(&trace, Constraint::MinCost)?;
    let before_spend: f64 = reports.iter().map(|r| r.cost.amount()).sum();
    let per_query_before = before_spend / reports.len() as f64;
    println!("  workload spend: ${before_spend:.4} (${per_query_before:.6}/query)\n");

    // The advisor: statistics -> prediction -> what-if, all in dollars.
    println!("== tuning proposals ==");
    let proposals = warehouse.tuning_proposals()?;
    for p in &proposals {
        println!("  {}", p.narrative);
    }

    // Apply what the what-if service accepted.
    let accepted: Vec<TuningAction> = proposals
        .iter()
        .filter(|p| p.accepted)
        .map(|p| p.action.clone())
        .collect();
    if accepted.is_empty() {
        println!("\nno profitable actions — workload too light to tune.");
        return Ok(());
    }
    println!(
        "\n== applying {} accepted action(s) on background compute ==",
        accepted.len()
    );
    for action in &accepted {
        match warehouse.apply(action) {
            Ok(bill) => println!("  applied {} for {}", action.label(), bill.round_cents()),
            Err(e) => println!("  skipped {}: {e}", action.label()),
        }
    }

    // Replay the same recurring workload: the bill should shrink.
    let trace2 = WorkloadTrace::generate(
        &TraceConfig {
            hours: 24.0,
            recurring_per_hour: 12.0,
            adhoc_per_hour: 2.0,
            recurring_templates: vec![3, 6],
            seed: 12,
        },
        &gen,
    );
    let reports2 = warehouse.run_trace(&trace2, Constraint::MinCost)?;
    let after_spend: f64 = reports2.iter().map(|r| r.cost.amount()).sum();
    let per_query_after = after_spend / reports2.len() as f64;
    let mv_hits = reports2.iter().filter(|r| r.used_mv.is_some()).count();

    println!("\n== verification ==");
    println!("  next day's spend: ${after_spend:.4} (${per_query_after:.6}/query)");
    println!(
        "  queries answered by materialized views: {mv_hits}/{}",
        reports2.len()
    );
    println!(
        "  per-query saving: {:.1}%",
        (1.0 - per_query_after / per_query_before) * 100.0
    );
    Ok(())
}
