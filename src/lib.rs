//! `cost-intel` — a cost-intelligent cloud data warehouse.
//!
//! This is the umbrella crate: it re-exports the [`ci_core`] facade (the
//! `Warehouse`) plus every subsystem crate, so applications can depend on one
//! package. See the README for a tour and `examples/` for runnable programs.
//!
//! Reproduction of *Cost-Intelligent Data Analytics in the Cloud* (CIDR 2024).

pub use ci_core::*;

/// Subsystem crates, re-exported for advanced users who want to drive
/// individual components (e.g. only the cost estimator, or only the
/// simulated cloud) without the full warehouse facade.
pub mod crates {
    pub use ci_autotune as autotune;
    pub use ci_catalog as catalog;
    pub use ci_cloud as cloud;
    pub use ci_cost as cost;
    pub use ci_exec as exec;
    pub use ci_monitor as monitor;
    pub use ci_optimizer as optimizer;
    pub use ci_plan as plan;
    pub use ci_sql as sql;
    pub use ci_storage as storage;
    pub use ci_types as types;
    pub use ci_workload as workload;
}
