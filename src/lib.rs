//! `cost-intel` — a cost-intelligent cloud data warehouse.
//!
//! This is the umbrella crate: it re-exports the [`ci_core`] facade (the
//! `Warehouse`) plus every subsystem crate, so applications can depend on one
//! package. See the README for a tour and `examples/` for runnable programs.
//!
//! Reproduction of *Cost-Intelligent Data Analytics in the Cloud* (CIDR 2024).
//!
//! Subsystems are available at the top level — `cost_intel::storage`,
//! `cost_intel::optimizer`, `cost_intel::autotune`, … — for users who want to
//! drive individual components (e.g. only the cost estimator, or only the
//! simulated cloud) without the full warehouse facade. The glob picks the
//! aliases up from [`ci_core`], which maintains the canonical subsystem list.

pub use ci_core::*;
