//! The calibrate-from-reality loop, end to end: run a query on the parallel
//! runtime, aggregate its measured operator samples into
//! [`ci_cost::MeasuredRates`], and seed a [`ci_cost::CostEstimator`] from
//! them.
//!
//! This is the workspace-level closure of §3.1's hardware calibration: the
//! engine and the estimator are DAG siblings, so the umbrella crate is where
//! measured rates flow from one into the other.

use std::sync::Arc;

use ci_catalog::{Catalog, ErrorInjector};
use ci_cost::{CostEstimator, EstimatorConfig, MeasuredRates};
use ci_exec::{ExecutionConfig, ExecutionMode, Executor, NoScaling};
use ci_plan::{bind, JoinTree, PhysicalPlan, PipelineGraph};
use ci_sql::parse;
use ci_storage::batch::RecordBatch;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema};
use ci_storage::table::TableBuilder;
use ci_storage::value::DataType;
use ci_types::TableId;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let orders = Arc::new(Schema::of(vec![
        Field::new("o_id", DataType::Int64),
        Field::new("o_cust", DataType::Int64),
        Field::new("o_total", DataType::Float64),
    ]));
    let n = 20_000i64;
    let mut b = TableBuilder::new(TableId::new(0), "orders", orders.clone(), 2048).unwrap();
    b.append(
        RecordBatch::new(
            orders,
            vec![
                ColumnData::Int64((0..n).collect()),
                ColumnData::Int64((0..n).map(|i| i * 11 % 500).collect()),
                ColumnData::Float64((0..n).map(|i| (i % 1000) as f64).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());

    let cust = Arc::new(Schema::of(vec![
        Field::new("c_id", DataType::Int64),
        Field::new("c_region", DataType::Utf8),
    ]));
    let mut b = TableBuilder::new(TableId::new(1), "customers", cust.clone(), 256).unwrap();
    b.append(
        RecordBatch::new(
            cust,
            vec![
                ColumnData::Int64((0..500).collect()),
                ColumnData::Utf8((0..500).map(|i| format!("region-{}", i % 7)).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());
    c
}

fn plan_of(cat: &Catalog, sql: &str) -> (PhysicalPlan, PipelineGraph) {
    let b = bind(&parse(sql).unwrap(), cat).unwrap();
    let tree = JoinTree::left_deep(&(0..b.relations.len()).collect::<Vec<_>>());
    let plan = ci_plan::physical::build_plan(&b, &tree, cat, &mut ErrorInjector::oracle()).unwrap();
    let graph = PipelineGraph::decompose(&plan).unwrap();
    (plan, graph)
}

/// One query shape that exercises every measurable operator class: scan
/// filter + join build/probe + group-by exchange + sort.
const SQL: &str = "SELECT c_region, SUM(o_total) AS rev, COUNT(*) AS n \
                   FROM orders o JOIN customers c ON o.o_cust = c.c_id \
                   WHERE o_total > 10.0 GROUP BY c_region ORDER BY c_region";

#[test]
fn parallel_measurements_seed_the_estimator() {
    let cat = catalog();
    let (plan, graph) = plan_of(&cat, SQL);
    let exec = Executor::new(
        &cat,
        ExecutionConfig {
            morsel_rows: 2048,
            mode: ExecutionMode::Parallel { workers: 2 },
            ..ExecutionConfig::default()
        },
    );
    let dops = vec![2u32; graph.len()];
    let out = exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap();
    assert!(
        !out.op_samples.is_empty(),
        "parallel mode must measure kernels"
    );

    // Fold the engine's samples into measured rates.
    let mut rates = MeasuredRates::new();
    for s in &out.op_samples {
        rates.record(s.op, s.units, s.wall_ns);
    }
    for op in ["filter", "probe", "build", "agg", "exchange", "sort"] {
        let r = rates.rate(op);
        assert!(
            r.is_some_and(|r| r.is_finite() && r > 0.0),
            "query exercises {op}, expected a usable measured rate, got {r:?}"
        );
    }

    // Seed an estimator from them: it stays constructible and produces a
    // finite, positive estimate for the very plan that was measured.
    let est = CostEstimator::new(&cat, EstimatorConfig::default()).with_measured_rates(&rates);
    let q = est.estimate(&plan, &graph, &dops).unwrap();
    assert!(q.latency.as_secs_f64() > 0.0 && q.latency.as_secs_f64().is_finite());
    assert!(q.cost.amount() > 0.0);

    // And the seeding really reached the models: the seeded estimator's
    // hardware rates match the aggregates for every measured class.
    assert_eq!(
        est.config.models.hw.filter_rows_per_sec_per_core,
        rates.rate("filter").unwrap()
    );
    assert_eq!(
        est.config.models.hw.hash_probe_rows_per_sec_per_core,
        rates.rate("probe").unwrap()
    );
    assert_eq!(
        est.config.models.hw.sort_rows_log_per_sec_per_core,
        rates.rate("sort").unwrap()
    );
}

#[test]
fn simulator_mode_yields_no_rates() {
    let cat = catalog();
    let (plan, graph) = plan_of(&cat, SQL);
    let exec = Executor::new(
        &cat,
        ExecutionConfig {
            morsel_rows: 2048,
            mode: ExecutionMode::Simulate,
            ..ExecutionConfig::default()
        },
    );
    let dops = vec![2u32; graph.len()];
    let out = exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap();
    assert!(out.op_samples.is_empty());

    let mut rates = MeasuredRates::new();
    for s in &out.op_samples {
        rates.record(s.op, s.units, s.wall_ns);
    }
    // Seeding from an empty collector is the identity.
    let base = EstimatorConfig::default().models;
    assert_eq!(rates.seed(&base), base);
}
