//! Workspace-level determinism guarantee: every stochastic choice flows from
//! an explicitly seeded [`DetRng`], so the same seed and the same workload
//! trace must produce the identical bill (in `Dollars`, bit-for-bit) and the
//! identical result rows across two independent runs — catalog build,
//! planning, elastic execution, billing, everything.

use cost_intel::types::money::Dollars;
use cost_intel::types::rng::DetRng;
use cost_intel::workload::{CabGenerator, TraceConfig, WorkloadTrace};
use cost_intel::{Constraint, Warehouse, WarehouseConfig};

/// The PRNG stream itself is reproducible from a seed: same seed ⇒ same
/// draws, different seed ⇒ different draws (the foundation everything else
/// builds on).
#[test]
fn det_rng_streams_are_reproducible() {
    let mut a = DetRng::seed_from_u64(42);
    let mut b = DetRng::seed_from_u64(42);
    let draws_a: Vec<u64> = (0..1000).map(|_| a.next_u64()).collect();
    let draws_b: Vec<u64> = (0..1000).map(|_| b.next_u64()).collect();
    assert_eq!(draws_a, draws_b);

    let mut c = DetRng::seed_from_u64(43);
    let draws_c: Vec<u64> = (0..1000).map(|_| c.next_u64()).collect();
    assert_ne!(draws_a, draws_c, "different seeds must diverge");
}

/// Same `DetRng` seed + same workload trace ⇒ identical bill in `Dollars`
/// and identical result rows across two runs, query by query.
#[test]
fn same_seed_same_trace_same_bill_and_rows() {
    const SEED: u64 = 7;
    let config = TraceConfig {
        hours: 4.0,
        recurring_per_hour: 6.0,
        adhoc_per_hour: 2.0,
        recurring_templates: vec![1, 3],
        seed: SEED,
    };

    let run = || {
        let gen = CabGenerator::at_scale(0.05);
        let catalog = gen.build_catalog().expect("catalog");
        let trace = WorkloadTrace::generate(&config, &gen);
        let mut w = Warehouse::new(catalog, WarehouseConfig::default());
        let reports = w.run_trace(&trace, Constraint::MinCost).expect("trace");
        (reports, w.total_spend())
    };

    let (reports1, spend1) = run();
    let (reports2, spend2) = run();

    assert!(!reports1.is_empty());
    assert_eq!(reports1.len(), reports2.len());
    for (a, b) in reports1.iter().zip(&reports2) {
        assert_eq!(a.cost, b.cost, "per-query bill must be bit-identical");
        assert_eq!(a.result, b.result, "result rows must be identical");
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.dops, b.dops);
    }
    assert_eq!(spend1, spend2, "total spend must be bit-identical");
    assert!(
        spend1 > Dollars::new(0.0),
        "trace must actually bill something"
    );
}
