//! Workspace-level integration tests: the public `cost-intel` API, end to
//! end, across all subsystems.

use cost_intel::autotune::TuningAction;
use cost_intel::types::money::Dollars;
use cost_intel::types::SimDuration;
use cost_intel::workload::{CabGenerator, TraceConfig, WorkloadTrace};
use cost_intel::{Constraint, Warehouse, WarehouseConfig};

fn warehouse(scale: f64) -> Warehouse {
    let catalog = CabGenerator::at_scale(scale)
        .build_catalog()
        .expect("catalog");
    Warehouse::new(catalog, WarehouseConfig::default())
}

#[test]
fn sla_query_is_correct_and_billed() {
    let mut w = warehouse(0.1);
    let r = w
        .submit(
            "SELECT c_region, COUNT(*) AS n FROM orders o \
             JOIN customer c ON o.o_cust = c.c_id GROUP BY c_region ORDER BY c_region",
            Constraint::LatencySla(SimDuration::from_secs(20)),
        )
        .expect("query");
    assert_eq!(r.result.rows(), 5);
    // Row counts across regions must sum to the orders table size.
    let total: i64 = (0..r.result.rows())
        .map(|i| match r.result.row(i)[1] {
            cost_intel::storage::Value::Int(n) => n,
            ref other => panic!("expected int count, got {other:?}"),
        })
        .sum();
    assert_eq!(
        total as u64,
        w.catalog().get("orders").unwrap().stats.row_count
    );
    assert!(r.constraint_met);
    assert!(r.cost.amount() > 0.0);
    assert!(r.machine_time.as_secs_f64() > 0.0);
}

#[test]
fn identical_submissions_are_deterministic() {
    let mut w1 = warehouse(0.05);
    let mut w2 = warehouse(0.05);
    let sql = "SELECT l_qty, SUM(l_price) FROM lineitem GROUP BY l_qty ORDER BY l_qty";
    let a = w1.submit(sql, Constraint::MinCost).expect("a");
    let b = w2.submit(sql, Constraint::MinCost).expect("b");
    assert_eq!(a.result, b.result);
    assert_eq!(a.cost, b.cost);
    assert_eq!(a.latency, b.latency);
}

#[test]
fn budget_vs_sla_trade_off() {
    let mut w = warehouse(0.2);
    let sql = "SELECT c_segment, SUM(l_price) FROM lineitem l \
               JOIN orders o ON l.l_order = o.o_id \
               JOIN customer c ON o.o_cust = c.c_id GROUP BY c_segment";
    let fast = w
        .submit(sql, Constraint::LatencySla(SimDuration::from_millis(1800)))
        .expect("fast");
    let cheap = w.submit(sql, Constraint::MinCost).expect("cheap");
    assert_eq!(fast.result.rows(), cheap.result.rows());
    assert!(fast.latency <= cheap.latency);
    assert!(cheap.cost.amount() <= fast.cost.amount() + 1e-12);
}

#[test]
fn full_loop_trace_tune_verify() {
    let gen = CabGenerator::at_scale(0.1);
    let catalog = gen.build_catalog().expect("catalog");
    let mut w = Warehouse::new(catalog, WarehouseConfig::default());
    let trace = WorkloadTrace::generate(
        &TraceConfig {
            hours: 8.0,
            recurring_per_hour: 8.0,
            adhoc_per_hour: 1.0,
            recurring_templates: vec![3],
            seed: 3,
        },
        &gen,
    );
    let reports = w.run_trace(&trace, Constraint::MinCost).expect("trace");
    assert!(!reports.is_empty());
    let per_q_before: f64 =
        reports.iter().map(|r| r.cost.amount()).sum::<f64>() / reports.len() as f64;

    let proposals = w.tuning_proposals().expect("proposals");
    assert!(!proposals.is_empty());
    let accepted: Vec<TuningAction> = proposals
        .iter()
        .filter(|p| p.accepted)
        .map(|p| p.action.clone())
        .collect();
    assert!(
        !accepted.is_empty(),
        "a hot recurring query should justify tuning"
    );
    for a in &accepted {
        let _ = w.apply(a);
    }

    let trace2 = WorkloadTrace::generate(
        &TraceConfig {
            hours: 8.0,
            recurring_per_hour: 8.0,
            adhoc_per_hour: 1.0,
            recurring_templates: vec![3],
            seed: 4,
        },
        &gen,
    );
    let reports2 = w.run_trace(&trace2, Constraint::MinCost).expect("trace2");
    let per_q_after: f64 =
        reports2.iter().map(|r| r.cost.amount()).sum::<f64>() / reports2.len() as f64;
    assert!(
        per_q_after < per_q_before,
        "tuning must pay off: {per_q_before} -> {per_q_after}"
    );
}

#[test]
fn infeasible_budget_is_flagged_not_hidden() {
    let mut w = warehouse(0.1);
    let r = w
        .submit(
            "SELECT COUNT(*) FROM lineitem",
            Constraint::Budget(Dollars::new(1e-9)),
        )
        .expect("query still runs best-effort");
    assert!(!r.feasible, "impossible budget must be flagged infeasible");
}

#[test]
fn monitor_disabled_matches_static_plan() {
    let gen = CabGenerator::at_scale(0.05);
    let catalog = gen.build_catalog().expect("catalog");
    let cfg = WarehouseConfig {
        disable_monitor: true,
        ..Default::default()
    };
    let mut w = Warehouse::new(catalog, cfg);
    let r = w
        .submit("SELECT COUNT(*) FROM orders", Constraint::MinCost)
        .expect("query");
    assert_eq!(r.resize_events, 0);
}
