//! Price list and the "T-shirt size" provisioning model of Figure 1.
//!
//! Snowflake-style warehouses are sold in doubling sizes (XS, S, M, ...)
//! where each step doubles both the node count and the hourly price. The
//! paper's opening argument is that forcing users to pick from this menu
//! causes over/under-provisioning; experiment F1 quantifies it against the
//! bi-objective optimizer's automatic deployment.

use ci_types::money::DollarsPerSecond;

use crate::node::NodeType;

/// The classic warehouse T-shirt sizes with their node counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TShirtSize {
    /// 1 node.
    XS,
    /// 2 nodes.
    S,
    /// 4 nodes.
    M,
    /// 8 nodes.
    L,
    /// 16 nodes.
    XL,
    /// 32 nodes.
    XXL,
    /// 64 nodes.
    XXXL,
    /// 128 nodes.
    XXXXL,
}

impl TShirtSize {
    /// All sizes in ascending order.
    pub const ALL: [TShirtSize; 8] = [
        TShirtSize::XS,
        TShirtSize::S,
        TShirtSize::M,
        TShirtSize::L,
        TShirtSize::XL,
        TShirtSize::XXL,
        TShirtSize::XXXL,
        TShirtSize::XXXXL,
    ];

    /// Number of nodes this size provisions.
    pub fn nodes(self) -> u32 {
        match self {
            TShirtSize::XS => 1,
            TShirtSize::S => 2,
            TShirtSize::M => 4,
            TShirtSize::L => 8,
            TShirtSize::XL => 16,
            TShirtSize::XXL => 32,
            TShirtSize::XXXL => 64,
            TShirtSize::XXXXL => 128,
        }
    }

    /// Display label matching the provider UI.
    pub fn label(self) -> &'static str {
        match self {
            TShirtSize::XS => "X-Small",
            TShirtSize::S => "Small",
            TShirtSize::M => "Medium",
            TShirtSize::L => "Large",
            TShirtSize::XL => "X-Large",
            TShirtSize::XXL => "2X-Large",
            TShirtSize::XXXL => "3X-Large",
            TShirtSize::XXXXL => "4X-Large",
        }
    }
}

/// The provider's price list: node shapes on offer plus the default shape
/// used when the user does not care.
#[derive(Debug, Clone)]
pub struct PriceList {
    /// Node shapes on offer.
    pub node_types: Vec<NodeType>,
    /// Index into `node_types` of the default shape.
    pub default_type: usize,
}

impl PriceList {
    /// A one-shape price list around [`NodeType::standard`]; selecting the
    /// cost-optimal *shape* is out of the paper's scope (§3 cites \[19]),
    /// so most experiments run on a single symmetric shape, as §3 assumes.
    pub fn standard() -> PriceList {
        PriceList {
            node_types: vec![NodeType::standard()],
            default_type: 0,
        }
    }

    /// The default node shape.
    pub fn default_node(&self) -> &NodeType {
        &self.node_types[self.default_type]
    }

    /// Hourly price of a cluster of `n` default nodes.
    pub fn cluster_rate(&self, n: u32) -> DollarsPerSecond {
        self.default_node().rate * n as f64
    }

    /// Hourly price of a T-shirt size, matching the doubling menu of Figure 1.
    pub fn tshirt_rate(&self, size: TShirtSize) -> DollarsPerSecond {
        self.cluster_rate(size.nodes())
    }
}

/// One level of the tiered cache hierarchy: capacity, service model, and
/// the occupancy rent charged per GB-hour of residency.
#[derive(Debug, Clone, PartialEq)]
pub struct TierSpec {
    /// Bytes this tier can hold before eviction kicks in.
    pub capacity_bytes: u64,
    /// Sequential service bandwidth.
    pub bytes_per_sec: f64,
    /// Fixed per-request latency (seek / syscall / first-byte).
    pub request_latency_secs: f64,
    /// Occupancy rent in dollars per GB per hour.
    pub price_per_gb_hour: f64,
}

impl TierSpec {
    /// Virtual seconds to serve `bytes` from this tier (latency + transfer).
    pub fn access_secs(&self, bytes: f64) -> f64 {
        if bytes <= 0.0 {
            0.0
        } else {
            self.request_latency_secs + bytes / self.bytes_per_sec
        }
    }

    /// Hourly rent for keeping `bytes` resident in this tier.
    pub fn rent_per_hour(&self, bytes: u64) -> f64 {
        bytes as f64 / 1e9 * self.price_per_gb_hour
    }
}

/// Prices and service models for the memory -> local-SSD -> object-store
/// hierarchy. The object tier itself is modelled by
/// [`crate::objectstore::ObjectStoreModel`]; this struct adds the cache
/// tiers in front of it plus the request/transfer prices that make a
/// re-fetch cost real dollars.
#[derive(Debug, Clone, PartialEq)]
pub struct TierPricing {
    /// In-memory buffer cache (decoded batches).
    pub mem: TierSpec,
    /// Local-SSD file cache (encoded partition files).
    pub ssd: TierSpec,
    /// Dollars per object-store GET request.
    pub object_get_dollars: f64,
    /// Dollars per GB transferred out of the object store.
    pub object_transfer_dollars_per_gb: f64,
    /// Horizon over which occupancy rent is amortised when scoring
    /// admissions: an entry must save more re-fetch dollars over this many
    /// hours than it costs to keep resident.
    pub rent_horizon_hours: f64,
}

impl Default for TierPricing {
    fn default() -> TierPricing {
        TierPricing::standard()
    }
}

impl TierPricing {
    /// Tier menu used across experiments: generous caches, S3-like request
    /// pricing, cross-zone transfer rates.
    pub fn standard() -> TierPricing {
        TierPricing {
            mem: TierSpec {
                capacity_bytes: 8 << 30,
                bytes_per_sec: 10e9,
                request_latency_secs: 1e-6,
                price_per_gb_hour: 0.05,
            },
            ssd: TierSpec {
                capacity_bytes: 256 << 30,
                bytes_per_sec: 2e9,
                request_latency_secs: 100e-6,
                price_per_gb_hour: 0.002,
            },
            object_get_dollars: 4e-7,
            object_transfer_dollars_per_gb: 0.01,
            rent_horizon_hours: 1.0,
        }
    }

    /// Reads `CI_TIERS` (`1` or `standard` enables the standard menu) so CI
    /// legs can engage cache accounting without code changes.
    pub fn from_env() -> Option<TierPricing> {
        match std::env::var("CI_TIERS").ok().as_deref() {
            Some("1") | Some("standard") => Some(TierPricing::standard()),
            _ => None,
        }
    }

    /// Dollars saved by serving `bytes` from a cache tier instead of
    /// re-fetching them from the object store.
    pub fn refetch_dollars(&self, bytes: f64) -> f64 {
        self.object_get_dollars + bytes / 1e9 * self.object_transfer_dollars_per_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_double() {
        let mut prev = 0;
        for s in TShirtSize::ALL {
            let n = s.nodes();
            if prev != 0 {
                assert_eq!(n, prev * 2, "{s:?}");
            }
            prev = n;
        }
        assert_eq!(TShirtSize::XS.nodes(), 1);
        assert_eq!(TShirtSize::XXXXL.nodes(), 128);
    }

    #[test]
    fn price_doubles_with_size() {
        let pl = PriceList::standard();
        let xs = pl.tshirt_rate(TShirtSize::XS).hourly();
        let m = pl.tshirt_rate(TShirtSize::M).hourly();
        assert!((m - 4.0 * xs).abs() < 1e-9);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = TShirtSize::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), TShirtSize::ALL.len());
    }

    #[test]
    fn cluster_rate_scales_linearly() {
        let pl = PriceList::standard();
        assert!((pl.cluster_rate(10).hourly() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn tier_menu_orders_latency_and_rent() {
        let t = TierPricing::standard();
        assert!(t.mem.access_secs(1e6) < t.ssd.access_secs(1e6));
        assert!(t.mem.price_per_gb_hour > t.ssd.price_per_gb_hour);
        assert!(t.refetch_dollars(1e9) > t.refetch_dollars(0.0));
        assert_eq!(t.mem.access_secs(0.0), 0.0);
    }

    #[test]
    fn tier_rent_scales_with_bytes() {
        let t = TierPricing::standard();
        assert!((t.ssd.rent_per_hour(2_000_000_000) - 0.004).abs() < 1e-12);
    }
}
