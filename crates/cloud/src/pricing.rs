//! Price list and the "T-shirt size" provisioning model of Figure 1.
//!
//! Snowflake-style warehouses are sold in doubling sizes (XS, S, M, ...)
//! where each step doubles both the node count and the hourly price. The
//! paper's opening argument is that forcing users to pick from this menu
//! causes over/under-provisioning; experiment F1 quantifies it against the
//! bi-objective optimizer's automatic deployment.

use ci_types::money::DollarsPerSecond;

use crate::node::NodeType;

/// The classic warehouse T-shirt sizes with their node counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TShirtSize {
    /// 1 node.
    XS,
    /// 2 nodes.
    S,
    /// 4 nodes.
    M,
    /// 8 nodes.
    L,
    /// 16 nodes.
    XL,
    /// 32 nodes.
    XXL,
    /// 64 nodes.
    XXXL,
    /// 128 nodes.
    XXXXL,
}

impl TShirtSize {
    /// All sizes in ascending order.
    pub const ALL: [TShirtSize; 8] = [
        TShirtSize::XS,
        TShirtSize::S,
        TShirtSize::M,
        TShirtSize::L,
        TShirtSize::XL,
        TShirtSize::XXL,
        TShirtSize::XXXL,
        TShirtSize::XXXXL,
    ];

    /// Number of nodes this size provisions.
    pub fn nodes(self) -> u32 {
        match self {
            TShirtSize::XS => 1,
            TShirtSize::S => 2,
            TShirtSize::M => 4,
            TShirtSize::L => 8,
            TShirtSize::XL => 16,
            TShirtSize::XXL => 32,
            TShirtSize::XXXL => 64,
            TShirtSize::XXXXL => 128,
        }
    }

    /// Display label matching the provider UI.
    pub fn label(self) -> &'static str {
        match self {
            TShirtSize::XS => "X-Small",
            TShirtSize::S => "Small",
            TShirtSize::M => "Medium",
            TShirtSize::L => "Large",
            TShirtSize::XL => "X-Large",
            TShirtSize::XXL => "2X-Large",
            TShirtSize::XXXL => "3X-Large",
            TShirtSize::XXXXL => "4X-Large",
        }
    }
}

/// The provider's price list: node shapes on offer plus the default shape
/// used when the user does not care.
#[derive(Debug, Clone)]
pub struct PriceList {
    /// Node shapes on offer.
    pub node_types: Vec<NodeType>,
    /// Index into `node_types` of the default shape.
    pub default_type: usize,
}

impl PriceList {
    /// A one-shape price list around [`NodeType::standard`]; selecting the
    /// cost-optimal *shape* is out of the paper's scope (§3 cites \[19]),
    /// so most experiments run on a single symmetric shape, as §3 assumes.
    pub fn standard() -> PriceList {
        PriceList {
            node_types: vec![NodeType::standard()],
            default_type: 0,
        }
    }

    /// The default node shape.
    pub fn default_node(&self) -> &NodeType {
        &self.node_types[self.default_type]
    }

    /// Hourly price of a cluster of `n` default nodes.
    pub fn cluster_rate(&self, n: u32) -> DollarsPerSecond {
        self.default_node().rate * n as f64
    }

    /// Hourly price of a T-shirt size, matching the doubling menu of Figure 1.
    pub fn tshirt_rate(&self, size: TShirtSize) -> DollarsPerSecond {
        self.cluster_rate(size.nodes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_double() {
        let mut prev = 0;
        for s in TShirtSize::ALL {
            let n = s.nodes();
            if prev != 0 {
                assert_eq!(n, prev * 2, "{s:?}");
            }
            prev = n;
        }
        assert_eq!(TShirtSize::XS.nodes(), 1);
        assert_eq!(TShirtSize::XXXXL.nodes(), 128);
    }

    #[test]
    fn price_doubles_with_size() {
        let pl = PriceList::standard();
        let xs = pl.tshirt_rate(TShirtSize::XS).hourly();
        let m = pl.tshirt_rate(TShirtSize::M).hourly();
        assert!((m - 4.0 * xs).abs() < 1e-9);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<_> = TShirtSize::ALL.iter().map(|s| s.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), TShirtSize::ALL.len());
    }

    #[test]
    fn cluster_rate_scales_linearly() {
        let pl = PriceList::standard();
        assert!((pl.cluster_rate(10).hourly() - 20.0).abs() < 1e-9);
    }
}
