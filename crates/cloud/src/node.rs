//! Compute node types and their hardware characterization.
//!
//! A [`NodeType`] is what the provider sells (cores, memory, NIC, price); a
//! [`HardwareProfile`] additionally carries the *calibrated* per-operator
//! processing rates that both the execution engine (to advance virtual time)
//! and the cost estimator (to predict it, §3.1: "hardware parameters that are
//! calibrated before the service starts") consume. Keeping one shared source
//! of truth for raw rates is deliberate: estimation error in experiments then
//! comes from cardinality error, data skew, and scheduling granularity — the
//! causes the paper discusses — not from two models drifting apart.

use ci_types::money::DollarsPerSecond;

/// A purchasable virtual machine shape.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeType {
    /// Marketing name, e.g. `"standard-8"`.
    pub name: String,
    /// Physical cores per node.
    pub cores: u32,
    /// Memory capacity in bytes.
    pub memory_bytes: u64,
    /// NIC line rate in bytes/second (full duplex assumed).
    pub nic_bytes_per_sec: f64,
    /// Per-node bandwidth to the object store, bytes/second.
    pub object_store_bytes_per_sec: f64,
    /// On-demand price.
    pub rate: DollarsPerSecond,
}

impl NodeType {
    /// The default node shape used across experiments: an 8-core, 64 GiB,
    /// 10 Gbit node at $2.00/hour — in the range of common cloud DW nodes.
    pub fn standard() -> NodeType {
        NodeType {
            name: "standard-8".to_owned(),
            cores: 8,
            memory_bytes: 64 << 30,
            nic_bytes_per_sec: 1.25e9,         // 10 Gbit/s
            object_store_bytes_per_sec: 0.6e9, // S3-like per-VM ceiling
            rate: DollarsPerSecond::per_hour(2.0),
        }
    }
}

/// Calibrated per-core processing rates for each operator class, plus
/// fixed scheduling overheads.
///
/// Rates are deliberately *simple scalar throughputs* — the paper's
/// explainability requirement (§3.1) rules out opaque models; every term
/// here maps to a sentence a database engineer can reason about.
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareProfile {
    /// Node shape this profile calibrates.
    pub node: NodeType,
    /// Table-scan decode rate, bytes/second/core (post object-store fetch).
    pub scan_bytes_per_sec_per_core: f64,
    /// Filter/projection evaluation rate, rows/second/core.
    pub filter_rows_per_sec_per_core: f64,
    /// Hash-table build rate, rows/second/core.
    pub hash_build_rows_per_sec_per_core: f64,
    /// Hash-table probe rate, rows/second/core.
    pub hash_probe_rows_per_sec_per_core: f64,
    /// Aggregation update rate, rows/second/core.
    pub agg_rows_per_sec_per_core: f64,
    /// Sort rate constant: a sort of `n` rows costs `n · log2(n) / rate` core-seconds.
    pub sort_rows_log_per_sec_per_core: f64,
    /// CPU cost of partitioning a row for exchange, rows/second/core.
    pub exchange_part_rows_per_sec_per_core: f64,
    /// Fixed cost to dispatch one morsel (scheduling + cache warmup), seconds.
    pub morsel_overhead_secs: f64,
    /// One-off per-pipeline startup cost per node (code/cache setup), seconds.
    pub pipeline_startup_secs: f64,
    /// Per-peer connection setup for exchange fan-out, seconds. Each node of
    /// a `d`-node exchanging pipeline opens `d-1` connections serially at
    /// startup — the overhead that makes *over*-scaling exchange-heavy
    /// pipelines actively slower (§2: "a user may end up paying more for the
    /// same or even worse query performance").
    pub exchange_conn_setup_secs: f64,
}

impl HardwareProfile {
    /// Calibration for [`NodeType::standard`]. Rates are representative of a
    /// vectorized engine on commodity cores (order-of-magnitude realistic;
    /// absolute values only shift all experiments uniformly).
    pub fn standard() -> HardwareProfile {
        HardwareProfile {
            node: NodeType::standard(),
            scan_bytes_per_sec_per_core: 400e6,
            filter_rows_per_sec_per_core: 120e6,
            hash_build_rows_per_sec_per_core: 18e6,
            hash_probe_rows_per_sec_per_core: 30e6,
            agg_rows_per_sec_per_core: 40e6,
            sort_rows_log_per_sec_per_core: 150e6,
            exchange_part_rows_per_sec_per_core: 60e6,
            morsel_overhead_secs: 50e-6,
            pipeline_startup_secs: 20e-3,
            exchange_conn_setup_secs: 150e-6,
        }
    }

    /// Aggregate scan decode rate for one node (all cores).
    pub fn node_scan_bytes_per_sec(&self) -> f64 {
        self.scan_bytes_per_sec_per_core * self.node.cores as f64
    }

    /// Validates that every rate is positive and finite; returns a
    /// human-readable list of violations (empty = valid).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        let mut check = |name: &str, v: f64| {
            if !(v.is_finite() && v > 0.0) {
                problems.push(format!("{name} must be positive and finite, got {v}"));
            }
        };
        check(
            "scan_bytes_per_sec_per_core",
            self.scan_bytes_per_sec_per_core,
        );
        check(
            "filter_rows_per_sec_per_core",
            self.filter_rows_per_sec_per_core,
        );
        check(
            "hash_build_rows_per_sec_per_core",
            self.hash_build_rows_per_sec_per_core,
        );
        check(
            "hash_probe_rows_per_sec_per_core",
            self.hash_probe_rows_per_sec_per_core,
        );
        check("agg_rows_per_sec_per_core", self.agg_rows_per_sec_per_core);
        check(
            "sort_rows_log_per_sec_per_core",
            self.sort_rows_log_per_sec_per_core,
        );
        check(
            "exchange_part_rows_per_sec_per_core",
            self.exchange_part_rows_per_sec_per_core,
        );
        check("nic_bytes_per_sec", self.node.nic_bytes_per_sec);
        check(
            "object_store_bytes_per_sec",
            self.node.object_store_bytes_per_sec,
        );
        if self.morsel_overhead_secs < 0.0 || !self.morsel_overhead_secs.is_finite() {
            problems.push("morsel_overhead_secs must be non-negative".to_owned());
        }
        if self.pipeline_startup_secs < 0.0 || !self.pipeline_startup_secs.is_finite() {
            problems.push("pipeline_startup_secs must be non-negative".to_owned());
        }
        if self.exchange_conn_setup_secs < 0.0 || !self.exchange_conn_setup_secs.is_finite() {
            problems.push("exchange_conn_setup_secs must be non-negative".to_owned());
        }
        if self.node.cores == 0 {
            problems.push("node must have at least one core".to_owned());
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_profile_is_valid() {
        assert!(HardwareProfile::standard().validate().is_empty());
    }

    #[test]
    fn node_rate_is_hourly_two_dollars() {
        let n = NodeType::standard();
        assert!((n.rate.hourly() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_scan_rate_scales_with_cores() {
        let p = HardwareProfile::standard();
        assert!(
            (p.node_scan_bytes_per_sec() - p.scan_bytes_per_sec_per_core * p.node.cores as f64)
                .abs()
                < 1.0
        );
    }

    #[test]
    fn validation_catches_bad_rates() {
        let mut p = HardwareProfile::standard();
        p.filter_rows_per_sec_per_core = 0.0;
        p.morsel_overhead_secs = -1.0;
        let problems = p.validate();
        assert_eq!(problems.len(), 2, "{problems:?}");
    }

    #[test]
    fn validation_catches_zero_cores() {
        let mut p = HardwareProfile::standard();
        p.node.cores = 0;
        assert!(!p.validate().is_empty());
    }
}
