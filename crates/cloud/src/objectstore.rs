//! Object-store (S3/Blob-style) bandwidth model.
//!
//! The storage layer of Figure 3 is a shared object store. For scans, what
//! matters to cost and DOP planning is: per-node fetch bandwidth is capped,
//! per-request first-byte latency is significant (so micro-partition size
//! matters), and the aggregate service bandwidth is huge but finite. Table
//! scans therefore parallelize almost linearly until the (high) aggregate
//! cap — the paper's example of an operator whose scale-out is cheap (§3).

/// Parameters of the simulated object store.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectStoreModel {
    /// Max fetch bandwidth one node can draw, bytes/second.
    pub per_node_bytes_per_sec: f64,
    /// Aggregate bandwidth the store serves across all nodes, bytes/second.
    pub aggregate_bytes_per_sec: f64,
    /// First-byte latency per GET request, seconds.
    pub request_latency_secs: f64,
}

impl ObjectStoreModel {
    /// S3-like defaults: ~600 MB/s per VM, 200 GB/s aggregate, 30 ms first byte.
    pub fn standard() -> ObjectStoreModel {
        ObjectStoreModel {
            per_node_bytes_per_sec: 0.6e9,
            aggregate_bytes_per_sec: 200e9,
            request_latency_secs: 30e-3,
        }
    }

    /// Effective per-node fetch bandwidth when `d` nodes scan concurrently.
    pub fn per_node_bw(&self, d: u32) -> f64 {
        if d == 0 {
            return 0.0;
        }
        self.per_node_bytes_per_sec
            .min(self.aggregate_bytes_per_sec / d as f64)
    }

    /// Time for one node to fetch a contiguous object of `bytes` while `d`
    /// nodes are scanning concurrently.
    pub fn fetch_secs(&self, bytes: f64, d: u32) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        self.request_latency_secs + bytes / self.per_node_bw(d.max(1))
    }

    /// Time to scan `total_bytes` split into `objects` equal micro-partitions
    /// spread evenly over `d` nodes (each node fetches its share serially).
    pub fn scan_secs(&self, total_bytes: f64, objects: u64, d: u32) -> f64 {
        if total_bytes <= 0.0 || objects == 0 || d == 0 {
            return 0.0;
        }
        let per_object = total_bytes / objects as f64;
        // Ceil-divide objects over nodes: the slowest node bounds the scan.
        let per_node_objects = objects.div_ceil(d as u64);
        per_node_objects as f64 * self.fetch_secs(per_object, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_node_bw_hits_aggregate_cap() {
        let s = ObjectStoreModel::standard();
        // Few nodes: limited by the per-node ceiling.
        assert!((s.per_node_bw(4) - 0.6e9).abs() < 1.0);
        // Many nodes: limited by the aggregate cap (200e9 / 1000 = 0.2e9).
        assert!((s.per_node_bw(1000) - 0.2e9).abs() < 1.0);
    }

    #[test]
    fn scan_parallelizes_nearly_linearly_below_cap() {
        let s = ObjectStoreModel::standard();
        let bytes = 64e9;
        let objects = 4096;
        let t1 = s.scan_secs(bytes, objects, 1);
        let t16 = s.scan_secs(bytes, objects, 16);
        let speedup = t1 / t16;
        assert!(
            (14.0..=16.5).contains(&speedup),
            "scan speedup at 16 nodes was {speedup}"
        );
    }

    #[test]
    fn request_latency_penalizes_tiny_objects() {
        let s = ObjectStoreModel::standard();
        let bytes = 1e9;
        let few = s.scan_secs(bytes, 8, 1);
        let many = s.scan_secs(bytes, 8192, 1);
        assert!(
            many > few,
            "8192 tiny GETs ({many}s) must cost more than 8 big ones ({few}s)"
        );
    }

    #[test]
    fn stragglers_from_uneven_object_division() {
        let s = ObjectStoreModel::standard();
        // 10 objects over 4 nodes: one node fetches 3 -> bound by 3 fetches.
        let t = s.scan_secs(10e9, 10, 4);
        let per_fetch = s.fetch_secs(1e9, 4);
        assert!((t - 3.0 * per_fetch).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs() {
        let s = ObjectStoreModel::standard();
        assert_eq!(s.scan_secs(0.0, 10, 4), 0.0);
        assert_eq!(s.scan_secs(1e9, 0, 4), 0.0);
        assert_eq!(s.scan_secs(1e9, 10, 0), 0.0);
        assert_eq!(s.fetch_secs(0.0, 4), 0.0);
    }
}
