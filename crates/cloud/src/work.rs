//! Per-operator work models: the calibrated formulas that convert data
//! volumes into machine seconds.
//!
//! §3.1: "For each physical operator, we design a scalability model that
//! outputs its processing throughput given the data size and the degree of
//! parallelism. The model also refers to the relevant hardware parameters
//! that are calibrated before the service starts. We found that simple
//! mathematical formulas are good enough to model the scalability of most
//! physical operators."
//!
//! Both the execution engine (to advance virtual time) and the cost
//! estimator (to predict it) consume *this* module — the estimator's error
//! in experiments then comes from the causes the paper names (cardinality
//! misestimation, data skew, morsel-granularity scheduling), not from two
//! hand-written models drifting apart.

use crate::network::NetworkModel;
use crate::node::HardwareProfile;
use crate::objectstore::ObjectStoreModel;

/// Bundled hardware, network, and storage models.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkModels {
    /// Node compute rates.
    pub hw: HardwareProfile,
    /// Interconnect model.
    pub net: NetworkModel,
    /// Object-store model.
    pub store: ObjectStoreModel,
}

impl WorkModels {
    /// The standard calibration used across experiments.
    pub fn standard() -> WorkModels {
        WorkModels {
            hw: HardwareProfile::standard(),
            net: NetworkModel::standard(),
            store: ObjectStoreModel::standard(),
        }
    }

    /// Node-level compute throughput multiplier (all cores of one node).
    fn cores(&self) -> f64 {
        self.hw.node.cores as f64
    }

    /// Seconds for one node to fetch a `bytes`-sized object while `d` nodes
    /// scan concurrently.
    pub fn scan_fetch_secs(&self, bytes: f64, d: u32) -> f64 {
        self.store.fetch_secs(bytes, d)
    }

    /// Seconds for one node to decode `bytes` of columnar data.
    pub fn scan_decode_secs(&self, bytes: f64) -> f64 {
        bytes / (self.hw.scan_bytes_per_sec_per_core * self.cores())
    }

    /// Seconds for one node to evaluate a filter/projection over `rows`.
    pub fn filter_secs(&self, rows: f64) -> f64 {
        rows / (self.hw.filter_rows_per_sec_per_core * self.cores())
    }

    /// Seconds for one node to insert `rows` into a join hash table.
    pub fn build_secs(&self, rows: f64) -> f64 {
        rows / (self.hw.hash_build_rows_per_sec_per_core * self.cores())
    }

    /// Seconds for one node to probe `rows` against a hash table.
    pub fn probe_secs(&self, rows: f64) -> f64 {
        rows / (self.hw.hash_probe_rows_per_sec_per_core * self.cores())
    }

    /// Seconds for one node to fold `rows` into aggregation state.
    pub fn agg_update_secs(&self, rows: f64) -> f64 {
        rows / (self.hw.agg_rows_per_sec_per_core * self.cores())
    }

    /// Seconds of CPU work for one node to hash-partition `rows` for an
    /// exchange.
    pub fn exchange_cpu_secs(&self, rows: f64) -> f64 {
        rows / (self.hw.exchange_part_rows_per_sec_per_core * self.cores())
    }

    /// Seconds of wire time charged to the sending node for exchanging
    /// `bytes` of its stream across a `d`-node cluster.
    pub fn exchange_wire_secs(&self, bytes: f64, d: u32) -> f64 {
        if d <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        let cross = bytes * (d as f64 - 1.0) / d as f64;
        cross / self.net.per_node_exchange_bw(d)
    }

    /// Serial seconds at the single receiver of a gather of `bytes` from a
    /// `d`-node cluster (the receiver NIC is the bottleneck).
    pub fn gather_secs(&self, bytes: f64, d: u32) -> f64 {
        if d <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        bytes * (d as f64 - 1.0) / d as f64 / self.net.nic_bytes_per_sec
    }

    /// Wall-clock span for a parallel sort of `rows` across `d` nodes
    /// (comparison sort: `n·log2(n)` work split over nodes, plus a merge
    /// pass charged at filter rate).
    pub fn sort_finalize_secs(&self, rows: f64, d: u32) -> f64 {
        if rows <= 1.0 {
            return 0.0;
        }
        let work = rows * rows.log2();
        let parallel = work / (self.hw.sort_rows_log_per_sec_per_core * self.cores() * d as f64);
        let merge = rows / (self.hw.filter_rows_per_sec_per_core * self.cores());
        parallel + merge
    }

    /// Fixed dispatch overhead per morsel.
    pub fn morsel_overhead_secs(&self) -> f64 {
        self.hw.morsel_overhead_secs
    }

    /// Serial startup span for a pipeline that exchanges data: each node
    /// opens `d-1` peer connections. Grows linearly in cluster size — the
    /// mechanism that makes over-scaled exchange pipelines *slower*, not
    /// just more expensive.
    pub fn exchange_startup_secs(&self, d: u32) -> f64 {
        if d <= 1 {
            0.0
        } else {
            (d as f64 - 1.0) * self.hw.exchange_conn_setup_secs
        }
    }

    /// One-off per-node pipeline startup span.
    pub fn pipeline_startup_secs(&self) -> f64 {
        self.hw.pipeline_startup_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_rates_scale_with_cores() {
        let w = WorkModels::standard();
        let one_core = {
            let mut w2 = w.clone();
            w2.hw.node.cores = 1;
            w2
        };
        assert!(w.filter_secs(1e6) < one_core.filter_secs(1e6));
        assert!(
            (one_core.filter_secs(1e6) / w.filter_secs(1e6) - w.hw.node.cores as f64).abs() < 1e-6
        );
    }

    #[test]
    fn exchange_wire_time_zero_on_single_node() {
        let w = WorkModels::standard();
        assert_eq!(w.exchange_wire_secs(1e9, 1), 0.0);
        assert!(w.exchange_wire_secs(1e9, 8) > 0.0);
    }

    #[test]
    fn exchange_per_node_time_grows_past_knee() {
        let w = WorkModels::standard();
        // Fixed bytes per node: as d grows the fabric share shrinks, so the
        // per-node wire time grows.
        let t8 = w.exchange_wire_secs(1e9, 8);
        let t128 = w.exchange_wire_secs(1e9, 128);
        assert!(
            t128 > t8,
            "per-node exchange should degrade: {t8} -> {t128}"
        );
    }

    #[test]
    fn sort_scales_superlinearly_in_rows() {
        let w = WorkModels::standard();
        let t1 = w.sort_finalize_secs(1e6, 1);
        let t10 = w.sort_finalize_secs(1e7, 1);
        assert!(t10 > 10.0 * t1, "n log n growth expected");
        assert_eq!(w.sort_finalize_secs(1.0, 4), 0.0);
    }

    #[test]
    fn gather_is_receiver_bound() {
        let w = WorkModels::standard();
        let g4 = w.gather_secs(1e9, 4);
        let g64 = w.gather_secs(1e9, 64);
        // Receiver NIC bound: nearly flat in d (only the (d-1)/d factor moves).
        assert!((g64 / g4) < 1.4);
        assert_eq!(w.gather_secs(1e9, 1), 0.0);
    }

    #[test]
    fn build_slower_than_probe() {
        let w = WorkModels::standard();
        assert!(w.build_secs(1e6) > w.probe_secs(1e6));
    }
}
