//! Deterministic cost-aware cache simulation for the tier hierarchy.
//!
//! The simulator decides, per partition access, which tier serves the bytes
//! and what gets admitted or evicted — *purely* as a function of the access
//! trace. The execution engine drives it from the driver's canonical
//! accounting loop, so hit/miss/eviction sequences are identical across
//! execution modes and across physical page sources; the physical tier
//! store merely mirrors the simulator's decisions.
//!
//! Admission is cost-aware, not recency-based: an entry is admitted to a
//! tier when the re-fetch dollars it is expected to save (object GET price
//! plus transfer price, scaled by its observed access count) exceed the
//! occupancy rent of keeping it resident over the pricing horizon. Eviction
//! removes the lowest-scoring resident first, tie-broken canonically by
//! `(score, insertion sequence, key)` so the outcome never depends on hash
//! iteration order. Occupancy itself is metered through
//! [`crate::billing::BillingMeter`] leases so cache rent shows up in the
//! same ledger as machine time.

use std::collections::{BTreeMap, BTreeSet};

use ci_types::money::{Dollars, DollarsPerSecond};
use ci_types::{NodeId, SimDuration, SimTime, TableId};

use crate::billing::BillingMeter;
use crate::pricing::{TierPricing, TierSpec};

/// Cache identity of one micro-partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// Owning table.
    pub table: TableId,
    /// Partition ordinal within the table.
    pub part: u32,
}

impl CacheKey {
    /// Convenience constructor.
    pub fn new(table: TableId, part: u32) -> CacheKey {
        CacheKey { table, part }
    }
}

/// Which level of the hierarchy served (or would serve) an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierLevel {
    /// In-memory cache of decoded batches.
    Mem,
    /// Local-SSD cache of encoded partition files.
    Ssd,
    /// The backing object store — a cache miss.
    Object,
}

impl TierLevel {
    /// Stable numeric code for traces (0 = mem, 1 = ssd, 2 = object).
    pub fn code(self) -> u64 {
        match self {
            TierLevel::Mem => 0,
            TierLevel::Ssd => 1,
            TierLevel::Object => 2,
        }
    }
}

/// Outcome of one simulated access: the serving tier plus the admissions
/// and evictions it triggered, in the order they must be applied.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheAccess {
    /// The partition accessed.
    pub key: CacheKey,
    /// Tier that served the bytes.
    pub level: TierLevel,
    /// Entries admitted (promoted) by this access.
    pub admitted: Vec<(CacheKey, TierLevel)>,
    /// Entries evicted to make room, tagged with the tier they left.
    pub evicted: Vec<(CacheKey, TierLevel)>,
}

/// Running totals, exposed for metrics and experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Accesses served from memory.
    pub mem_hits: u64,
    /// Accesses served from local SSD.
    pub ssd_hits: u64,
    /// Accesses that went to the object store.
    pub misses: u64,
    /// Admissions into either cache tier.
    pub promotions: u64,
    /// Evictions from either cache tier.
    pub evictions: u64,
}

#[derive(Debug, Clone)]
struct Resident {
    bytes: u64,
    seq: u64,
    lease_node: NodeId,
}

/// Deterministic cost-aware two-tier cache simulator.
///
/// All state lives in ordered maps and every decision is a pure function of
/// the access sequence, so two replays of the same trace produce identical
/// hit/miss/admission/eviction sequences — the property the equivalence
/// tests pin.
#[derive(Debug)]
pub struct TierCacheSim {
    pricing: TierPricing,
    mem: BTreeMap<CacheKey, Resident>,
    ssd: BTreeMap<CacheKey, Resident>,
    mem_bytes: u64,
    ssd_bytes: u64,
    accesses: BTreeMap<CacheKey, u64>,
    pinned_mem: BTreeSet<TableId>,
    pinned_ssd: BTreeSet<TableId>,
    seq: u64,
    lease_ids: u32,
    meter: BillingMeter,
    /// Offset added to query-local timestamps so the occupancy clock never
    /// regresses when the same simulator outlives multiple queries.
    base: SimDuration,
    high_water: SimTime,
    counters: CacheCounters,
}

impl TierCacheSim {
    /// Empty caches under the given price menu.
    pub fn new(pricing: TierPricing) -> TierCacheSim {
        TierCacheSim {
            pricing,
            mem: BTreeMap::new(),
            ssd: BTreeMap::new(),
            mem_bytes: 0,
            ssd_bytes: 0,
            accesses: BTreeMap::new(),
            pinned_mem: BTreeSet::new(),
            pinned_ssd: BTreeSet::new(),
            seq: 0,
            lease_ids: 0,
            meter: BillingMeter::new(),
            base: SimDuration::ZERO,
            high_water: SimTime::ZERO,
            counters: CacheCounters::default(),
        }
    }

    /// The price menu in force.
    pub fn pricing(&self) -> &TierPricing {
        &self.pricing
    }

    /// Pins every partition of `table` to `level`: always admitted there,
    /// never evicted. Pinning to [`TierLevel::Object`] clears the pin.
    pub fn pin(&mut self, table: TableId, level: TierLevel) {
        self.pinned_mem.remove(&table);
        self.pinned_ssd.remove(&table);
        match level {
            TierLevel::Mem => {
                self.pinned_mem.insert(table);
            }
            TierLevel::Ssd => {
                self.pinned_ssd.insert(table);
            }
            TierLevel::Object => {}
        }
    }

    /// Rebases the query-local clock: subsequent `now` values (which restart
    /// at zero each query) are offset past everything already observed.
    pub fn begin_query(&mut self) {
        self.base = self.high_water.since(SimTime::ZERO);
    }

    fn clock(&mut self, now: SimTime) -> SimTime {
        let t = SimTime::ZERO + self.base + now.since(SimTime::ZERO);
        self.high_water = self.high_water.max(t);
        self.high_water
    }

    /// Expected dollars saved minus occupancy rent for keeping `bytes` in
    /// `tier` given `hits` observed accesses.
    fn score(&self, tier: &TierSpec, bytes: u64, hits: u64) -> f64 {
        let saved = self.pricing.refetch_dollars(bytes as f64) * hits as f64;
        let rent = tier.rent_per_hour(bytes) * self.pricing.rent_horizon_hours;
        saved - rent
    }

    fn next_lease(&mut self) -> NodeId {
        let id = self.lease_ids;
        self.lease_ids += 1;
        NodeId::new(id)
    }

    /// Admits `key` into the tier behind `level` if its score clears zero
    /// (or its table is pinned there) and room can be made by evicting
    /// strictly lower-scoring, unpinned residents. Returns `true` on admit.
    fn admit(
        &mut self,
        level: TierLevel,
        key: CacheKey,
        bytes: u64,
        hits: u64,
        now: SimTime,
        evicted: &mut Vec<(CacheKey, TierLevel)>,
    ) -> bool {
        let spec = match level {
            TierLevel::Mem => self.pricing.mem.clone(),
            TierLevel::Ssd => self.pricing.ssd.clone(),
            TierLevel::Object => return false,
        };
        let pinned_here = match level {
            TierLevel::Mem => self.pinned_mem.contains(&key.table),
            TierLevel::Ssd => self.pinned_ssd.contains(&key.table),
            TierLevel::Object => false,
        };
        let cand_score = self.score(&spec, bytes, hits);
        if !pinned_here && cand_score <= 0.0 {
            return false;
        }
        if bytes > spec.capacity_bytes {
            return false;
        }
        // Plan evictions until the entry fits. Victims are chosen by
        // ascending (score, insertion seq, key) — fully canonical.
        let mut victims: Vec<CacheKey> = Vec::new();
        let mut freed = 0u64;
        {
            let (residents, used, pinned) = match level {
                TierLevel::Mem => (&self.mem, self.mem_bytes, &self.pinned_mem),
                TierLevel::Ssd => (&self.ssd, self.ssd_bytes, &self.pinned_ssd),
                TierLevel::Object => unreachable!(),
            };
            if used + bytes > spec.capacity_bytes {
                let mut ranked: Vec<(f64, u64, CacheKey, u64)> = residents
                    .iter()
                    .filter(|(k, _)| !pinned.contains(&k.table))
                    .map(|(k, r)| {
                        let h = self.accesses.get(k).copied().unwrap_or(0);
                        (self.score(&spec, r.bytes, h), r.seq, *k, r.bytes)
                    })
                    .collect();
                ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
                for (vscore, _, vkey, vbytes) in ranked {
                    if used + bytes - freed <= spec.capacity_bytes {
                        break;
                    }
                    // An unpinned candidate may only displace strictly
                    // worse residents; a pinned one displaces anything
                    // unpinned.
                    if !pinned_here && vscore >= cand_score {
                        return false;
                    }
                    freed += vbytes;
                    victims.push(vkey);
                }
                if used + bytes - freed > spec.capacity_bytes {
                    return false;
                }
            }
        }
        for vkey in victims {
            self.remove(level, vkey, now);
            evicted.push((vkey, level));
            self.counters.evictions += 1;
        }
        let rate = DollarsPerSecond::per_hour(spec.rent_per_hour(bytes));
        let lease_node = self.next_lease();
        self.meter.open(lease_node, rate, now);
        let resident = Resident {
            bytes,
            seq: self.seq,
            lease_node,
        };
        self.seq += 1;
        match level {
            TierLevel::Mem => {
                self.mem.insert(key, resident);
                self.mem_bytes += bytes;
            }
            TierLevel::Ssd => {
                self.ssd.insert(key, resident);
                self.ssd_bytes += bytes;
            }
            TierLevel::Object => unreachable!(),
        }
        self.counters.promotions += 1;
        true
    }

    fn remove(&mut self, level: TierLevel, key: CacheKey, now: SimTime) {
        let removed = match level {
            TierLevel::Mem => self.mem.remove(&key).inspect(|r| self.mem_bytes -= r.bytes),
            TierLevel::Ssd => self.ssd.remove(&key).inspect(|r| self.ssd_bytes -= r.bytes),
            TierLevel::Object => None,
        };
        if let Some(r) = removed {
            self.meter.close(r.lease_node, now);
        }
    }

    /// Records one access to `key` (`bytes` = encoded partition size) at
    /// query-local time `now` and returns the serving tier plus the
    /// admissions/evictions the physical store must mirror.
    pub fn access(&mut self, key: CacheKey, bytes: u64, now: SimTime) -> CacheAccess {
        let t = self.clock(now);
        let hits = {
            let e = self.accesses.entry(key).or_insert(0);
            *e += 1;
            *e
        };
        let mut admitted = Vec::new();
        let mut evicted = Vec::new();
        let level = if self.mem.contains_key(&key) {
            self.counters.mem_hits += 1;
            TierLevel::Mem
        } else if self.ssd.contains_key(&key) {
            self.counters.ssd_hits += 1;
            // A hot SSD entry may graduate to memory.
            if self.admit(TierLevel::Mem, key, bytes, hits, t, &mut evicted) {
                self.remove(TierLevel::Ssd, key, t);
                admitted.push((key, TierLevel::Mem));
            }
            TierLevel::Ssd
        } else {
            self.counters.misses += 1;
            if self.admit(TierLevel::Mem, key, bytes, hits, t, &mut evicted) {
                admitted.push((key, TierLevel::Mem));
            } else if self.admit(TierLevel::Ssd, key, bytes, hits, t, &mut evicted) {
                admitted.push((key, TierLevel::Ssd));
            }
            TierLevel::Object
        };
        CacheAccess {
            key,
            level,
            admitted,
            evicted,
        }
    }

    /// Virtual seconds to serve `bytes` from `level` (the object tier is
    /// priced by the engine's object-store model instead).
    pub fn service_secs(&self, level: TierLevel, bytes: f64) -> Option<f64> {
        match level {
            TierLevel::Mem => Some(self.pricing.mem.access_secs(bytes)),
            TierLevel::Ssd => Some(self.pricing.ssd.access_secs(bytes)),
            TierLevel::Object => None,
        }
    }

    /// Running hit/miss/promotion/eviction totals.
    pub fn counters(&self) -> CacheCounters {
        self.counters
    }

    /// Bytes currently resident in `level` (0 for the object tier).
    pub fn resident_bytes(&self, level: TierLevel) -> u64 {
        match level {
            TierLevel::Mem => self.mem_bytes,
            TierLevel::Ssd => self.ssd_bytes,
            TierLevel::Object => 0,
        }
    }

    /// Accumulated occupancy rent, billed through the lease meter up to the
    /// high-water clock.
    pub fn occupancy_cost(&self) -> Dollars {
        self.meter.total_cost(self.high_water)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pricing() -> TierPricing {
        let mut p = TierPricing::standard();
        // Shrink capacities so eviction paths are exercised with small keys.
        p.mem.capacity_bytes = 3_000_000;
        p.ssd.capacity_bytes = 6_000_000;
        // Make transfer expensive enough that a single access justifies SSD
        // admission for MB-scale partitions.
        p.object_transfer_dollars_per_gb = 10.0;
        p
    }

    fn k(t: u32, p: u32) -> CacheKey {
        CacheKey::new(TableId::new(t), p)
    }

    #[test]
    fn replay_is_deterministic() {
        let trace: Vec<(CacheKey, u64)> =
            (0..40u32).map(|i| (k(i % 3, i % 5), 1_000_000)).collect();
        let run = |p: TierPricing| {
            let mut sim = TierCacheSim::new(p);
            trace
                .iter()
                .enumerate()
                .map(|(i, (key, b))| sim.access(*key, *b, SimTime::from_micros(i as u64)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(tiny_pricing()), run(tiny_pricing()));
    }

    #[test]
    fn second_access_hits_after_admission() {
        let mut sim = TierCacheSim::new(tiny_pricing());
        let a = sim.access(k(0, 0), 1_000_000, SimTime::ZERO);
        assert_eq!(a.level, TierLevel::Object);
        assert!(
            !a.admitted.is_empty(),
            "expensive refetch should be admitted"
        );
        let b = sim.access(k(0, 0), 1_000_000, SimTime::from_micros(10));
        assert_ne!(b.level, TierLevel::Object);
    }

    #[test]
    fn cheap_refetch_is_never_admitted() {
        let mut p = TierPricing::standard();
        p.object_transfer_dollars_per_gb = 0.0;
        p.object_get_dollars = 0.0;
        let mut sim = TierCacheSim::new(p);
        for i in 0..10 {
            let a = sim.access(k(0, 0), 1_000_000, SimTime::from_micros(i));
            assert_eq!(a.level, TierLevel::Object);
            assert!(a.admitted.is_empty());
        }
        assert_eq!(sim.counters().promotions, 0);
    }

    #[test]
    fn eviction_respects_capacity_and_scores() {
        let mut sim = TierCacheSim::new(tiny_pricing());
        // Fill memory (capacity 3 MB) with three 1 MB entries, then touch a
        // fourth repeatedly until its score beats the coldest resident.
        for (i, part) in [0u32, 1, 2].iter().enumerate() {
            sim.access(k(0, *part), 1_000_000, SimTime::from_micros(i as u64));
        }
        // Heat up the original entries unevenly so scores differ.
        sim.access(k(0, 1), 1_000_000, SimTime::from_micros(10));
        sim.access(k(0, 2), 1_000_000, SimTime::from_micros(11));
        sim.access(k(0, 2), 1_000_000, SimTime::from_micros(12));
        // Part 3: first access scores equal to the coldest (part 0) -> no
        // mem eviction (strictly-lower rule); second access beats it.
        let first = sim.access(k(0, 3), 1_000_000, SimTime::from_micros(20));
        assert!(!first.admitted.contains(&(k(0, 3), TierLevel::Mem)));
        let second = sim.access(k(0, 3), 1_000_000, SimTime::from_micros(21));
        assert!(second.admitted.contains(&(k(0, 3), TierLevel::Mem)));
        assert!(second
            .evicted
            .iter()
            .any(|(key, lvl)| *key == k(0, 0) && *lvl == TierLevel::Mem));
        assert!(sim.resident_bytes(TierLevel::Mem) <= 3_000_000);
    }

    #[test]
    fn pinned_tables_are_admitted_and_never_evicted() {
        let mut sim = TierCacheSim::new(tiny_pricing());
        sim.pin(TableId::new(9), TierLevel::Mem);
        sim.access(k(9, 0), 2_000_000, SimTime::ZERO);
        assert_eq!(sim.resident_bytes(TierLevel::Mem), 2_000_000);
        // Hammer other keys; the pinned entry must survive.
        for i in 0..20u32 {
            sim.access(k(1, i % 2), 1_000_000, SimTime::from_micros(i as u64 + 1));
        }
        let hit = sim.access(k(9, 0), 2_000_000, SimTime::from_micros(100));
        assert_eq!(hit.level, TierLevel::Mem);
    }

    #[test]
    fn occupancy_rent_accrues_over_time() {
        let mut sim = TierCacheSim::new(tiny_pricing());
        sim.access(k(0, 0), 1_000_000, SimTime::ZERO);
        assert_eq!(sim.occupancy_cost(), Dollars::ZERO);
        sim.access(k(0, 0), 1_000_000, SimTime::from_secs_f64(3600.0));
        let rent = sim.occupancy_cost();
        assert!(rent.0 > 0.0, "an hour of residency should bill rent");
    }

    #[test]
    fn clock_never_regresses_across_queries() {
        let mut sim = TierCacheSim::new(tiny_pricing());
        sim.access(k(0, 0), 1_000_000, SimTime::from_secs_f64(5.0));
        sim.begin_query();
        // Query-local time restarts at zero; the rebased clock must not.
        sim.access(k(0, 1), 1_000_000, SimTime::ZERO);
        let c1 = sim.occupancy_cost();
        sim.access(k(0, 1), 1_000_000, SimTime::from_secs_f64(1.0));
        assert!(sim.occupancy_cost() >= c1);
    }

    #[test]
    fn ssd_catches_what_memory_rejects() {
        let mut p = tiny_pricing();
        // Memory rent so high nothing qualifies; SSD stays cheap.
        p.mem.price_per_gb_hour = 1e6;
        let mut sim = TierCacheSim::new(p);
        let a = sim.access(k(0, 0), 1_000_000, SimTime::ZERO);
        assert_eq!(a.admitted, vec![(k(0, 0), TierLevel::Ssd)]);
        let b = sim.access(k(0, 0), 1_000_000, SimTime::from_micros(1));
        assert_eq!(b.level, TierLevel::Ssd);
    }
}
