//! Machine-time billing.
//!
//! §3.1: "the monetary cost of a workload is proportional to the total
//! machine time instead of the CPU time. For example, if a pipeline execution
//! is blocked on a node waiting for the input data, the user is still charged
//! for the under-utilized resources." The meter therefore bills *leases*
//! (node held), never CPU cycles. This asymmetry is what makes pipeline
//! waiting waste money and motivates the equal-finish-time heuristic (§3.2).

use ci_types::money::{Dollars, DollarsPerSecond};
use ci_types::{NodeId, SimDuration, SimTime};

/// One node lease: a node held from `start` until `end` (or still open).
#[derive(Debug, Clone, PartialEq)]
pub struct Lease {
    /// The leased node.
    pub node: NodeId,
    /// Billing rate for this node.
    pub rate: DollarsPerSecond,
    /// Lease start (when provisioning was requested — providers bill from
    /// acquisition, not from first useful work).
    pub start: SimTime,
    /// Lease end; `None` while the node is still held.
    pub end: Option<SimTime>,
}

impl Lease {
    /// Billable duration as of `now`.
    pub fn held_for(&self, now: SimTime) -> SimDuration {
        let end = self.end.unwrap_or(now).min(now).max(self.start);
        end.since(self.start)
    }

    /// Cost accrued as of `now`.
    pub fn cost(&self, now: SimTime) -> Dollars {
        self.rate.bill(self.held_for(now))
    }
}

/// Accumulates node leases and answers cost queries.
///
/// The meter is the source of truth for user-observable cost (UOC, §1):
/// experiments read their dollar figures from here, never from ad-hoc
/// arithmetic, so billing semantics are enforced in exactly one place.
#[derive(Debug, Default, Clone)]
pub struct BillingMeter {
    leases: Vec<Lease>,
}

impl BillingMeter {
    /// Empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a lease for `node` at `rate` starting `now`; returns its index.
    pub fn open(&mut self, node: NodeId, rate: DollarsPerSecond, now: SimTime) -> usize {
        self.leases.push(Lease {
            node,
            rate,
            start: now,
            end: None,
        });
        self.leases.len() - 1
    }

    /// Closes the most recent open lease for `node` at `now`.
    /// Returns `true` if a lease was closed.
    pub fn close(&mut self, node: NodeId, now: SimTime) -> bool {
        for lease in self.leases.iter_mut().rev() {
            if lease.node == node && lease.end.is_none() {
                debug_assert!(now >= lease.start);
                lease.end = Some(now);
                return true;
            }
        }
        false
    }

    /// Closes every open lease at `now` (cluster reclamation).
    pub fn close_all(&mut self, now: SimTime) {
        for lease in &mut self.leases {
            if lease.end.is_none() {
                lease.end = Some(now);
            }
        }
    }

    /// Number of currently open leases.
    pub fn open_count(&self) -> usize {
        self.leases.iter().filter(|l| l.end.is_none()).count()
    }

    /// Total machine time accrued as of `now` (sum over leases).
    pub fn machine_time(&self, now: SimTime) -> SimDuration {
        self.leases.iter().map(|l| l.held_for(now)).sum()
    }

    /// Total cost accrued as of `now`.
    pub fn total_cost(&self, now: SimTime) -> Dollars {
        self.leases.iter().map(|l| l.cost(now)).sum()
    }

    /// All recorded leases (for reports and tests).
    pub fn leases(&self) -> &[Lease] {
        &self.leases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rate() -> DollarsPerSecond {
        DollarsPerSecond::per_hour(3.6) // $0.001/s, easy mental math
    }

    #[test]
    fn single_lease_bills_machine_time() {
        let mut m = BillingMeter::new();
        let t0 = SimTime::from_secs_f64(10.0);
        m.open(NodeId::new(0), rate(), t0);
        let t1 = SimTime::from_secs_f64(110.0);
        assert!(m.total_cost(t1).abs_diff(Dollars::new(0.1)) < 1e-9);
        m.close(NodeId::new(0), t1);
        // After close, later queries do not keep accruing.
        let t2 = SimTime::from_secs_f64(500.0);
        assert!(m.total_cost(t2).abs_diff(Dollars::new(0.1)) < 1e-9);
        assert_eq!(m.machine_time(t2), SimDuration::from_secs(100));
    }

    #[test]
    fn blocked_nodes_still_bill() {
        // The §3.1 invariant: holding a node costs money regardless of work.
        let mut m = BillingMeter::new();
        m.open(NodeId::new(1), rate(), SimTime::ZERO);
        let now = SimTime::from_secs_f64(60.0);
        assert!(m.total_cost(now).amount() > 0.0);
    }

    #[test]
    fn hundred_nodes_one_minute_equals_one_node_hundred_minutes() {
        // §2's elasticity identity: 1×100min and 100×1min cost the same.
        let mut a = BillingMeter::new();
        a.open(NodeId::new(0), rate(), SimTime::ZERO);
        a.close(NodeId::new(0), SimTime::from_secs_f64(6000.0));

        let mut b = BillingMeter::new();
        for i in 0..100 {
            b.open(NodeId::new(i), rate(), SimTime::ZERO);
        }
        b.close_all(SimTime::from_secs_f64(60.0));

        let now = SimTime::from_secs_f64(7000.0);
        assert!(a.total_cost(now).abs_diff(b.total_cost(now)) < 1e-9);
    }

    #[test]
    fn close_targets_matching_open_lease() {
        let mut m = BillingMeter::new();
        m.open(NodeId::new(0), rate(), SimTime::ZERO);
        m.open(NodeId::new(1), rate(), SimTime::ZERO);
        assert!(m.close(NodeId::new(1), SimTime::from_secs_f64(1.0)));
        assert_eq!(m.open_count(), 1);
        assert!(!m.close(NodeId::new(1), SimTime::from_secs_f64(2.0)));
        assert!(m.close(NodeId::new(0), SimTime::from_secs_f64(2.0)));
        assert_eq!(m.open_count(), 0);
    }

    #[test]
    fn reopened_node_bills_both_leases() {
        // A node released back to the pool and re-acquired bills twice.
        let mut m = BillingMeter::new();
        m.open(NodeId::new(0), rate(), SimTime::ZERO);
        m.close(NodeId::new(0), SimTime::from_secs_f64(10.0));
        m.open(NodeId::new(0), rate(), SimTime::from_secs_f64(50.0));
        m.close(NodeId::new(0), SimTime::from_secs_f64(60.0));
        let now = SimTime::from_secs_f64(100.0);
        assert_eq!(m.machine_time(now), SimDuration::from_secs(20));
        assert_eq!(m.leases().len(), 2);
    }

    #[test]
    fn cost_query_mid_lease_is_partial() {
        let mut m = BillingMeter::new();
        m.open(NodeId::new(0), rate(), SimTime::ZERO);
        let mid = m.total_cost(SimTime::from_secs_f64(30.0));
        m.close(NodeId::new(0), SimTime::from_secs_f64(60.0));
        let full = m.total_cost(SimTime::from_secs_f64(60.0));
        assert!(mid.amount() < full.amount());
        assert!(mid.abs_diff(full / 2.0) < 1e-9);
    }
}
