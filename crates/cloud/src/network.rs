//! Network fabric model.
//!
//! §2: "allocating more machines does not always bring performance boosts for
//! free because most database operators do not exhibit perfectly-linear
//! scalability. Many of them (e.g., hash partitioning) require exchanging
//! data between the machines where the network could become the system's
//! bottleneck." This module encodes that mechanism:
//!
//! * each node's NIC caps its own send/receive rate;
//! * the fabric's **bisection bandwidth grows sub-linearly** with cluster
//!   size (`base · d^gamma`, `gamma < 1` — oversubscribed data-center
//!   topologies);
//! * a hash-partition exchange moves `(d-1)/d` of the data across the fabric.
//!
//! Together these produce the knee in the cost-vs-DOP curve (experiment E1)
//! and the "pay more for worse latency" regime beyond it.

/// Parameters of the cluster interconnect.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkModel {
    /// Per-node NIC line rate, bytes/second.
    pub nic_bytes_per_sec: f64,
    /// Bisection bandwidth for a 1-node "fabric"; total fabric bandwidth is
    /// `base · d^gamma` for a `d`-node cluster.
    pub fabric_base_bytes_per_sec: f64,
    /// Sub-linear fabric scaling exponent in `(0, 1]`.
    pub fabric_gamma: f64,
    /// Fixed per-exchange setup latency (connection fan-out), seconds.
    pub exchange_setup_secs: f64,
}

impl NetworkModel {
    /// A 10 Gbit NIC with a moderately oversubscribed fabric. `gamma = 0.75`
    /// means doubling the cluster multiplies total fabric bandwidth by ~1.68.
    pub fn standard() -> NetworkModel {
        NetworkModel {
            nic_bytes_per_sec: 1.25e9,
            fabric_base_bytes_per_sec: 1.25e9,
            fabric_gamma: 0.75,
            exchange_setup_secs: 5e-3,
        }
    }

    /// An idealized non-blocking fabric (`gamma = 1`): exchange bandwidth
    /// scales linearly. Used in ablations to isolate the network effect.
    pub fn non_blocking() -> NetworkModel {
        NetworkModel {
            fabric_gamma: 1.0,
            ..NetworkModel::standard()
        }
    }

    /// Aggregate cross-cluster bandwidth available to a `d`-node exchange.
    pub fn aggregate_exchange_bw(&self, d: u32) -> f64 {
        if d <= 1 {
            return f64::INFINITY; // single node: no network hop
        }
        let d_f = d as f64;
        let nic_bound = d_f * self.nic_bytes_per_sec;
        let fabric_bound = self.fabric_base_bytes_per_sec * d_f.powf(self.fabric_gamma);
        nic_bound.min(fabric_bound)
    }

    /// Effective per-node exchange bandwidth at DOP `d`.
    pub fn per_node_exchange_bw(&self, d: u32) -> f64 {
        if d <= 1 {
            f64::INFINITY
        } else {
            self.aggregate_exchange_bw(d) / d as f64
        }
    }

    /// Wire time to hash-partition `bytes` of data among `d` nodes
    /// (producers == consumers, uniform partitioning): `(d-1)/d` of the
    /// payload crosses the fabric.
    pub fn exchange_secs(&self, bytes: f64, d: u32) -> f64 {
        if d <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        let cross = bytes * (d as f64 - 1.0) / d as f64;
        self.exchange_setup_secs + cross / self.aggregate_exchange_bw(d)
    }

    /// Wire time to broadcast `bytes` from every producer to all `d` nodes
    /// (broadcast join build side): payload is replicated `d-1` times.
    pub fn broadcast_secs(&self, bytes: f64, d: u32) -> f64 {
        if d <= 1 || bytes <= 0.0 {
            return 0.0;
        }
        let cross = bytes * (d as f64 - 1.0);
        self.exchange_setup_secs + cross / self.aggregate_exchange_bw(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_exchange_is_free() {
        let n = NetworkModel::standard();
        assert_eq!(n.exchange_secs(1e9, 1), 0.0);
        assert_eq!(n.broadcast_secs(1e9, 1), 0.0);
    }

    #[test]
    fn per_node_bandwidth_degrades_with_scale() {
        let n = NetworkModel::standard();
        let bw4 = n.per_node_exchange_bw(4);
        let bw64 = n.per_node_exchange_bw(64);
        assert!(
            bw64 < bw4,
            "oversubscribed fabric must degrade per-node bw: {bw64} vs {bw4}"
        );
    }

    #[test]
    fn non_blocking_fabric_keeps_per_node_bw() {
        let n = NetworkModel::non_blocking();
        let bw4 = n.per_node_exchange_bw(4);
        let bw64 = n.per_node_exchange_bw(64);
        // NIC-bound on both ends: identical per-node bandwidth.
        assert!((bw4 - bw64).abs() / bw4 < 1e-9);
    }

    #[test]
    fn exchange_time_has_a_knee() {
        // Fixed data volume: time should fall then flatten/rise per added node
        // relative to ideal 1/d scaling.
        let n = NetworkModel::standard();
        let bytes = 100e9;
        let t2 = n.exchange_secs(bytes, 2);
        let t16 = n.exchange_secs(bytes, 16);
        let t256 = n.exchange_secs(bytes, 256);
        assert!(t16 < t2);
        // Beyond the knee, adding nodes barely helps: with gamma = 0.75 the
        // 16 -> 256 speedup is capped near (256/16)^0.75 = 8, far below the
        // 16x ideal.
        let speedup = t16 / t256;
        assert!(speedup < 8.5, "speedup {speedup} should be far sub-linear");
    }

    #[test]
    fn broadcast_grows_with_cluster_size() {
        let n = NetworkModel::standard();
        let b4 = n.broadcast_secs(1e9, 4);
        let b32 = n.broadcast_secs(1e9, 32);
        assert!(
            b32 > b4,
            "broadcast replicates build side; more nodes = more bytes"
        );
    }

    #[test]
    fn zero_bytes_costs_nothing() {
        let n = NetworkModel::standard();
        assert_eq!(n.exchange_secs(0.0, 8), 0.0);
    }

    #[test]
    fn aggregate_bw_monotone_in_d() {
        let n = NetworkModel::standard();
        let mut prev = 0.0;
        for d in 2..200u32 {
            let bw = n.aggregate_exchange_bw(d);
            assert!(bw >= prev, "aggregate bw must not shrink with d");
            prev = bw;
        }
    }
}
