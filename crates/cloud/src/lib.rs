//! Simulated elastic cloud substrate.
//!
//! The paper assumes a disaggregated architecture (§3, Figure 3): stateless
//! compute nodes acquired on demand over a shared object store, billed
//! per machine-second, with a provider-side warm pool enabling fast cluster
//! creation/resizing. None of that hardware is available to a reproduction,
//! so this crate *is* the cloud: a deterministic model of
//!
//! * node types and their prices ([`node`], [`pricing`]),
//! * cluster lifecycle with warm/cold provisioning latencies ([`cluster`]),
//! * machine-time billing — blocked nodes still bill, per §3.1 ([`billing`]),
//! * the network fabric whose sub-linear bisection scaling creates the
//!   exchange-operator knee the paper argues about ([`network`]),
//! * object-store scan bandwidth ([`objectstore`]),
//! * deterministic fault injection — transient fetch failures and
//!   throttling, straggler slowdowns, worker preemption — with per-morsel
//!   draws that are pure in `(seed, pipeline, morsel)` ([`faults`]).
//!
//! All models are pure functions of explicit parameters plus virtual time
//! ([`ci_types::SimTime`]); the discrete-event clock itself lives in the
//! execution engine.

pub mod billing;
pub mod cluster;
pub mod faults;
pub mod network;
pub mod node;
pub mod objectstore;
pub mod pricing;
pub mod tiercache;
pub mod work;

pub use billing::BillingMeter;
pub use cluster::{Acquisition, ClusterManager};
pub use faults::{FaultInjector, FaultPlan, FaultProfile, MorselFaults};
pub use network::NetworkModel;
pub use node::{HardwareProfile, NodeType};
pub use objectstore::ObjectStoreModel;
pub use pricing::{PriceList, TShirtSize, TierPricing, TierSpec};
pub use tiercache::{CacheAccess, CacheCounters, CacheKey, TierCacheSim, TierLevel};
pub use work::WorkModels;
