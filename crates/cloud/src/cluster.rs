//! Cluster lifecycle: acquire, resize, release — with a warm pool.
//!
//! §3 assumes "the database service provider maintains a warm server pool to
//! facilitate rapid cluster creation, resizing, and reclamation". The manager
//! models exactly that: acquisitions served from the warm pool become ready
//! after a short warm-start latency; beyond pool capacity, nodes cold-start.
//! Released nodes refill the pool. Every acquired node opens a billing lease
//! immediately (§3.1: you pay from acquisition, even before the node is
//! ready or doing useful work).

use std::collections::BTreeSet;

use ci_types::ids::IdGen;
use ci_types::money::Dollars;
use ci_types::{CiError, NodeId, Result, SimDuration, SimTime};

use crate::billing::BillingMeter;
use crate::node::NodeType;

/// Result of an acquisition: which nodes were granted and when each batch
/// becomes usable.
#[derive(Debug, Clone, PartialEq)]
pub struct Acquisition {
    /// Newly granted node ids.
    pub nodes: Vec<NodeId>,
    /// Instant at which *all* granted nodes are ready for work.
    pub ready_at: SimTime,
    /// How many of the granted nodes came from the warm pool.
    pub warm_hits: usize,
}

/// Configuration of the provider's provisioning behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ProvisioningConfig {
    /// Warm-pool capacity (nodes kept pre-booted).
    pub warm_pool_capacity: usize,
    /// Latency to hand over a warm node.
    pub warm_start: SimDuration,
    /// Latency to boot a cold node.
    pub cold_start: SimDuration,
    /// Hard ceiling on simultaneously held nodes (account quota).
    pub max_nodes: usize,
}

impl Default for ProvisioningConfig {
    fn default() -> Self {
        ProvisioningConfig {
            warm_pool_capacity: 64,
            warm_start: SimDuration::from_millis(500),
            cold_start: SimDuration::from_secs(30),
            max_nodes: 4096,
        }
    }
}

/// Manages the node inventory for one tenant (§3 assumes private compute:
/// clusters are not shared between users).
#[derive(Debug, Clone)]
pub struct ClusterManager {
    node_type: NodeType,
    config: ProvisioningConfig,
    warm_available: usize,
    active: BTreeSet<NodeId>,
    ids: IdGen,
    meter: BillingMeter,
    resize_ops: u64,
}

impl ClusterManager {
    /// Creates a manager for one node shape with the given provisioning model.
    pub fn new(node_type: NodeType, config: ProvisioningConfig) -> Self {
        let warm_available = config.warm_pool_capacity;
        ClusterManager {
            node_type,
            config,
            warm_available,
            active: BTreeSet::new(),
            ids: IdGen::new(),
            meter: BillingMeter::new(),
            resize_ops: 0,
        }
    }

    /// Convenience constructor with defaults.
    pub fn standard() -> Self {
        ClusterManager::new(NodeType::standard(), ProvisioningConfig::default())
    }

    /// The node shape this manager provisions.
    pub fn node_type(&self) -> &NodeType {
        &self.node_type
    }

    /// Acquires `n` nodes at `now`. Leases open immediately; nodes are ready
    /// at `Acquisition::ready_at`. Fails if the account quota would be
    /// exceeded.
    pub fn acquire(&mut self, n: usize, now: SimTime) -> Result<Acquisition> {
        if n == 0 {
            return Ok(Acquisition {
                nodes: Vec::new(),
                ready_at: now,
                warm_hits: 0,
            });
        }
        if self.active.len() + n > self.config.max_nodes {
            return Err(CiError::Cloud(format!(
                "quota exceeded: {} active + {} requested > {} max",
                self.active.len(),
                n,
                self.config.max_nodes
            )));
        }
        let warm_hits = n.min(self.warm_available);
        self.warm_available -= warm_hits;
        let cold = n - warm_hits;
        let mut nodes = Vec::with_capacity(n);
        for _ in 0..n {
            let id: NodeId = self.ids.next_id();
            self.meter.open(id, self.node_type.rate, now);
            self.active.insert(id);
            nodes.push(id);
        }
        let latency = if cold > 0 {
            self.config.cold_start
        } else {
            self.config.warm_start
        };
        self.resize_ops += 1;
        Ok(Acquisition {
            nodes,
            ready_at: now + latency,
            warm_hits,
        })
    }

    /// Releases nodes at `now`: closes their leases and refills the warm
    /// pool up to capacity. Unknown ids are an error (double release).
    pub fn release(&mut self, nodes: &[NodeId], now: SimTime) -> Result<()> {
        for &id in nodes {
            if !self.active.remove(&id) {
                return Err(CiError::Cloud(format!("release of non-active {id}")));
            }
            self.meter.close(id, now);
            if self.warm_available < self.config.warm_pool_capacity {
                self.warm_available += 1;
            }
        }
        if !nodes.is_empty() {
            self.resize_ops += 1;
        }
        Ok(())
    }

    /// Releases everything (end of query / cluster reclamation).
    pub fn release_all(&mut self, now: SimTime) {
        self.meter.close_all(now);
        for _ in 0..self.active.len() {
            if self.warm_available < self.config.warm_pool_capacity {
                self.warm_available += 1;
            }
        }
        if !self.active.is_empty() {
            self.resize_ops += 1;
        }
        self.active.clear();
    }

    /// Currently held nodes.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.active.iter().copied()
    }

    /// Number of currently held nodes.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Warm nodes currently available in the pool.
    pub fn warm_available(&self) -> usize {
        self.warm_available
    }

    /// Number of acquire/release operations performed (resize churn metric
    /// for experiments E6/E10).
    pub fn resize_ops(&self) -> u64 {
        self.resize_ops
    }

    /// Total cost accrued as of `now`.
    pub fn total_cost(&self, now: SimTime) -> Dollars {
        self.meter.total_cost(now)
    }

    /// Total machine time as of `now`.
    pub fn machine_time(&self, now: SimTime) -> SimDuration {
        self.meter.machine_time(now)
    }

    /// Read-only view of the billing meter.
    pub fn meter(&self) -> &BillingMeter {
        &self.meter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mgr(warm: usize) -> ClusterManager {
        let cfg = ProvisioningConfig {
            warm_pool_capacity: warm,
            ..ProvisioningConfig::default()
        };
        ClusterManager::new(NodeType::standard(), cfg)
    }

    #[test]
    fn warm_acquisition_is_fast() {
        let mut m = mgr(8);
        let acq = m.acquire(4, SimTime::ZERO).unwrap();
        assert_eq!(acq.nodes.len(), 4);
        assert_eq!(acq.warm_hits, 4);
        assert_eq!(acq.ready_at, SimTime::ZERO + SimDuration::from_millis(500));
        assert_eq!(m.warm_available(), 4);
    }

    #[test]
    fn overflow_goes_cold() {
        let mut m = mgr(2);
        let acq = m.acquire(5, SimTime::ZERO).unwrap();
        assert_eq!(acq.warm_hits, 2);
        // Any cold node delays overall readiness to the cold-start latency.
        assert_eq!(acq.ready_at, SimTime::ZERO + SimDuration::from_secs(30));
    }

    #[test]
    fn release_refills_pool_and_stops_billing() {
        let mut m = mgr(2);
        let acq = m.acquire(2, SimTime::ZERO).unwrap();
        assert_eq!(m.warm_available(), 0);
        let t = SimTime::from_secs_f64(100.0);
        m.release(&acq.nodes, t).unwrap();
        assert_eq!(m.warm_available(), 2);
        assert_eq!(m.active_count(), 0);
        let later = SimTime::from_secs_f64(1000.0);
        // Cost frozen at release time: 2 nodes * 100 s * $2/3600 per s.
        let expected = 2.0 * 100.0 * 2.0 / 3600.0;
        assert!(m.total_cost(later).abs_diff(Dollars::new(expected)) < 1e-9);
    }

    #[test]
    fn double_release_is_error() {
        let mut m = mgr(2);
        let acq = m.acquire(1, SimTime::ZERO).unwrap();
        m.release(&acq.nodes, SimTime::from_secs_f64(1.0)).unwrap();
        assert!(m.release(&acq.nodes, SimTime::from_secs_f64(2.0)).is_err());
    }

    #[test]
    fn quota_enforced() {
        let cfg = ProvisioningConfig {
            max_nodes: 3,
            ..ProvisioningConfig::default()
        };
        let mut m = ClusterManager::new(NodeType::standard(), cfg);
        m.acquire(3, SimTime::ZERO).unwrap();
        assert!(m.acquire(1, SimTime::ZERO).is_err());
    }

    #[test]
    fn zero_acquire_is_noop() {
        let mut m = mgr(2);
        let acq = m.acquire(0, SimTime::from_secs_f64(5.0)).unwrap();
        assert!(acq.nodes.is_empty());
        assert_eq!(acq.ready_at, SimTime::from_secs_f64(5.0));
        assert_eq!(m.resize_ops(), 0);
    }

    #[test]
    fn billing_runs_from_acquisition_not_readiness() {
        // Pay-from-acquire: a cold node bills during its 30 s boot.
        let mut m = mgr(0);
        m.acquire(1, SimTime::ZERO).unwrap();
        let boot_done = SimTime::ZERO + SimDuration::from_secs(30);
        assert!(m.total_cost(boot_done).amount() > 0.0);
    }

    #[test]
    fn resize_ops_counted() {
        let mut m = mgr(8);
        let a = m.acquire(2, SimTime::ZERO).unwrap();
        let b = m.acquire(2, SimTime::ZERO).unwrap();
        m.release(&a.nodes, SimTime::from_secs_f64(1.0)).unwrap();
        m.release(&b.nodes, SimTime::from_secs_f64(1.0)).unwrap();
        assert_eq!(m.resize_ops(), 4);
    }

    #[test]
    fn release_all_clears_state() {
        let mut m = mgr(4);
        m.acquire(3, SimTime::ZERO).unwrap();
        m.release_all(SimTime::from_secs_f64(10.0));
        assert_eq!(m.active_count(), 0);
        assert_eq!(m.meter().open_count(), 0);
        assert_eq!(m.warm_available(), 4);
    }
}
