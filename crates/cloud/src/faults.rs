//! Deterministic fault injection for the simulated cloud substrate.
//!
//! A real disaggregated warehouse spends Dollars on failure: throttled or
//! failed object-store GETs are retried (re-billed latency *and* re-fetched
//! bytes), straggling nodes stretch pipeline tails until a speculative hedge
//! duplicates their work, and preempted workers lose in-flight morsels that
//! must be reassigned. None of that changes the *answer* of a query — only
//! its bill. This module models exactly that split:
//!
//! * a [`FaultProfile`] names the rates and penalties of each fault class
//!   (the knobs a tier's SLA would quote), and
//! * a [`FaultPlan`] seeds a [`FaultInjector`] whose per-morsel draws are a
//!   pure function of `(seed, pipeline, morsel)` — independent of worker
//!   count, scheduling order, and execution mode — via [`ci_types::DetRng`]
//!   fork streams.
//!
//! The engine consumes [`MorselFaults`] in its accounting phase; the cost
//! estimator consumes the profile's *expected values* ([`FaultProfile::
//! expected_fetch_overhead_factor`] and friends) as a failure-tax term. Both
//! sides price the same taxonomy, which is what lets the what-if service
//! compare "cheaper but flakier" against "pricier but reliable" tiers the
//! same way it prices reclustering.
//!
//! Recoverability is a *profile property*, not luck: transient fetch
//! failures are drawn capped at [`FaultProfile::max_retries`], so a profile
//! with `permanent_failure_rate == 0.0` can never produce an unrecoverable
//! schedule. The `CI_FAULT_MODE=chaos:<seed>` CI toggle relies on this.

use ci_types::{DetRng, SimDuration};

/// Rates and penalties of every injected fault class. All rates are
/// per-morsel probabilities in `[0, 1]`; penalties are simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultProfile {
    /// Probability a scan morsel's object-store fetch fails transiently at
    /// least once. Failed attempts are retried with exponential backoff and
    /// re-billed (latency and re-fetched bytes).
    pub fetch_failure_rate: f64,
    /// Upper bound on transient-fetch retries per morsel. Draws are capped
    /// here, so transient failures alone are always recoverable.
    pub max_retries: u32,
    /// Backoff before the first retry; attempt `k` waits `2^k` times this.
    pub retry_backoff: SimDuration,
    /// Probability a scan morsel's fetch is throttled by the store
    /// (latency penalty, no re-fetch).
    pub throttle_rate: f64,
    /// Added latency per throttle event.
    pub throttle_penalty: SimDuration,
    /// Probability a morsel lands on a straggling node.
    pub straggler_rate: f64,
    /// Largest compute slowdown a straggler can impose; draws are uniform
    /// in `[1.5, max]` (clamped up to 1.5 so a straggler always straggles).
    pub straggler_slowdown_max: f64,
    /// Slowdown at which the engine hedges: launches a speculative
    /// duplicate of the morsel and takes the first result.
    pub hedge_threshold: f64,
    /// Fraction of a morsel's expected compute time that passes before the
    /// straggler is detected and the hedge copy launches.
    pub hedge_detect_frac: f64,
    /// Probability a morsel's worker is preempted mid-morsel, losing its
    /// partial work; the morsel is reassigned and re-run from scratch.
    pub worker_loss_rate: f64,
    /// Probability a scan morsel's object is permanently unreachable:
    /// every retry up to [`FaultProfile::max_retries`] is billed, then the
    /// query surfaces a typed [`ci_types::CiError::Fault`]. Keep this 0 for
    /// chaos runs that must stay recoverable.
    pub permanent_failure_rate: f64,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile::light()
    }
}

impl FaultProfile {
    /// A mild, always-recoverable profile: occasional retries, throttles,
    /// stragglers, and preemptions, never a permanent failure. This is what
    /// `CI_FAULT_MODE=chaos:<seed>` runs the whole test suite under, so its
    /// penalties are kept small relative to typical morsel work.
    pub fn light() -> FaultProfile {
        FaultProfile {
            fetch_failure_rate: 0.04,
            max_retries: 4,
            retry_backoff: SimDuration::from_millis(2),
            throttle_rate: 0.03,
            throttle_penalty: SimDuration::from_millis(1),
            straggler_rate: 0.03,
            straggler_slowdown_max: 4.0,
            hedge_threshold: 2.0,
            hedge_detect_frac: 0.25,
            worker_loss_rate: 0.01,
            permanent_failure_rate: 0.0,
        }
    }

    /// A fault-free profile (every rate zero); the injector built from it
    /// never injects. Useful as a baseline in A/B pricing.
    pub fn none() -> FaultProfile {
        FaultProfile {
            fetch_failure_rate: 0.0,
            max_retries: 4,
            retry_backoff: SimDuration::from_millis(2),
            throttle_rate: 0.0,
            throttle_penalty: SimDuration::from_millis(1),
            straggler_rate: 0.0,
            straggler_slowdown_max: 4.0,
            hedge_threshold: 2.0,
            hedge_detect_frac: 0.25,
            worker_loss_rate: 0.0,
            permanent_failure_rate: 0.0,
        }
    }

    /// `true` when no fault class can fire.
    pub fn is_quiet(&self) -> bool {
        self.fetch_failure_rate <= 0.0
            && self.throttle_rate <= 0.0
            && self.straggler_rate <= 0.0
            && self.worker_loss_rate <= 0.0
            && self.permanent_failure_rate <= 0.0
    }

    /// `true` when this profile can only produce recoverable schedules.
    pub fn is_recoverable(&self) -> bool {
        self.permanent_failure_rate <= 0.0
    }

    /// Backoff before retry `k` (0-based): `retry_backoff * 2^k`.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        SimDuration::from_micros(
            self.retry_backoff
                .as_micros()
                .saturating_mul(1u64 << attempt.min(20)),
        )
    }

    /// The latency/cost factor a hedged morsel's compute actually takes:
    /// the hedge launches at `hedge_detect_frac` of the expected compute
    /// and runs at full speed, so the first result lands at
    /// `min(slowdown, 1 + hedge_detect_frac)` times the fault-free compute.
    /// On an exact tie the canonical (original) attempt wins.
    pub fn hedged_factor(&self, slowdown: f64) -> f64 {
        slowdown.min(1.0 + self.hedge_detect_frac)
    }

    // ---- Expected values: the estimator's failure-tax terms. ----

    /// Expected extra fetch work per morsel, as a multiple of one fetch:
    /// `E[retries] = rate * (1 + 1/max_retries)/2`-ish would overfit the
    /// capped geometric; we use the exact expectation of the capped draw
    /// (see [`MorselFaults`]): one failure with probability `rate`, each
    /// further failure half as likely, capped at `max_retries`.
    pub fn expected_fetch_overhead_factor(&self) -> f64 {
        let p = self.fetch_failure_rate.clamp(0.0, 1.0);
        if p <= 0.0 {
            return 0.0;
        }
        // E[failures] = p * sum_{k=1..max} k * 2^-(k-1) / norm, matching the
        // halving ladder the injector draws from.
        let mut num = 0.0;
        let mut norm = 0.0;
        for k in 1..=self.max_retries.max(1) {
            let w = 0.5f64.powi(k as i32 - 1);
            num += k as f64 * w;
            norm += w;
        }
        p * num / norm
    }

    /// Expected backoff seconds per morsel from transient-fetch retries.
    pub fn expected_backoff_secs(&self) -> f64 {
        let p = self.fetch_failure_rate.clamp(0.0, 1.0);
        if p <= 0.0 {
            return 0.0;
        }
        let mut num = 0.0;
        let mut norm = 0.0;
        for k in 1..=self.max_retries.max(1) {
            let w = 0.5f64.powi(k as i32 - 1);
            let backoff: f64 = (0..k).map(|a| self.backoff(a).as_secs_f64()).sum();
            num += backoff * w;
            norm += w;
        }
        p * num / norm
    }

    /// Expected throttle penalty seconds per scan morsel.
    pub fn expected_throttle_secs(&self) -> f64 {
        self.throttle_rate.clamp(0.0, 1.0) * self.throttle_penalty.as_secs_f64()
    }

    /// Expected extra compute per morsel from stragglers and their hedges,
    /// as a multiple of the morsel's fault-free compute time. Mirrors the
    /// engine's billing: an unhedged straggler bills `s - 1` extra; a hedged
    /// one bills the capped latency excess plus the duplicate copy's run.
    pub fn expected_straggler_overhead_factor(&self) -> f64 {
        let p = self.straggler_rate.clamp(0.0, 1.0);
        if p <= 0.0 {
            return 0.0;
        }
        let lo = 1.5;
        let hi = self.straggler_slowdown_max.max(lo);
        // Uniform draw over [lo, hi]; split at the hedge threshold.
        let t = self.hedge_threshold.clamp(lo, hi);
        let span = (hi - lo).max(f64::EPSILON);
        // Below threshold: E[s - 1] over [lo, t).
        let w_lo = (t - lo) / span;
        let mean_lo = (lo + t) / 2.0 - 1.0;
        // At or above: capped latency excess + duplicate copy.
        let w_hi = (hi - t) / span;
        let eff = self.hedged_factor(hi.max(t));
        let mean_hi = (eff - 1.0) + (eff - self.hedge_detect_frac);
        p * (w_lo * mean_lo.max(0.0) + w_hi * mean_hi.max(0.0))
    }

    /// Expected extra whole-morsel work (fetch + compute) from worker loss,
    /// as a multiple of the morsel's fault-free total: the lost attempt ran
    /// for an expected half-morsel before preemption.
    pub fn expected_loss_overhead_factor(&self) -> f64 {
        self.worker_loss_rate.clamp(0.0, 1.0) * 0.5
    }
}

/// A seeded fault schedule: profile + root seed. Cheap to clone; build one
/// [`FaultInjector`] per query.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Root seed every per-morsel stream forks from.
    pub seed: u64,
    /// Rates and penalties.
    pub profile: FaultProfile,
}

impl FaultPlan {
    /// A plan over the given profile.
    pub fn new(seed: u64, profile: FaultProfile) -> FaultPlan {
        FaultPlan { seed, profile }
    }

    /// The CI chaos plan: [`FaultProfile::light`] under the given seed.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan::new(seed, FaultProfile::light())
    }

    /// Reads a plan from the `CI_FAULT_MODE` environment variable
    /// (`chaos:<seed>`, or `off`/empty/unset for none) — the CI toggle that
    /// runs the whole test suite under deterministic fault injection,
    /// layered on the `CI_EXEC_MODE` matrix.
    pub fn from_env() -> Option<FaultPlan> {
        Self::parse(&std::env::var("CI_FAULT_MODE").ok()?)
    }

    /// Parses a `CI_FAULT_MODE` value: `chaos:<seed>` (also bare `chaos`,
    /// seed 0); `off`/`none`/empty parse to `None`.
    pub fn parse(s: &str) -> Option<FaultPlan> {
        let s = s.trim();
        match s {
            "" | "off" | "none" => None,
            "chaos" => Some(FaultPlan::chaos(0)),
            _ => s
                .strip_prefix("chaos:")
                .and_then(|n| n.trim().parse::<u64>().ok())
                .map(FaultPlan::chaos),
        }
    }

    /// Builds the injector for this plan.
    pub fn injector(&self) -> FaultInjector {
        FaultInjector {
            root: DetRng::seed_from_u64(self.seed),
            profile: self.profile.clone(),
        }
    }
}

/// Every fault drawn for one morsel. Pure data; the engine turns it into
/// billed recovery time and (in parallel mode) real re-execution.
#[derive(Debug, Clone, PartialEq)]
pub struct MorselFaults {
    /// Transient fetch failures before the fetch succeeds, each retried
    /// with exponential backoff and a re-billed fetch. Capped at
    /// [`FaultProfile::max_retries`].
    pub fetch_failures: u32,
    /// The fetch never succeeds: all retries are billed, then the query
    /// fails with a typed error.
    pub fetch_permanent: bool,
    /// Throttle events on the fetch path (latency penalty, no re-fetch).
    pub throttles: u32,
    /// Compute slowdown factor when this morsel landed on a straggler.
    pub straggler: Option<f64>,
    /// The assigned worker was preempted this far into the morsel
    /// (fraction of fetch+compute); the morsel re-runs from scratch.
    pub worker_lost: Option<f64>,
}

impl MorselFaults {
    /// A fault-free draw.
    pub fn clean() -> MorselFaults {
        MorselFaults {
            fetch_failures: 0,
            fetch_permanent: false,
            throttles: 0,
            straggler: None,
            worker_lost: None,
        }
    }

    /// Total fault events this morsel carries.
    pub fn count(&self) -> u32 {
        self.fetch_failures
            + u32::from(self.fetch_permanent)
            + self.throttles
            + u32::from(self.straggler.is_some())
            + u32::from(self.worker_lost.is_some())
    }

    /// `true` when nothing fired.
    pub fn is_clean(&self) -> bool {
        self.count() == 0
    }

    /// One `(kind, magnitude)` entry per injected fault, in draw order —
    /// the shape trace exporters render as instant events. Magnitude is the
    /// slowdown factor (stragglers) or lost-progress fraction (preemption);
    /// count-style faults carry `None`.
    pub fn events(&self) -> Vec<(&'static str, Option<f64>)> {
        let mut out = Vec::new();
        for _ in 0..self.fetch_failures {
            out.push(("fetch_failure", None));
        }
        if self.fetch_permanent {
            out.push(("fetch_permanent", None));
        }
        for _ in 0..self.throttles {
            out.push(("throttle", None));
        }
        if let Some(s) = self.straggler {
            out.push(("straggler", Some(s)));
        }
        if let Some(frac) = self.worker_lost {
            out.push(("worker_lost", Some(frac)));
        }
        out
    }
}

/// Deterministic per-morsel fault source. Draws are a pure function of
/// `(seed, pipeline, morsel)`: the injector clones its root stream and
/// forks it twice, so no draw depends on how many draws came before it —
/// the property that keeps Simulate, Parallel, and any worker count on the
/// *same* fault schedule.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    root: DetRng,
    profile: FaultProfile,
}

impl FaultInjector {
    /// The profile this injector draws from.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Draws the faults of one morsel. `scan_fetch` gates the object-store
    /// classes (transient/permanent failures, throttling), which only make
    /// sense for morsels that really fetch; straggler and preemption draws
    /// apply to every morsel.
    pub fn morsel_faults(&self, pipeline: u64, morsel: u64, scan_fetch: bool) -> MorselFaults {
        let p = &self.profile;
        let mut rng = self.root.clone().fork(pipeline).fork(morsel);
        let mut f = MorselFaults::clean();
        // Fixed draw order: the schedule is part of the determinism
        // contract, so every class consumes its draws even when gated off.
        let fail = rng.bool_with(p.fetch_failure_rate);
        // Halving ladder: k failures are half as likely as k-1, capped.
        let mut failures = 1u32;
        while failures < p.max_retries.max(1) && rng.bool_with(0.5) {
            failures += 1;
        }
        let permanent = rng.bool_with(p.permanent_failure_rate);
        let throttled = rng.bool_with(p.throttle_rate);
        let straggler_hit = rng.bool_with(p.straggler_rate);
        let slowdown = rng.range_f64(1.5, p.straggler_slowdown_max.max(1.5) + f64::EPSILON);
        let lost = rng.bool_with(p.worker_loss_rate);
        let loss_frac = rng.f64();
        if scan_fetch {
            if permanent {
                f.fetch_permanent = true;
                f.fetch_failures = p.max_retries;
            } else if fail {
                f.fetch_failures = failures;
            }
            if throttled {
                f.throttles = 1;
            }
        }
        if straggler_hit {
            f.straggler = Some(slowdown);
        }
        if lost {
            f.worker_lost = Some(loss_frac);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_in_pipeline_and_morsel() {
        let plan = FaultPlan::new(42, FaultProfile::light());
        let a = plan.injector();
        let b = plan.injector();
        for pi in 0..4u64 {
            for mi in 0..64u64 {
                assert_eq!(
                    a.morsel_faults(pi, mi, true),
                    b.morsel_faults(pi, mi, true),
                    "draw ({pi},{mi}) must not depend on injector history"
                );
            }
        }
        // Query order independence: interleaved vs. sequential access.
        let x = a.morsel_faults(1, 7, true);
        let _ = a.morsel_faults(3, 1, false);
        assert_eq!(a.morsel_faults(1, 7, true), x);
    }

    #[test]
    fn seeds_and_indices_change_the_schedule() {
        let a = FaultPlan::chaos(1).injector();
        let b = FaultPlan::chaos(2).injector();
        let differs = (0..256u64)
            .filter(|&mi| a.morsel_faults(0, mi, true) != b.morsel_faults(0, mi, true))
            .count();
        assert!(
            differs > 0,
            "different seeds must produce different schedules"
        );
        let across = (0..256u64)
            .filter(|&mi| a.morsel_faults(0, mi, true) != a.morsel_faults(1, mi, true))
            .count();
        assert!(across > 0, "pipelines must have independent streams");
    }

    #[test]
    fn light_profile_is_recoverable_and_capped() {
        let p = FaultProfile::light();
        assert!(p.is_recoverable());
        let inj = FaultPlan::new(7, p.clone()).injector();
        let mut fired = 0u32;
        for mi in 0..2_000u64 {
            let f = inj.morsel_faults(0, mi, true);
            assert!(!f.fetch_permanent);
            assert!(f.fetch_failures <= p.max_retries);
            fired += f.count();
        }
        assert!(
            fired > 0,
            "light profile must actually inject at this scale"
        );
    }

    #[test]
    fn quiet_profile_never_fires() {
        let inj = FaultPlan::new(9, FaultProfile::none()).injector();
        for mi in 0..500u64 {
            assert!(inj.morsel_faults(0, mi, true).is_clean());
        }
        assert!(FaultProfile::none().is_quiet());
        assert!(!FaultProfile::light().is_quiet());
    }

    #[test]
    fn env_parsing() {
        assert_eq!(FaultPlan::parse(""), None);
        assert_eq!(FaultPlan::parse("off"), None);
        assert_eq!(FaultPlan::parse("none"), None);
        assert_eq!(FaultPlan::parse("bogus"), None);
        assert_eq!(FaultPlan::parse("chaos"), Some(FaultPlan::chaos(0)));
        assert_eq!(FaultPlan::parse("chaos:17"), Some(FaultPlan::chaos(17)));
        assert_eq!(FaultPlan::parse(" chaos:3 "), Some(FaultPlan::chaos(3)));
        assert_eq!(FaultPlan::parse("chaos:x"), None);
    }

    #[test]
    fn backoff_doubles() {
        let p = FaultProfile::light();
        assert_eq!(p.backoff(0), SimDuration::from_millis(2));
        assert_eq!(p.backoff(1), SimDuration::from_millis(4));
        assert_eq!(p.backoff(3), SimDuration::from_millis(16));
    }

    #[test]
    fn hedging_caps_the_straggler_factor() {
        let p = FaultProfile::light();
        // Above threshold: capped at 1 + detect fraction.
        assert!((p.hedged_factor(4.0) - 1.25).abs() < 1e-12);
        // A (hypothetical) mild slowdown stays as-is under the min.
        assert!((p.hedged_factor(1.1) - 1.1).abs() < 1e-12);
    }

    #[test]
    fn expected_overheads_scale_with_rates() {
        let quiet = FaultProfile::none();
        assert_eq!(quiet.expected_fetch_overhead_factor(), 0.0);
        assert_eq!(quiet.expected_backoff_secs(), 0.0);
        assert_eq!(quiet.expected_throttle_secs(), 0.0);
        assert_eq!(quiet.expected_straggler_overhead_factor(), 0.0);
        assert_eq!(quiet.expected_loss_overhead_factor(), 0.0);

        let light = FaultProfile::light();
        let mut flaky = light.clone();
        flaky.fetch_failure_rate *= 4.0;
        flaky.straggler_rate *= 4.0;
        flaky.worker_loss_rate *= 4.0;
        flaky.throttle_rate *= 4.0;
        assert!(flaky.expected_fetch_overhead_factor() > light.expected_fetch_overhead_factor());
        assert!(flaky.expected_backoff_secs() > light.expected_backoff_secs());
        assert!(flaky.expected_throttle_secs() > light.expected_throttle_secs());
        assert!(
            flaky.expected_straggler_overhead_factor() > light.expected_straggler_overhead_factor()
        );
        assert!(flaky.expected_loss_overhead_factor() > light.expected_loss_overhead_factor());
        // Expected retries stay bounded by the cap.
        assert!(flaky.expected_fetch_overhead_factor() <= flaky.max_retries as f64);
    }
}
