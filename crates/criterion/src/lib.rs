//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a minimal, API-compatible subset of criterion sufficient
//! for `crates/bench/benches/micro.rs`: [`Criterion`], benchmark groups,
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BatchSize`], and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warm-up, then `sample_size`
//! timed samples of an adaptively chosen iteration count, reporting
//! min / median / mean per-iteration wall time. No statistics beyond that,
//! no plots, no baseline files — but the numbers are honest wall-clock and
//! good enough for before/after comparisons on one machine.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Hint for how setup cost relates to routine cost in `iter_batched`; the
/// stand-in accepts all variants and always batches per-sample.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 50,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(id, sample_size, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Target per-sample wall time; iteration count is calibrated to hit it.
const TARGET_SAMPLE: Duration = Duration::from_millis(20);
/// Upper bound on total time spent in one benchmark's measurement loop.
const TIME_BUDGET: Duration = Duration::from_secs(3);

fn run_benchmark<F>(id: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: start at 1 iteration and grow until one sample takes
    // TARGET_SAMPLE (or growth exhausts the budget for slow routines).
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 20 || b.elapsed * 8 > TIME_BUDGET {
            break;
        }
        iters *= 2;
    }

    let budget_start = Instant::now();
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        if budget_start.elapsed() > TIME_BUDGET {
            break;
        }
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_ns.first().copied().unwrap_or(f64::NAN);
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    println!(
        "{id:<40} min {} · median {} · mean {}  ({} samples × {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(mean),
        per_iter_ns.len(),
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:7.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:7.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:7.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:7.3} s ", ns / 1_000_000_000.0)
    }
}

/// Declare a benchmark group: a function that runs each benchmark function
/// against a fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare the bench entry point (`harness = false`) running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}
