//! The pipeline-granular DOP monitor.

use ci_cost::{CostEstimator, PipelineWork};
use ci_exec::scaling::{PipelineProgress, PipelineStart, ScaleDecision, ScalingController};
use ci_plan::physical::PhysicalPlan;
use ci_plan::pipeline::PipelineGraph;
use ci_types::{Result, SimDuration};

/// Monitor thresholds and knobs.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Relative deviation below which no action is taken (paper's "within a
    /// threshold" — default 0.25, i.e. ±25%).
    pub theta_small: f64,
    /// Deviation beyond which the DOP planner is re-invoked with observed
    /// cardinalities (default 1.0, i.e. 2x off).
    pub theta_large: f64,
    /// Candidate DOP ladder for corrections.
    pub ladder: Vec<u32>,
    /// Minimum morsel progress before mid-pipeline corrections are trusted.
    pub min_fraction: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            theta_small: 0.25,
            theta_large: 1.0,
            ladder: (0..=8).map(|i| 1u32 << i).collect(),
            min_fraction: 0.05,
        }
    }
}

/// The §3.3 DOP monitor: holds the planned per-pipeline work profiles and
/// durations, observes true cardinalities at run time, and corrects DOPs
/// per pipeline so the original latency promise is kept at minimal cost.
pub struct DopMonitor<'a, 'c> {
    est: &'a CostEstimator<'c>,
    works: Vec<PipelineWork>,
    planned_durations: Vec<SimDuration>,
    config: MonitorConfig,
    /// Small (per-pipeline) corrections applied.
    pub corrections: u32,
    /// Large-deviation re-plans applied at pipeline starts.
    pub replans: u32,
    /// Last DOP decided per pipeline (hysteresis).
    last_decision: Vec<Option<u32>>,
}

impl<'a, 'c> DopMonitor<'a, 'c> {
    /// Builds a monitor for a planned query: records each pipeline's work
    /// profile and the duration the plan promised at its chosen DOP.
    pub fn new(
        est: &'a CostEstimator<'c>,
        plan: &PhysicalPlan,
        graph: &PipelineGraph,
        planned_dops: &[u32],
        config: MonitorConfig,
    ) -> Result<DopMonitor<'a, 'c>> {
        let works: Vec<PipelineWork> = graph
            .pipelines
            .iter()
            .map(|p| est.pipeline_work(plan, p))
            .collect::<Result<Vec<_>>>()?;
        let planned_durations = works
            .iter()
            .zip(planned_dops)
            .map(|(w, &d)| est.pipeline_duration(w, d))
            .collect();
        let n = graph.len();
        Ok(DopMonitor {
            est,
            works,
            planned_durations,
            config,
            corrections: 0,
            replans: 0,
            last_decision: vec![None; n],
        })
    }

    /// Scales a work profile's data-dependent terms by an observed ratio.
    fn scaled_work(w: &PipelineWork, ratio: f64) -> PipelineWork {
        let mut s = w.clone();
        s.filter_rows *= ratio;
        s.exchange_rows *= ratio;
        s.exchange_bytes *= ratio;
        s.gather_bytes *= ratio;
        s.probe_rows *= ratio;
        s.probe_out_rows *= ratio;
        s.build_rows *= ratio;
        s.agg_rows *= ratio;
        s.sort_rows *= ratio;
        s.sink_copy_rows *= ratio;
        s.source_rows *= ratio;
        s
    }

    /// Smallest ladder DOP that finishes `work` within `deadline`. When no
    /// DOP meets the deadline (the work may simply not parallelize), fall
    /// back to the *smallest* DOP within 5% of the best achievable duration
    /// — never burn nodes that cannot buy time.
    fn min_dop_for(&self, work: &PipelineWork, deadline: SimDuration) -> u32 {
        let slack = deadline * (1.0 + self.config.theta_small);
        for &d in &self.config.ladder {
            if self.est.pipeline_duration(work, d) <= slack {
                return d;
            }
        }
        let best = self
            .config
            .ladder
            .iter()
            .map(|&d| self.est.pipeline_duration(work, d))
            .min()
            .expect("non-empty ladder");
        for &d in &self.config.ladder {
            if self.est.pipeline_duration(work, d) <= best * 1.05 {
                return d;
            }
        }
        *self.config.ladder.last().expect("non-empty ladder")
    }
}

impl ScalingController for DopMonitor<'_, '_> {
    fn on_pipeline_start(&mut self, ctx: &PipelineStart) -> u32 {
        let i = ctx.pipeline.index();
        let Some(actual) = ctx.actual_source_rows else {
            return ctx.planned_dop;
        };
        if ctx.planned_source_rows <= 0.0 {
            return ctx.planned_dop;
        }
        let ratio = actual / ctx.planned_source_rows;
        let deviation = (ratio - 1.0).abs();
        if deviation <= self.config.theta_large {
            return ctx.planned_dop;
        }
        // Large deviation: re-plan this pipeline's DOP so its planned
        // duration still holds with the observed input size.
        let scaled = Self::scaled_work(&self.works[i], ratio);
        let d = self.min_dop_for(&scaled, self.planned_durations[i]);
        if d != ctx.planned_dop {
            self.replans += 1;
        }
        d
    }

    fn on_progress(&mut self, p: &PipelineProgress) -> ScaleDecision {
        let i = p.pipeline.index();
        if p.fraction_done() < self.config.min_fraction || p.morsels_total == 0 {
            return ScaleDecision::Keep;
        }
        let dev_ratio = p.sink_deviation();
        let deviation = (dev_ratio - 1.0).abs();
        if deviation <= self.config.theta_small {
            return ScaleDecision::Keep;
        }
        // Correct this pipeline only: pick the smallest DOP that completes
        // the remaining (re-scaled) work within the remaining planned time.
        let remaining_frac = (1.0 - p.fraction_done()).max(0.0);
        if remaining_frac <= 0.0 {
            return ScaleDecision::Keep;
        }
        let scaled = Self::scaled_work(&self.works[i], dev_ratio * remaining_frac);
        let remaining_budget = self.planned_durations[i]
            .saturating_sub(p.elapsed)
            .max(self.planned_durations[i] / 10.0);
        let d = self.min_dop_for(&scaled, remaining_budget);
        if d == p.current_dop || self.last_decision[i] == Some(d) {
            return ScaleDecision::Keep;
        }
        self.last_decision[i] = Some(d);
        self.corrections += 1;
        ScaleDecision::SetDop(d)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ci_catalog::Catalog;
    use ci_cost::EstimatorConfig;
    use ci_exec::{ExecutionConfig, Executor, NoScaling};
    use ci_optimizer::{Constraint, Optimizer, OptimizerConfig};
    use ci_storage::batch::RecordBatch;
    use ci_storage::column::ColumnData;
    use ci_storage::schema::{Field, Schema};
    use ci_storage::table::TableBuilder;
    use ci_storage::value::DataType;
    use ci_types::{SimDuration, TableId};

    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Arc::new(Schema::of(vec![
            Field::new("id", DataType::Int64),
            Field::new("grp", DataType::Int64),
            Field::new("val", DataType::Float64),
        ]));
        let n = 600_000i64;
        let mut b = TableBuilder::new(TableId::new(0), "facts", schema.clone(), 8_192).unwrap();
        b.append(
            RecordBatch::new(
                schema,
                vec![
                    ColumnData::Int64((0..n).collect()),
                    ColumnData::Int64((0..n).map(|i| i % 700).collect()),
                    ColumnData::Float64((0..n).map(|i| (i % 1000) as f64).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.register(b.finish().unwrap());
        c
    }

    const SQL: &str = "SELECT grp, SUM(val), COUNT(*) FROM facts WHERE val < 800.0 GROUP BY grp";

    /// Plan with badly injected cardinality errors; verify the monitor
    /// recovers the latency promise that static execution misses, or at
    /// least does no worse while reacting.
    #[test]
    fn monitor_corrects_misestimated_pipelines() {
        let cat = catalog();
        // Seeds are searched so that injection *underestimates* (static plan
        // under-provisions and runs slow).
        let mut cfg = OptimizerConfig {
            explore_bushy: false,
            error_bound: 6.0,
            ..Default::default()
        };
        let mut chosen = None;
        for seed in 0..16u64 {
            cfg.error_seed = seed;
            let opt = Optimizer::new(&cat, cfg.clone());
            let pq = opt
                .plan_sql(SQL, Constraint::LatencySla(SimDuration::from_secs(5)))
                .unwrap();
            // Underestimation: plan thinks the scan yields far fewer rows.
            if pq.plan.nodes[0].est_rows < 200_000.0 {
                chosen = Some(pq);
                break;
            }
        }
        let pq = chosen.expect("some seed underestimates");

        let exec = Executor::new(&cat, ExecutionConfig::default());
        let static_run = exec
            .execute(&pq.plan, &pq.graph, &pq.dops, &mut NoScaling)
            .unwrap();

        let est = ci_cost::CostEstimator::new(&cat, EstimatorConfig::default());
        let mut monitor = DopMonitor::new(
            &est,
            &pq.plan,
            &pq.graph,
            &pq.dops,
            MonitorConfig::default(),
        )
        .unwrap();
        let monitored = exec
            .execute(&pq.plan, &pq.graph, &pq.dops, &mut monitor)
            .unwrap();

        assert_eq!(static_run.result, monitored.result, "results must agree");
        assert!(
            monitor.corrections + monitor.replans > 0,
            "monitor should react to a 6x misestimate"
        );
        assert!(
            monitored.metrics.latency.as_secs_f64()
                <= static_run.metrics.latency.as_secs_f64() * 1.05,
            "monitor must not be slower than static: {} vs {}",
            monitored.metrics.latency,
            static_run.metrics.latency
        );
    }

    #[test]
    fn monitor_idle_on_accurate_estimates() {
        let cat = catalog();
        let cfg = OptimizerConfig {
            explore_bushy: false,
            ..Default::default()
        };
        let opt = Optimizer::new(&cat, cfg);
        let pq = opt
            .plan_sql(SQL, Constraint::LatencySla(SimDuration::from_secs(5)))
            .unwrap();
        let est = ci_cost::CostEstimator::new(&cat, EstimatorConfig::default());
        let mut monitor = DopMonitor::new(
            &est,
            &pq.plan,
            &pq.graph,
            &pq.dops,
            MonitorConfig::default(),
        )
        .unwrap();
        let exec = Executor::new(&cat, ExecutionConfig::default());
        let out = exec
            .execute(&pq.plan, &pq.graph, &pq.dops, &mut monitor)
            .unwrap();
        // Histogram-level estimation error is small here; the monitor should
        // apply at most a trivial number of corrections.
        assert!(
            monitor.corrections <= 1 && monitor.replans == 0,
            "unexpected monitor churn: {} corrections, {} replans",
            monitor.corrections,
            monitor.replans
        );
        assert!(out.metrics.resize_events <= 1);
    }

    #[test]
    fn scaled_work_scales_linearly() {
        let w = PipelineWork {
            filter_rows: 100.0,
            probe_rows: 50.0,
            source_rows: 10.0,
            ..PipelineWork::default()
        };
        let s = DopMonitor::scaled_work(&w, 2.0);
        assert_eq!(s.filter_rows, 200.0);
        assert_eq!(s.probe_rows, 100.0);
        assert_eq!(s.source_rows, 20.0);
        // Fetch terms are metadata-exact and must not scale.
        assert_eq!(s.fetch_bytes, w.fetch_bytes);
    }
}
