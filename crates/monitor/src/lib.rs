//! The DOP monitor (§3.3) and prior-work auto-scaling baselines.
//!
//! "A static DOP assignment produced in query optimization could suffer from
//! errors in cardinality estimations. We, therefore, introduce a DOP monitor
//! that dynamically adjusts the cluster size at run time." The monitor
//! ([`monitor::DopMonitor`]) implements the paper's two-threshold policy at
//! **pipeline granularity**:
//!
//! * deviation within `θ_small` — do nothing;
//! * deviation beyond `θ_small` — correct *this pipeline's* DOP using the
//!   cost estimator's scalability models;
//! * deviation beyond `θ_large` — re-invoke DOP planning with observed
//!   cardinalities (realized per-pipeline at start boundaries).
//!
//! [`baselines`] provides the two strategies §3.3 contrasts with: whole-
//! cluster interval scaling (Jockey/Ellis \[11, 34]) and per-stage
//! shuffle-boundary scaling (BigQuery \[1, 9]); pure static execution is
//! `ci_exec::NoScaling`.

pub mod baselines;
pub mod monitor;

pub use baselines::{StageBoundaryScaling, WholeClusterScaling};
pub use monitor::{DopMonitor, MonitorConfig};
