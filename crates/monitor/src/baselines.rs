//! Prior-work auto-scaling baselines (§3.3).
//!
//! * [`WholeClusterScaling`] — Jockey/Ellis style \[11, 34]: check progress at
//!   fixed intervals against a whole-query deadline; when the projected
//!   completion misses it, scale **everything** (current and future
//!   pipelines) proportionally. The paper's criticism: scaling concurrent or
//!   downstream pipelines that are not the bottleneck wastes utilization.
//! * [`StageBoundaryScaling`] — BigQuery style \[1, 9]: no mid-pipeline
//!   changes; each stage's DOP is (re)set at its start from the observed
//!   output of the previous stage, which in the real system requires
//!   materializing intermediates at clean cuts (overhead quantified in
//!   experiment E7).

use ci_exec::scaling::{PipelineProgress, PipelineStart, ScaleDecision, ScalingController};
use ci_types::SimDuration;

/// Whole-cluster interval scaling against a query deadline.
#[derive(Debug, Clone)]
pub struct WholeClusterScaling {
    /// Whole-query deadline the policy defends.
    pub deadline: SimDuration,
    /// Multiplier currently applied to every pipeline's planned DOP.
    pub factor: f64,
    /// Cap on the scale factor.
    pub max_factor: f64,
    /// Scaling actions taken.
    pub actions: u32,
}

impl WholeClusterScaling {
    /// New policy defending `deadline`.
    pub fn new(deadline: SimDuration) -> WholeClusterScaling {
        WholeClusterScaling {
            deadline,
            factor: 1.0,
            max_factor: 16.0,
            actions: 0,
        }
    }
}

impl ScalingController for WholeClusterScaling {
    fn on_pipeline_start(&mut self, ctx: &PipelineStart) -> u32 {
        ((ctx.planned_dop as f64 * self.factor).round() as u32).max(1)
    }

    fn on_progress(&mut self, p: &PipelineProgress) -> ScaleDecision {
        let frac = p.fraction_done();
        if frac < 0.05 {
            return ScaleDecision::Keep;
        }
        // Project whole-query completion from this pipeline's progress as if
        // the rest of the query scales the same way (the coarse, query-level
        // view these systems operate at).
        let projected_total = p.now.as_secs_f64() + p.elapsed.as_secs_f64() * (1.0 - frac) / frac;
        if projected_total > self.deadline.as_secs_f64() {
            let need = projected_total / self.deadline.as_secs_f64().max(1e-9);
            let new_factor = (self.factor * need).min(self.max_factor);
            if new_factor > self.factor * 1.05 {
                self.factor = new_factor;
                self.actions += 1;
                let new_dop = ((p.current_dop as f64 * need).round() as u32).max(p.current_dop + 1);
                return ScaleDecision::SetDop(new_dop);
            }
        }
        ScaleDecision::Keep
    }
}

/// Per-stage scaling at shuffle boundaries; never resizes mid-pipeline.
#[derive(Debug, Clone, Default)]
pub struct StageBoundaryScaling {
    /// Stage-start adjustments made.
    pub adjustments: u32,
    /// DOP ladder used for rounding.
    ladder: Vec<u32>,
}

impl StageBoundaryScaling {
    /// New policy with the default power-of-two ladder.
    pub fn new() -> StageBoundaryScaling {
        StageBoundaryScaling {
            adjustments: 0,
            ladder: (0..=8).map(|i| 1u32 << i).collect(),
        }
    }

    fn round_to_ladder(&self, d: f64) -> u32 {
        let mut best = self.ladder[0];
        let mut best_err = f64::INFINITY;
        for &c in &self.ladder {
            let err = ((c as f64).ln() - d.max(1.0).ln()).abs();
            if err < best_err {
                best_err = err;
                best = c;
            }
        }
        best
    }
}

impl ScalingController for StageBoundaryScaling {
    fn on_pipeline_start(&mut self, ctx: &PipelineStart) -> u32 {
        let Some(actual) = ctx.actual_source_rows else {
            return ctx.planned_dop;
        };
        if ctx.planned_source_rows <= 0.0 || actual <= 0.0 {
            return ctx.planned_dop;
        }
        let ratio = actual / ctx.planned_source_rows;
        // BigQuery-style: the next stage's worker count tracks the observed
        // input volume of the stage.
        let d = self.round_to_ladder(ctx.planned_dop as f64 * ratio);
        if d != ctx.planned_dop {
            self.adjustments += 1;
        }
        d
    }
    // No on_progress override: clean-cut systems cannot resize mid-stage.
}

#[cfg(test)]
mod tests {
    use ci_types::{PipelineId, SimTime};

    use super::*;

    fn start_ctx(planned: u32, planned_rows: f64, actual: Option<f64>) -> PipelineStart {
        PipelineStart {
            pipeline: PipelineId::new(0),
            planned_dop: planned,
            planned_source_rows: planned_rows,
            actual_source_rows: actual,
            planned_sink_rows: planned_rows,
        }
    }

    fn progress(frac_done: f64, elapsed_s: f64, dop: u32) -> PipelineProgress {
        let total = 100usize;
        PipelineProgress {
            pipeline: PipelineId::new(0),
            current_dop: dop,
            morsels_done: (frac_done * total as f64) as usize,
            morsels_total: total,
            source_rows_seen: 1000,
            sink_rows_seen: 1000,
            planned_source_rows: 1000.0,
            planned_sink_rows: 1000.0,
            elapsed: SimDuration::from_secs_f64(elapsed_s),
            now: SimTime::from_secs_f64(elapsed_s),
        }
    }

    #[test]
    fn whole_cluster_scales_on_projected_miss() {
        let mut c = WholeClusterScaling::new(SimDuration::from_secs(10));
        // 20% done after 8s -> projected 40s total >> 10s deadline.
        let d = c.on_progress(&progress(0.2, 8.0, 4));
        assert!(matches!(d, ScaleDecision::SetDop(n) if n > 4), "{d:?}");
        assert_eq!(c.actions, 1);
        // Future pipelines inherit the factor.
        let start = c.on_pipeline_start(&start_ctx(4, 100.0, None));
        assert!(start > 4);
    }

    #[test]
    fn whole_cluster_idle_when_on_track() {
        let mut c = WholeClusterScaling::new(SimDuration::from_secs(100));
        assert_eq!(c.on_progress(&progress(0.5, 10.0, 4)), ScaleDecision::Keep);
        assert_eq!(c.actions, 0);
    }

    #[test]
    fn stage_boundary_tracks_observed_volume() {
        let mut c = StageBoundaryScaling::new();
        // 4x more input than planned -> next stage runs ~4x wider.
        let d = c.on_pipeline_start(&start_ctx(4, 1000.0, Some(4000.0)));
        assert_eq!(d, 16);
        assert_eq!(c.adjustments, 1);
        // 4x less -> narrower.
        let d = c.on_pipeline_start(&start_ctx(4, 1000.0, Some(250.0)));
        assert_eq!(d, 1);
        // Unknown input: keep plan.
        assert_eq!(c.on_pipeline_start(&start_ctx(4, 1000.0, None)), 4);
    }

    #[test]
    fn stage_boundary_never_resizes_midway() {
        let mut c = StageBoundaryScaling::new();
        assert_eq!(c.on_progress(&progress(0.2, 50.0, 4)), ScaleDecision::Keep);
    }
}
