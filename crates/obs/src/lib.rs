//! Observability layer: structured spans on a dual clock, a compiled-in
//! metrics registry, and exporters for the two artifacts the paper's §4
//! profiling story needs — a Chrome trace-format JSON timeline
//! (Perfetto-loadable) and a plain-text `EXPLAIN ANALYZE`-style profile
//! report with per-plan-node dollar attribution.
//!
//! # The dual clock
//!
//! Every span carries timestamps on exactly one of two clocks, and the two
//! never mix in one lane:
//!
//! * **Virtual time** — the deterministic simulated clock (integer
//!   microseconds, the same currency as `SimTime`). Driver-side spans (morsel
//!   fetch/compute/recovery, pipeline extents, fault and resize instants,
//!   planned-vs-actual deviations) are stamped in virtual time as the driver
//!   folds morsel traces in canonical order, so the recorded timeline is
//!   bit-identical across `Simulate` and `Parallel` at any worker count —
//!   the determinism contract extends to the trace itself.
//! * **Wall clock** — nanosecond-derived microseconds since the trace epoch.
//!   Only per-worker lanes (park/claim/run) use it, recorded into per-worker
//!   append-only buffers ([`WorkerBuffers`]) that the driver drains after the
//!   run; worker lanes exist only at [`TraceLevel::Full`] and are explicitly
//!   outside the determinism contract.
//!
//! # Levels
//!
//! `CI_TRACE=off|spans|full` (or `ExecutionConfig::trace`) picks a
//! [`TraceLevel`]: `Off` keeps the machinery dormant (the hot path pays a
//! handful of integer adds, gated < 3% by `bench_check`), `Spans` records the
//! deterministic driver lanes and the registry, `Full` adds the wall-clock
//! worker lanes.
//!
//! This crate depends only on `ci-types`: it defines the vocabulary
//! (events, registry, report shapes) and the exporters, while the execution
//! engine owns all instrumentation points and builds the [`Trace`].

mod chrome;
mod profile;
mod registry;
mod span;

pub use profile::{NodeProfile, ProfileReport};
pub use registry::{Histogram, MetricsRegistry};
pub use span::{ArgVal, Lane, TraceEvent, TraceLevel, WorkerBuffers};

/// A completed query trace: the recorded events (driver lanes in virtual
/// time, worker lanes in wall time), the metrics registry, and the per-node
/// profile. Built by the execution engine when tracing is enabled and
/// returned on `QueryOutcome`.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Level the trace was recorded at.
    pub level: TraceLevel,
    /// All recorded events: driver lanes first (canonical morsel order),
    /// then drained worker lanes in worker order.
    pub events: Vec<TraceEvent>,
    /// Counters, gauges, and histograms accumulated during the run.
    pub registry: MetricsRegistry,
    /// The per-plan-node profile (rows, bytes, retries, dollars).
    pub profile: ProfileReport,
}

impl Trace {
    /// Serializes the events as Chrome trace-format JSON (the
    /// `chrome://tracing` / Perfetto "JSON array" flavor): one wall-clock
    /// lane per worker, one virtual-time lane per pipeline, plus driver and
    /// plan lanes, labelled via metadata events.
    pub fn to_chrome_json(&self) -> String {
        chrome::to_chrome_json(&self.events)
    }

    /// The plain-text `EXPLAIN ANALYZE`-style profile report. Contains only
    /// deterministic quantities (virtual time, rows, bytes, dollars), so for
    /// a fixed seed the text is byte-identical across execution modes.
    pub fn profile_text(&self) -> String {
        self.profile.text()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ci_types::Dollars;

    #[test]
    fn trace_bundles_exporters() {
        let mut registry = MetricsRegistry::new();
        registry.count("morsels", 3);
        let profile = ProfileReport {
            query: "SELECT 1".into(),
            latency_secs: 0.5,
            machine_secs: 1.0,
            cost: Dollars::new(0.25),
            result_rows: 1,
            nodes: vec![],
        };
        let t = Trace {
            level: TraceLevel::Spans,
            events: vec![TraceEvent::span("fetch", "exec", Lane::Pipeline(0), 10, 5)],
            registry,
            profile,
        };
        let json = t.to_chrome_json();
        assert!(json.contains("\"ph\": \"X\""), "{json}");
        assert!(t.profile_text().contains("SELECT 1"));
    }
}
