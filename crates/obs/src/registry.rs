//! Metrics registry: named counters, gauges, and fixed-bucket log2
//! histograms. `BTreeMap`-keyed so iteration (and therefore every exported
//! rendering) is deterministic.

use std::collections::BTreeMap;

/// Number of histogram buckets: one for zero plus one per power of two up
/// to `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram over `u64` observations. Bucket `0` holds
/// zeros; bucket `i >= 1` holds values in `[2^(i-1), 2^i)`. Fixed storage,
/// no allocation per observation — cheap enough to stay compiled-in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a value: `0` for zero, else `log2(v) + 1`.
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean observed value, or zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Occupied buckets as `(lower_bound_inclusive, count)` pairs.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << (i - 1) }, c))
            .collect()
    }
}

/// Named counters, gauges, and histograms for one query run. Single-owner
/// (the driver) and `&mut`-updated: the parallel workers never touch it, so
/// there is no synchronization on the hot path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Adds `delta` to the named counter (created at zero).
    pub fn count(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Sets the named gauge to its latest value.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Records one observation into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::default();
            h.observe(value);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Current value of a counter (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Latest value of a gauge.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// A human-readable dump (name-ordered, hence deterministic for
    /// deterministic contents).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            out.push_str(&format!("counter {name} = {v}\n"));
        }
        for (name, v) in self.gauges() {
            out.push_str(&format!("gauge {name} = {v}\n"));
        }
        for (name, h) in self.histograms() {
            out.push_str(&format!(
                "histogram {name}: count {} sum {} mean {:.1}",
                h.count(),
                h.sum(),
                h.mean()
            ));
            for (lo, c) in h.nonzero_buckets() {
                out.push_str(&format!(" [{lo}+]={c}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(1023), 10);
        assert_eq!(Histogram::bucket_of(1024), 11);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_accumulates() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1006);
        assert!((h.mean() - 201.2).abs() < 1e-9);
        assert_eq!(h.nonzero_buckets(), vec![(0, 1), (1, 1), (2, 2), (512, 1)]);
    }

    #[test]
    fn registry_roundtrip() {
        let mut r = MetricsRegistry::new();
        r.count("morsels", 2);
        r.count("morsels", 3);
        r.gauge("dop", 4.0);
        r.observe("span_us", 100);
        r.observe("span_us", 200);
        assert_eq!(r.counter("morsels"), 5);
        assert_eq!(r.counter("absent"), 0);
        assert_eq!(r.gauge_value("dop"), Some(4.0));
        assert_eq!(r.histogram("span_us").unwrap().count(), 2);
        let text = r.text();
        assert!(text.contains("counter morsels = 5"), "{text}");
        assert!(
            text.contains("histogram span_us: count 2 sum 300"),
            "{text}"
        );
    }
}
