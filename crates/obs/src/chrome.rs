//! Chrome trace-format exporter: renders recorded events as the JSON-array
//! flavor `chrome://tracing` and Perfetto load directly.
//!
//! Lane mapping keeps the two clocks on separate axes: process 1 is
//! **virtual time** (tid 0 = driver, tid `p+1` = pipeline `p`, tid 900 =
//! planned-vs-actual instants) and process 2 is **wall clock** (tid `w+1` =
//! worker `w`). Metadata events label every process and thread so the lanes
//! read by name in the viewer.

use crate::span::{ArgVal, Lane, TraceEvent};
use std::collections::BTreeSet;

/// Chrome-trace `(pid, tid)` of a lane.
fn lane_ids(lane: Lane) -> (u32, u32) {
    match lane {
        Lane::Driver => (1, 0),
        Lane::Pipeline(p) => (1, p + 1),
        Lane::Plan => (1, 900),
        Lane::Worker(w) => (2, w + 1),
    }
}

/// Human label for a lane's thread metadata.
fn lane_label(lane: Lane) -> String {
    match lane {
        Lane::Driver => "driver".into(),
        Lane::Pipeline(p) => format!("pipeline {p}"),
        Lane::Plan => "plan est-vs-actual".into(),
        Lane::Worker(w) => format!("worker {w}"),
    }
}

/// Escapes a string for a JSON literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_args(args: &[(&'static str, ArgVal)]) -> String {
    if args.is_empty() {
        return String::new();
    }
    let body: Vec<String> = args
        .iter()
        .map(|(k, v)| {
            let val = match v {
                ArgVal::U64(n) => n.to_string(),
                ArgVal::I64(n) => n.to_string(),
                // `{:?}` is Rust's shortest round-trip float rendering;
                // guard non-finite values (invalid JSON) as strings.
                ArgVal::F64(f) if f.is_finite() => format!("{f:?}"),
                ArgVal::F64(f) => format!("\"{f}\""),
                ArgVal::Str(s) => format!("\"{}\"", esc(s)),
            };
            format!("\"{}\": {val}", esc(k))
        })
        .collect();
    format!(", \"args\": {{{}}}", body.join(", "))
}

/// Serializes events as a Chrome trace-format JSON array, prefixed with the
/// metadata events naming every lane that appears.
pub fn to_chrome_json(events: &[TraceEvent]) -> String {
    let mut lines = Vec::new();

    let lanes: BTreeSet<Lane> = events.iter().map(|e| e.lane).collect();
    let pids: BTreeSet<u32> = lanes.iter().map(|&l| lane_ids(l).0).collect();
    for pid in pids {
        let pname = if pid == 1 {
            "virtual time"
        } else {
            "wall clock"
        };
        lines.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
             \"args\": {{\"name\": \"{pname}\"}}}}"
        ));
    }
    for &lane in &lanes {
        let (pid, tid) = lane_ids(lane);
        lines.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            esc(&lane_label(lane))
        ));
    }

    for e in events {
        let (pid, tid) = lane_ids(e.lane);
        let args = render_args(&e.args);
        if e.dur_us > 0 {
            lines.push(format!(
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
                 \"pid\": {pid}, \"tid\": {tid}{args}}}",
                esc(&e.name),
                e.cat,
                e.ts_us,
                e.dur_us
            ));
        } else {
            lines.push(format!(
                "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \
                 \"pid\": {pid}, \"tid\": {tid}{args}}}",
                esc(&e.name),
                e.cat,
                e.ts_us
            ));
        }
    }

    let mut out = String::from("[\n");
    out.push_str(&lines.join(",\n"));
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_instants_and_metadata() {
        let events = vec![
            TraceEvent::span("fetch", "exec", Lane::Pipeline(0), 10, 5).arg("bytes", 64u64),
            TraceEvent::instant("fault:throttle", "fault", Lane::Pipeline(0), 12),
            TraceEvent::span("run:compute", "pool", Lane::Worker(1), 3, 9),
            TraceEvent::instant("node 2", "plan", Lane::Plan, 0)
                .arg("est_rows", 10.5f64)
                .arg("actual_rows", 12u64),
        ];
        let json = to_chrome_json(&events);
        // Both processes named, every lane thread-named.
        assert!(json.contains("\"name\": \"virtual time\""), "{json}");
        assert!(json.contains("\"name\": \"wall clock\""), "{json}");
        assert!(json.contains("\"name\": \"pipeline 0\""), "{json}");
        assert!(json.contains("\"name\": \"worker 1\""), "{json}");
        // Spans carry dur, instants carry scope.
        assert!(
            json.contains("\"ph\": \"X\", \"ts\": 10, \"dur\": 5"),
            "{json}"
        );
        assert!(json.contains("\"ph\": \"i\", \"s\": \"t\""), "{json}");
        // Args render with JSON-safe values.
        assert!(json.contains("\"bytes\": 64"), "{json}");
        assert!(json.contains("\"est_rows\": 10.5"), "{json}");
        // The document is one array.
        assert!(json.starts_with("[\n") && json.ends_with("\n]\n"), "{json}");
    }

    #[test]
    fn strings_are_escaped() {
        let events =
            vec![TraceEvent::instant("a\"b\\c", "exec", Lane::Driver, 1).arg("label", "x\ny")];
        let json = to_chrome_json(&events);
        assert!(json.contains("a\\\"b\\\\c"), "{json}");
        assert!(json.contains("x\\ny"), "{json}");
    }
}
