//! The plain-text `EXPLAIN ANALYZE`-style profile report: per physical plan
//! node, the rows it produced, the bytes it moved, the faults it absorbed,
//! and the **Dollars** it was billed — the query's total cost prorated over
//! measured node busy time.

use ci_types::Dollars;

/// One physical plan node's attributed measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeProfile {
    /// Plan node index (preorder position in the physical plan).
    pub index: usize,
    /// Operator label (e.g. `HashJoin`).
    pub label: String,
    /// Planner's row estimate for this node.
    pub est_rows: f64,
    /// Rows the node actually produced.
    pub actual_rows: u64,
    /// Virtual seconds the node kept the machine busy (fetch + compute +
    /// recovery charged to it).
    pub busy_secs: f64,
    /// The node's share of the query bill (prorated over `busy_secs`; the
    /// shares sum bit-exactly to the query's total cost).
    pub dollars: Dollars,
    /// Encoded bytes fetched from object storage for this node.
    pub fetch_bytes: u64,
    /// Decoded logical bytes the node processed.
    pub decoded_bytes: u64,
    /// Wire-format bytes the node shipped (exchanges).
    pub wire_bytes: u64,
    /// Fetch retries charged to the node.
    pub retries: u64,
    /// Virtual microseconds of recovery time (retries, hedges, worker loss)
    /// charged to the node.
    pub recovery_us: u64,
}

/// The whole-query profile. Contains only deterministic quantities — for a
/// fixed seed, [`ProfileReport::text`] is byte-identical across `Simulate`
/// and `Parallel` at any worker count.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// The profiled query (SQL or a caller-supplied label).
    pub query: String,
    /// End-to-end virtual latency in seconds.
    pub latency_secs: f64,
    /// Billed machine-seconds (lease spans).
    pub machine_secs: f64,
    /// Total query cost; equals the fold of the node dollar shares.
    pub cost: Dollars,
    /// Result rows.
    pub result_rows: u64,
    /// Per-node rows/bytes/faults/dollars, in plan-node order.
    pub nodes: Vec<NodeProfile>,
}

impl ProfileReport {
    /// Renders the `EXPLAIN ANALYZE`-style table.
    pub fn text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== profile: {} ==\n", self.query));
        out.push_str(&format!(
            "latency {:.6}s  machine {:.6}s  cost ${:.9}  result rows {}\n",
            self.latency_secs,
            self.machine_secs,
            self.cost.amount(),
            self.result_rows
        ));
        out.push_str(&format!(
            "{:<4} {:<14} {:>12} {:>12} {:>10} {:>13} {:>12} {:>12} {:>10} {:>7} {:>11}\n",
            "node",
            "op",
            "est rows",
            "rows",
            "busy s",
            "dollars",
            "fetch B",
            "decoded B",
            "wire B",
            "retries",
            "recovery us"
        ));
        for n in &self.nodes {
            out.push_str(&format!(
                "{:<4} {:<14} {:>12.0} {:>12} {:>10.6} {:>13.9} {:>12} {:>12} {:>10} {:>7} {:>11}\n",
                format!("[{}]", n.index),
                n.label,
                n.est_rows,
                n.actual_rows,
                n.busy_secs,
                n.dollars.amount(),
                n.fetch_bytes,
                n.decoded_bytes,
                n.wire_bytes,
                n.retries,
                n.recovery_us
            ));
        }
        let attributed: Dollars = self.nodes.iter().map(|n| n.dollars).sum();
        out.push_str(&format!(
            "attributed ${:.9} of ${:.9} ({})\n",
            attributed.amount(),
            self.cost.amount(),
            if attributed == self.cost {
                "exact"
            } else {
                "MISMATCH"
            }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(index: usize, dollars: f64) -> NodeProfile {
        NodeProfile {
            index,
            label: format!("Op{index}"),
            est_rows: 100.0,
            actual_rows: 90,
            busy_secs: 0.5,
            dollars: Dollars::new(dollars),
            fetch_bytes: 10,
            decoded_bytes: 20,
            wire_bytes: 0,
            retries: 1,
            recovery_us: 7,
        }
    }

    #[test]
    fn exact_attribution_is_reported() {
        let r = ProfileReport {
            query: "q".into(),
            latency_secs: 1.0,
            machine_secs: 2.0,
            cost: Dollars::new(0.75),
            result_rows: 3,
            nodes: vec![node(0, 0.25), node(1, 0.5)],
        };
        let text = r.text();
        assert!(text.contains("== profile: q =="), "{text}");
        assert!(text.contains("[0]"), "{text}");
        assert!(text.contains("exact"), "{text}");
        assert!(!text.contains("MISMATCH"), "{text}");
    }

    #[test]
    fn lossy_attribution_is_flagged() {
        let r = ProfileReport {
            query: "q".into(),
            latency_secs: 1.0,
            machine_secs: 2.0,
            cost: Dollars::new(1.0),
            result_rows: 3,
            nodes: vec![node(0, 0.25)],
        };
        assert!(r.text().contains("MISMATCH"));
    }
}
