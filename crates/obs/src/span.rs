//! The span model: trace levels, lanes, events, and the per-worker
//! append-only buffers wall-clock spans are recorded into.

use std::sync::Mutex;
use std::time::Instant;

/// How much the tracing machinery records. Parsed from `CI_TRACE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// Dormant: no events, no registry. The hot path pays only the
    /// always-on per-node accounting integer/float adds.
    #[default]
    Off,
    /// Deterministic driver lanes (virtual time) plus the metrics registry.
    Spans,
    /// `Spans` plus the wall-clock worker lanes (park/claim/run).
    Full,
}

impl TraceLevel {
    /// Parses a `CI_TRACE` value. Unknown strings are `None` so callers can
    /// error loudly; [`TraceLevel::from_env`] treats them as `Off`.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "" | "off" | "0" | "none" => Some(TraceLevel::Off),
            "spans" | "on" | "1" => Some(TraceLevel::Spans),
            "full" | "2" => Some(TraceLevel::Full),
            _ => None,
        }
    }

    /// Reads `CI_TRACE` (`off`/`spans`/`full`, default and unknown → `Off`).
    pub fn from_env() -> TraceLevel {
        std::env::var("CI_TRACE")
            .ok()
            .and_then(|v| TraceLevel::parse(&v))
            .unwrap_or(TraceLevel::Off)
    }

    /// Whether any recording happens at all.
    pub fn enabled(self) -> bool {
        self != TraceLevel::Off
    }

    /// Whether the wall-clock worker lanes are recorded.
    pub fn wall(self) -> bool {
        self == TraceLevel::Full
    }
}

/// The timeline an event belongs to. Virtual-time lanes (`Driver`,
/// `Pipeline`, `Plan`) and wall-clock lanes (`Worker`) map to distinct
/// Chrome-trace processes so the two clocks never share an axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lane {
    /// Driver-level events in virtual time (resizes, query extent).
    Driver,
    /// One virtual-time lane per pipeline (morsel spans, fault instants).
    Pipeline(u32),
    /// Planned-vs-actual instants, one per physical plan node.
    Plan,
    /// One wall-clock lane per pool worker (park/claim/run).
    Worker(u32),
}

/// An argument value attached to an event (rendered into Chrome-trace
/// `args`).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgVal {
    /// Unsigned counter/size.
    U64(u64),
    /// Signed quantity.
    I64(i64),
    /// Measured rate/ratio.
    F64(f64),
    /// Free-form label.
    Str(String),
}

impl From<u64> for ArgVal {
    fn from(v: u64) -> Self {
        ArgVal::U64(v)
    }
}
impl From<i64> for ArgVal {
    fn from(v: i64) -> Self {
        ArgVal::I64(v)
    }
}
impl From<f64> for ArgVal {
    fn from(v: f64) -> Self {
        ArgVal::F64(v)
    }
}
impl From<&str> for ArgVal {
    fn from(v: &str) -> Self {
        ArgVal::Str(v.to_owned())
    }
}
impl From<String> for ArgVal {
    fn from(v: String) -> Self {
        ArgVal::Str(v)
    }
}

/// One recorded span (`dur_us > 0`) or instant (`dur_us == 0`). Timestamps
/// are microseconds on the lane's clock: virtual µs for driver lanes, wall
/// µs since the trace epoch for worker lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event name (e.g. `fetch`, `compute`, `fault:throttle`).
    pub name: String,
    /// Category tag (Chrome-trace `cat`): `exec`, `fault`, `pool`, `plan`.
    pub cat: &'static str,
    /// Which timeline the event belongs to.
    pub lane: Lane,
    /// Start timestamp in microseconds on the lane's clock.
    pub ts_us: u64,
    /// Duration in microseconds; `0` renders as an instant.
    pub dur_us: u64,
    /// Key/value annotations.
    pub args: Vec<(&'static str, ArgVal)>,
}

impl TraceEvent {
    /// A duration span.
    pub fn span(
        name: impl Into<String>,
        cat: &'static str,
        lane: Lane,
        ts_us: u64,
        dur_us: u64,
    ) -> TraceEvent {
        TraceEvent {
            name: name.into(),
            cat,
            lane,
            ts_us,
            dur_us,
            args: Vec::new(),
        }
    }

    /// A zero-duration instant.
    pub fn instant(
        name: impl Into<String>,
        cat: &'static str,
        lane: Lane,
        ts_us: u64,
    ) -> TraceEvent {
        TraceEvent::span(name, cat, lane, ts_us, 0)
    }

    /// Attaches one argument (builder style).
    pub fn arg(mut self, key: &'static str, val: impl Into<ArgVal>) -> TraceEvent {
        self.args.push((key, val.into()));
        self
    }
}

/// Per-worker append-only event buffers for the wall-clock lanes. Workers
/// push to their own shard (one mutex each, never contended across workers),
/// and the driver drains all shards in worker order after the run — workers
/// never observe each other, so recording cannot perturb the deterministic
/// accounting.
#[derive(Debug)]
pub struct WorkerBuffers {
    epoch: Instant,
    shards: Vec<Mutex<Vec<TraceEvent>>>,
}

impl WorkerBuffers {
    /// Buffers for `workers` lanes, with the wall-clock epoch pinned now.
    pub fn new(workers: usize) -> WorkerBuffers {
        WorkerBuffers {
            epoch: Instant::now(),
            shards: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// Microseconds of wall clock since the trace epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Number of worker lanes.
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Appends an event to `worker`'s shard. Out-of-range workers are
    /// dropped silently (a shared pool can outlive the query that attached
    /// the buffers).
    pub fn record(&self, worker: usize, ev: TraceEvent) {
        if let Some(shard) = self.shards.get(worker) {
            if let Ok(mut buf) = shard.lock() {
                buf.push(ev);
            }
        }
    }

    /// Drains every shard in worker order.
    pub fn drain(&self) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            if let Ok(mut buf) = shard.lock() {
                out.append(&mut buf);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing() {
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse(""), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("spans"), Some(TraceLevel::Spans));
        assert_eq!(TraceLevel::parse(" FULL "), Some(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("verbose"), None);
        assert!(!TraceLevel::Off.enabled());
        assert!(TraceLevel::Spans.enabled() && !TraceLevel::Spans.wall());
        assert!(TraceLevel::Full.enabled() && TraceLevel::Full.wall());
    }

    #[test]
    fn event_builders() {
        let e = TraceEvent::span("fetch", "exec", Lane::Pipeline(2), 100, 40)
            .arg("bytes", 1024u64)
            .arg("node", 3i64);
        assert_eq!(e.dur_us, 40);
        assert_eq!(e.args.len(), 2);
        let i = TraceEvent::instant("fault:throttle", "fault", Lane::Pipeline(0), 7);
        assert_eq!(i.dur_us, 0);
    }

    #[test]
    fn worker_buffers_drain_in_worker_order() {
        let b = WorkerBuffers::new(3);
        b.record(2, TraceEvent::instant("c", "pool", Lane::Worker(2), 3));
        b.record(0, TraceEvent::instant("a", "pool", Lane::Worker(0), 1));
        b.record(0, TraceEvent::instant("b", "pool", Lane::Worker(0), 2));
        // Out-of-range workers are dropped, not panicked on.
        b.record(9, TraceEvent::instant("x", "pool", Lane::Worker(9), 4));
        let drained = b.drain();
        let names: Vec<_> = drained.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["a", "b", "c"]);
        assert!(b.drain().is_empty(), "drain empties the shards");
    }
}
