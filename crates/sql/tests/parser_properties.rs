//! Property tests: the SQL front end must never panic, and displayed
//! expressions must re-parse to the same tree (round-trip stability).

use ci_sql::{parse, tokenize};
use proptest::prelude::*;

proptest! {
    /// Tokenizer and parser return `Result`, never panic, on arbitrary bytes.
    #[test]
    fn never_panics_on_arbitrary_input(input in ".{0,200}") {
        let _ = tokenize(&input);
        let _ = parse(&input);
    }

    /// ... including inputs built from SQL-ish fragments, which get deeper
    /// into the parser than uniform noise does.
    #[test]
    fn never_panics_on_sqlish_input(parts in proptest::collection::vec(
        prop_oneof![
            Just("SELECT".to_owned()), Just("FROM".to_owned()), Just("WHERE".to_owned()),
            Just("GROUP BY".to_owned()), Just("ORDER BY".to_owned()), Just("JOIN".to_owned()),
            Just("ON".to_owned()), Just("AND".to_owned()), Just("OR".to_owned()),
            Just("NOT".to_owned()), Just("BETWEEN".to_owned()), Just("IN".to_owned()),
            Just("(".to_owned()), Just(")".to_owned()), Just(",".to_owned()),
            Just("*".to_owned()), Just("=".to_owned()), Just("<".to_owned()),
            Just("t".to_owned()), Just("x".to_owned()), Just("1".to_owned()),
            Just("1.5".to_owned()), Just("'s'".to_owned()), Just("COUNT".to_owned()),
            Just("SUM".to_owned()), Just("LIMIT".to_owned()),
        ], 0..30)) {
        let input = parts.join(" ");
        let _ = parse(&input);
    }
}

/// Strategy generating valid expression SQL strings together with nothing
/// else; we check parse → display → parse is a fixed point.
fn expr_sql() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_owned()),
        Just("t.b".to_owned()),
        Just("42".to_owned()),
        Just("3.5".to_owned()),
        Just("'str'".to_owned()),
        Just("TRUE".to_owned()),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} + {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} * {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} = {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} AND {r})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(e, l, h)| format!("({e} BETWEEN {l} AND {h})")),
            inner.clone().prop_map(|e| format!("(NOT {e})")),
            inner.clone().prop_map(|e| format!("SUM({e})")),
        ]
    })
}

proptest! {
    /// parse(display(parse(sql))) == parse(sql) for generated expressions.
    #[test]
    fn display_parse_round_trip(e in expr_sql()) {
        let sql = format!("SELECT {e} FROM t");
        let q1 = parse(&sql).expect("generated SQL must parse");
        let ci_sql::SelectItem::Expr { expr: e1, .. } = &q1.items[0] else {
            panic!("expected expression item");
        };
        let sql2 = format!("SELECT {} FROM t", e1);
        let q2 = parse(&sql2).expect("displayed SQL must re-parse");
        let ci_sql::SelectItem::Expr { expr: e2, .. } = &q2.items[0] else {
            panic!("expected expression item");
        };
        prop_assert_eq!(e1, e2);
    }
}
