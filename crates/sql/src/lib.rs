//! SQL front end for the analytical subset the warehouse speaks.
//!
//! Grammar (informally):
//!
//! ```text
//! query     := SELECT select_list FROM table_ref (join)* [WHERE expr]
//!              [GROUP BY expr_list] [HAVING expr] [ORDER BY order_list]
//!              [LIMIT n]
//! join      := [INNER] JOIN table_ref ON expr | ',' table_ref
//! table_ref := ident [[AS] alias]
//! expr      := the usual precedence ladder: OR < AND < NOT < comparison
//!              < add/sub < mul/div, with parentheses, literals, qualified
//!              column refs, BETWEEN, IN (list), and aggregate calls
//!              COUNT/SUM/AVG/MIN/MAX.
//! ```
//!
//! The parser is a hand-written recursive-descent with precedence climbing —
//! small, fast, and panic-free on arbitrary input (property-tested).

pub mod ast;
pub mod parser;
pub mod token;

pub use ast::{
    BinaryOp, Expr, JoinClause, Literal, OrderItem, Query, SelectItem, TableRef, UnaryOp,
};
pub use parser::parse;
pub use token::{tokenize, Token, TokenKind};
