//! Abstract syntax tree for the SQL subset.

use std::fmt;

/// A literal value in SQL text. (The storage layer has its own `Value`;
/// the planner converts. The parser stays independent of storage.)
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            Literal::Float(v) => write!(f, "{v:?}"),
            Literal::Str(v) => write!(f, "'{}'", v.replace('\'', "''")),
            Literal::Bool(v) => write!(f, "{}", if *v { "TRUE" } else { "FALSE" }),
        }
    }
}

/// Binary operators, loosest-binding first in the grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Logical OR.
    Or,
    /// Logical AND.
    And,
    /// Equality.
    Eq,
    /// Inequality.
    NotEq,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    LtEq,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    GtEq,
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinaryOp {
    /// SQL spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Or => "OR",
            BinaryOp::And => "AND",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical NOT.
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// COUNT(*) or COUNT(expr).
    Count,
    /// SUM(expr).
    Sum,
    /// AVG(expr).
    Avg,
    /// MIN(expr).
    Min,
    /// MAX(expr).
    Max,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// Scalar / aggregate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified (`t.col`).
    Column {
        /// Table name or alias qualifier, if written.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Literal constant.
    Literal(Literal),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// Aggregate call. `expr` is `None` only for `COUNT(*)`.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Argument; `None` means `*`.
        expr: Option<Box<Expr>>,
        /// `DISTINCT` modifier (COUNT(DISTINCT x)).
        distinct: bool,
    },
    /// `expr BETWEEN low AND high` (inclusive).
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound.
        low: Box<Expr>,
        /// Upper bound.
        high: Box<Expr>,
        /// Negated form.
        negated: bool,
    },
    /// `expr IN (list)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Candidate values.
        list: Vec<Expr>,
        /// Negated form.
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for an unqualified column.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_owned(),
        }
    }

    /// Convenience constructor for a qualified column.
    pub fn qcol(qualifier: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(qualifier.to_owned()),
            name: name.to_owned(),
        }
    }

    /// Convenience constructor for a binary expression.
    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// `true` if any node in the tree is an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column { .. } | Expr::Literal(_) => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
        }
    }

    /// Collects all column references (qualifier, name) in the tree.
    pub fn columns(&self, out: &mut Vec<(Option<String>, String)>) {
        match self {
            Expr::Column { qualifier, name } => out.push((qualifier.clone(), name.clone())),
            Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.columns(out);
                right.columns(out);
            }
            Expr::Unary { expr, .. } => expr.columns(out),
            Expr::Aggregate { expr, .. } => {
                if let Some(e) = expr {
                    e.columns(out);
                }
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.columns(out);
                low.columns(out);
                high.columns(out);
            }
            Expr::InList { expr, list, .. } => {
                expr.columns(out);
                for e in list {
                    e.columns(out);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::Literal(l) => write!(f, "{l}"),
            Expr::Binary { op, left, right } => {
                write!(f, "({left} {} {right})", op.symbol())
            }
            Expr::Unary { op, expr } => match op {
                UnaryOp::Not => write!(f, "(NOT {expr})"),
                UnaryOp::Neg => write!(f, "(-{expr})"),
            },
            Expr::Aggregate {
                func,
                expr,
                distinct,
            } => {
                let d = if *distinct { "DISTINCT " } else { "" };
                match expr {
                    Some(e) => write!(f, "{}({d}{e})", func.name()),
                    None => write!(f, "{}(*)", func.name()),
                }
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let n = if *negated { " NOT" } else { "" };
                write!(f, "({expr}{n} BETWEEN {low} AND {high})")
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let n = if *negated { " NOT" } else { "" };
                write!(f, "({expr}{n} IN (")?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
        }
    }
}

/// One item of the SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `expr [AS alias]`.
    Expr {
        /// The expression.
        expr: Expr,
        /// Output alias.
        alias: Option<String>,
    },
}

/// A base table reference with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name (lower-cased by the tokenizer).
    pub name: String,
    /// Alias, if given.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this table binds in scope (alias if present).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.name)
    }
}

/// One JOIN clause (INNER equi-joins; the analytical core).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinClause {
    /// Right-hand table.
    pub table: TableRef,
    /// ON condition; `None` for comma-style cross joins constrained in WHERE.
    pub on: Option<Expr>,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort expression.
    pub expr: Expr,
    /// `true` for ascending (default).
    pub asc: bool,
}

/// A parsed SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// SELECT list.
    pub items: Vec<SelectItem>,
    /// First FROM table.
    pub from: TableRef,
    /// Subsequent joined tables.
    pub joins: Vec<JoinClause>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_shapes() {
        let e = Expr::binary(
            BinaryOp::And,
            Expr::binary(BinaryOp::Gt, Expr::col("a"), Expr::Literal(Literal::Int(3))),
            Expr::Between {
                expr: Box::new(Expr::qcol("t", "b")),
                low: Box::new(Expr::Literal(Literal::Int(1))),
                high: Box::new(Expr::Literal(Literal::Int(9))),
                negated: false,
            },
        );
        assert_eq!(e.to_string(), "((a > 3) AND (t.b BETWEEN 1 AND 9))");
    }

    #[test]
    fn aggregate_detection() {
        let plain = Expr::binary(BinaryOp::Add, Expr::col("a"), Expr::col("b"));
        assert!(!plain.contains_aggregate());
        let agg = Expr::binary(
            BinaryOp::Div,
            Expr::Aggregate {
                func: AggFunc::Sum,
                expr: Some(Box::new(Expr::col("x"))),
                distinct: false,
            },
            Expr::Literal(Literal::Int(2)),
        );
        assert!(agg.contains_aggregate());
    }

    #[test]
    fn column_collection() {
        let e = Expr::binary(
            BinaryOp::Eq,
            Expr::qcol("o", "id"),
            Expr::binary(
                BinaryOp::Add,
                Expr::col("x"),
                Expr::Literal(Literal::Int(1)),
            ),
        );
        let mut cols = Vec::new();
        e.columns(&mut cols);
        assert_eq!(
            cols,
            vec![
                (Some("o".to_owned()), "id".to_owned()),
                (None, "x".to_owned())
            ]
        );
    }

    #[test]
    fn binding_prefers_alias() {
        let t = TableRef {
            name: "orders".into(),
            alias: Some("o".into()),
        };
        assert_eq!(t.binding(), "o");
        let u = TableRef {
            name: "orders".into(),
            alias: None,
        };
        assert_eq!(u.binding(), "orders");
    }

    #[test]
    fn literal_display_escapes() {
        assert_eq!(Literal::Str("a'b".into()).to_string(), "'a''b'");
        assert_eq!(Literal::Bool(true).to_string(), "TRUE");
        assert_eq!(Literal::Float(1.5).to_string(), "1.5");
    }
}
