//! SQL tokenizer.

use ci_types::{CiError, Result};

/// Token kinds. Keywords are recognized case-insensitively and normalized.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier (lower-cased).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, '' unescaped).
    Str(String),
    /// A keyword, stored upper-cased (e.g. `SELECT`).
    Keyword(&'static str),
    /// Punctuation / operator symbol.
    Symbol(&'static str),
}

/// One token with its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was scanned.
    pub kind: TokenKind,
    /// Byte offset in the input where the token starts.
    pub offset: usize,
}

/// Recognized keywords.
const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "AS", "AND", "OR", "NOT",
    "JOIN", "INNER", "ON", "ASC", "DESC", "BETWEEN", "IN", "COUNT", "SUM", "AVG", "MIN", "MAX",
    "TRUE", "FALSE", "DISTINCT",
];

fn keyword_of(word: &str) -> Option<&'static str> {
    let upper = word.to_ascii_uppercase();
    KEYWORDS.iter().find(|&&k| k == upper).copied()
}

/// Tokenizes SQL text. Errors carry byte offsets.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments.
        if c == '-' && bytes.get(i + 1) == Some(&b'-') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            let word = &input[start..i];
            let kind = match keyword_of(word) {
                Some(k) => TokenKind::Keyword(k),
                None => TokenKind::Ident(word.to_ascii_lowercase()),
            };
            tokens.push(Token {
                kind,
                offset: start,
            });
            continue;
        }
        // Numbers.
        if c.is_ascii_digit() {
            let mut saw_dot = false;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_digit() || (!saw_dot && bytes[i] == b'.'))
            {
                if bytes[i] == b'.' {
                    // A dot not followed by a digit is punctuation, not decimal.
                    if !bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                    {
                        break;
                    }
                    saw_dot = true;
                }
                i += 1;
            }
            let text = &input[start..i];
            let kind =
                if saw_dot {
                    TokenKind::Float(text.parse().map_err(|_| {
                        CiError::Parse(format!("bad float literal '{text}' at {start}"))
                    })?)
                } else {
                    TokenKind::Int(text.parse().map_err(|_| {
                        CiError::Parse(format!("bad int literal '{text}' at {start}"))
                    })?)
                };
            tokens.push(Token {
                kind,
                offset: start,
            });
            continue;
        }
        // String literals.
        if c == '\'' {
            i += 1;
            let mut s = String::new();
            loop {
                match bytes.get(i) {
                    None => {
                        return Err(CiError::Parse(format!(
                            "unterminated string starting at {start}"
                        )))
                    }
                    Some(b'\'') => {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    }
                    Some(&b) => {
                        // Multi-byte UTF-8: copy the full char.
                        let ch_len = utf8_len(b);
                        s.push_str(&input[i..i + ch_len]);
                        i += ch_len;
                    }
                }
            }
            tokens.push(Token {
                kind: TokenKind::Str(s),
                offset: start,
            });
            continue;
        }
        // Multi-char symbols first.
        let two = input.get(i..i + 2);
        let sym2 = match two {
            Some("<=") => Some("<="),
            Some(">=") => Some(">="),
            Some("<>") => Some("<>"),
            Some("!=") => Some("!="),
            _ => None,
        };
        if let Some(s) = sym2 {
            tokens.push(Token {
                kind: TokenKind::Symbol(s),
                offset: start,
            });
            i += 2;
            continue;
        }
        let sym1 = match c {
            '(' => "(",
            ')' => ")",
            ',' => ",",
            '.' => ".",
            '*' => "*",
            '+' => "+",
            '-' => "-",
            '/' => "/",
            '=' => "=",
            '<' => "<",
            '>' => ">",
            ';' => ";",
            _ => {
                return Err(CiError::Parse(format!(
                    "unexpected character '{c}' at {start}"
                )))
            }
        };
        tokens.push(Token {
            kind: TokenKind::Symbol(sym1),
            offset: start,
        });
        i += 1;
    }
    Ok(tokens)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("SELECT foo FROM Bar"),
            vec![
                TokenKind::Keyword("SELECT"),
                TokenKind::Ident("foo".into()),
                TokenKind::Keyword("FROM"),
                TokenKind::Ident("bar".into()),
            ]
        );
        // Keywords case-insensitive.
        assert_eq!(kinds("select")[0], TokenKind::Keyword("SELECT"));
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 3.5"),
            vec![TokenKind::Int(42), TokenKind::Float(3.5)]
        );
        // Dot after int not followed by digit is punctuation (qualified name).
        assert_eq!(
            kinds("1.x"),
            vec![
                TokenKind::Int(1),
                TokenKind::Symbol("."),
                TokenKind::Ident("x".into())
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'ab''c'"), vec![TokenKind::Str("ab'c".into())]);
        assert!(tokenize("'oops").is_err());
    }

    #[test]
    fn symbols() {
        assert_eq!(
            kinds("a <= b <> c != d >= e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Symbol("<="),
                TokenKind::Ident("b".into()),
                TokenKind::Symbol("<>"),
                TokenKind::Ident("c".into()),
                TokenKind::Symbol("!="),
                TokenKind::Ident("d".into()),
                TokenKind::Symbol(">="),
                TokenKind::Ident("e".into()),
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("SELECT -- the works\n 1"),
            vec![TokenKind::Keyword("SELECT"), TokenKind::Int(1)]
        );
    }

    #[test]
    fn offsets_recorded() {
        let toks = tokenize("ab  cd").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }

    #[test]
    fn bad_character_is_error() {
        assert!(tokenize("a @ b").is_err());
    }

    #[test]
    fn unicode_in_strings() {
        assert_eq!(kinds("'héllo'"), vec![TokenKind::Str("héllo".into())]);
    }
}
