//! Recursive-descent parser with precedence climbing.

use ci_types::{CiError, Result};

use crate::ast::{
    AggFunc, BinaryOp, Expr, JoinClause, Literal, OrderItem, Query, SelectItem, TableRef, UnaryOp,
};
use crate::token::{tokenize, Token, TokenKind};

/// Parses one SELECT statement (an optional trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Query> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.eat_symbol(";"); // optional
    if let Some(t) = p.peek() {
        return Err(CiError::Parse(format!(
            "trailing input at offset {}: {:?}",
            t.offset, t.kind
        )));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token { kind: TokenKind::Keyword(k), .. }) if *k == kw)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected {kw}")))
        }
    }

    fn at_symbol(&self, s: &str) -> bool {
        matches!(self.peek(), Some(Token { kind: TokenKind::Symbol(k), .. }) if *k == s)
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if self.at_symbol(s) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<()> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("expected '{s}'")))
        }
    }

    fn unexpected(&self, what: &str) -> CiError {
        match self.peek() {
            Some(t) => CiError::Parse(format!("{what}, found {:?} at offset {}", t.kind, t.offset)),
            None => CiError::Parse(format!("{what}, found end of input")),
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    // ---- query structure ----------------------------------------------

    fn query(&mut self) -> Result<Query> {
        self.expect_keyword("SELECT")?;
        let items = self.select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.table_ref()?;
        let mut joins = Vec::new();
        loop {
            if self.eat_symbol(",") {
                let table = self.table_ref()?;
                joins.push(JoinClause { table, on: None });
            } else if self.at_keyword("JOIN") || self.at_keyword("INNER") {
                self.eat_keyword("INNER");
                self.expect_keyword("JOIN")?;
                let table = self.table_ref()?;
                self.expect_keyword("ON")?;
                let on = self.expr()?;
                joins.push(JoinClause {
                    table,
                    on: Some(on),
                });
            } else {
                break;
            }
        }
        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            group_by.push(self.expr()?);
            while self.eat_symbol(",") {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let asc = if self.eat_keyword("DESC") {
                    false
                } else {
                    self.eat_keyword("ASC");
                    true
                };
                order_by.push(OrderItem { expr, asc });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                Some(Token {
                    kind: TokenKind::Int(n),
                    ..
                }) if *n >= 0 => Some(*n as u64),
                _ => return Err(self.unexpected("expected non-negative LIMIT count")),
            }
        } else {
            None
        };
        Ok(Query {
            items,
            from,
            joins,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if self.eat_symbol("*") {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.ident()?)
                } else if let Some(Token {
                    kind: TokenKind::Ident(_),
                    ..
                }) = self.peek()
                {
                    // Bare alias (SELECT a b) — accept like most dialects.
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(items)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let name = self.ident()?;
        let alias = if self.eat_keyword("AS") {
            Some(self.ident()?)
        } else if let Some(Token {
            kind: TokenKind::Ident(_),
            ..
        }) = self.peek()
        {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef { name, alias })
    }

    // ---- expressions: precedence ladder --------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::binary(BinaryOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::binary(BinaryOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // BETWEEN / IN postfix forms (optionally negated).
        let negated = if self.at_keyword("NOT") {
            // Lookahead: NOT BETWEEN / NOT IN bind here; bare NOT handled above.
            let next = self.tokens.get(self.pos + 1);
            matches!(
                next,
                Some(Token {
                    kind: TokenKind::Keyword(k),
                    ..
                }) if *k == "BETWEEN" || *k == "IN"
            ) && {
                self.pos += 1;
                true
            }
        } else {
            false
        };
        if self.eat_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_keyword("IN") {
            self.expect_symbol("(")?;
            let mut list = vec![self.expr()?];
            while self.eat_symbol(",") {
                list.push(self.expr()?);
            }
            self.expect_symbol(")")?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if negated {
            return Err(self.unexpected("expected BETWEEN or IN after NOT"));
        }
        let op = if self.eat_symbol("=") {
            Some(BinaryOp::Eq)
        } else if self.eat_symbol("<>") || self.eat_symbol("!=") {
            Some(BinaryOp::NotEq)
        } else if self.eat_symbol("<=") {
            Some(BinaryOp::LtEq)
        } else if self.eat_symbol(">=") {
            Some(BinaryOp::GtEq)
        } else if self.eat_symbol("<") {
            Some(BinaryOp::Lt)
        } else if self.eat_symbol(">") {
            Some(BinaryOp::Gt)
        } else {
            None
        };
        match op {
            Some(op) => {
                let right = self.additive()?;
                Ok(Expr::binary(op, left, right))
            }
            None => Ok(left),
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            if self.eat_symbol("+") {
                let right = self.multiplicative()?;
                left = Expr::binary(BinaryOp::Add, left, right);
            } else if self.eat_symbol("-") {
                let right = self.multiplicative()?;
                left = Expr::binary(BinaryOp::Sub, left, right);
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            if self.eat_symbol("*") {
                let right = self.unary()?;
                left = Expr::binary(BinaryOp::Mul, left, right);
            } else if self.eat_symbol("/") {
                let right = self.unary()?;
                left = Expr::binary(BinaryOp::Div, left, right);
            } else {
                break;
            }
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_symbol("-") {
            let inner = self.unary()?;
            return Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
            });
        }
        self.primary()
    }

    fn agg_func(&mut self) -> Option<AggFunc> {
        let f = match self.peek() {
            Some(Token {
                kind: TokenKind::Keyword(k),
                ..
            }) => match *k {
                "COUNT" => Some(AggFunc::Count),
                "SUM" => Some(AggFunc::Sum),
                "AVG" => Some(AggFunc::Avg),
                "MIN" => Some(AggFunc::Min),
                "MAX" => Some(AggFunc::Max),
                _ => None,
            },
            _ => None,
        }?;
        // Only treat as aggregate when followed by '('.
        if matches!(
            self.tokens.get(self.pos + 1),
            Some(Token {
                kind: TokenKind::Symbol("("),
                ..
            })
        ) {
            self.pos += 1;
            Some(f)
        } else {
            None
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        if let Some(func) = self.agg_func() {
            self.expect_symbol("(")?;
            if self.eat_symbol("*") {
                self.expect_symbol(")")?;
                if func != AggFunc::Count {
                    return Err(CiError::Parse(format!(
                        "{}(*) is not valid; only COUNT(*)",
                        func.name()
                    )));
                }
                return Ok(Expr::Aggregate {
                    func,
                    expr: None,
                    distinct: false,
                });
            }
            let distinct = self.eat_keyword("DISTINCT");
            let inner = self.expr()?;
            self.expect_symbol(")")?;
            return Ok(Expr::Aggregate {
                func,
                expr: Some(Box::new(inner)),
                distinct,
            });
        }
        if self.eat_symbol("(") {
            let inner = self.expr()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        match self.peek().cloned() {
            Some(Token {
                kind: TokenKind::Int(v),
                ..
            }) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Int(v)))
            }
            Some(Token {
                kind: TokenKind::Float(v),
                ..
            }) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Float(v)))
            }
            Some(Token {
                kind: TokenKind::Str(v),
                ..
            }) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(v)))
            }
            Some(Token {
                kind: TokenKind::Keyword("TRUE"),
                ..
            }) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            Some(Token {
                kind: TokenKind::Keyword("FALSE"),
                ..
            }) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => {
                self.pos += 1;
                if self.eat_symbol(".") {
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    })
                } else {
                    Ok(Expr::Column {
                        qualifier: None,
                        name,
                    })
                }
            }
            _ => Err(self.unexpected("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_query() {
        let q = parse("SELECT * FROM t").unwrap();
        assert_eq!(q.items, vec![SelectItem::Wildcard]);
        assert_eq!(q.from.name, "t");
        assert!(q.joins.is_empty());
        assert!(q.where_clause.is_none());
    }

    #[test]
    fn full_query_shape() {
        let q = parse(
            "SELECT o.cust, SUM(o.total) AS revenue \
             FROM orders o JOIN customers c ON o.cust = c.id \
             WHERE o.total > 10.5 AND c.region = 'EU' \
             GROUP BY o.cust HAVING SUM(o.total) > 100 \
             ORDER BY revenue DESC LIMIT 10;",
        )
        .unwrap();
        assert_eq!(q.items.len(), 2);
        assert_eq!(q.joins.len(), 1);
        assert!(q.joins[0].on.is_some());
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 1);
        assert!(!q.order_by[0].asc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn precedence() {
        let q = parse("SELECT a + b * c FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &q.items[0] else {
            panic!("expected expr item");
        };
        assert_eq!(expr.to_string(), "(a + (b * c))");

        let q = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").unwrap();
        assert_eq!(
            q.where_clause.unwrap().to_string(),
            "((a = 1) OR ((b = 2) AND (c = 3)))"
        );
    }

    #[test]
    fn parentheses_override() {
        let q = parse("SELECT (a + b) * c FROM t").unwrap();
        let SelectItem::Expr { expr, .. } = &q.items[0] else {
            panic!()
        };
        assert_eq!(expr.to_string(), "((a + b) * c)");
    }

    #[test]
    fn between_and_in() {
        let q = parse("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2, 3)").unwrap();
        let w = q.where_clause.unwrap().to_string();
        assert_eq!(w, "((a BETWEEN 1 AND 5) AND (b IN (1, 2, 3)))");
        let q2 = parse("SELECT * FROM t WHERE a NOT IN (1) AND b NOT BETWEEN 1 AND 2").unwrap();
        let w2 = q2.where_clause.unwrap().to_string();
        assert!(w2.contains("NOT IN"));
        assert!(w2.contains("NOT BETWEEN"));
    }

    #[test]
    fn aggregates() {
        let q = parse("SELECT COUNT(*), COUNT(DISTINCT x), AVG(y + 1) FROM t").unwrap();
        assert_eq!(q.items.len(), 3);
        let strs: Vec<String> = q
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Expr { expr, .. } => expr.to_string(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(strs[0], "COUNT(*)");
        assert_eq!(strs[1], "COUNT(DISTINCT x)");
        assert_eq!(strs[2], "AVG((y + 1))");
        assert!(parse("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn aliases() {
        let q = parse("SELECT a AS x, b y FROM orders AS o, parts p").unwrap();
        match &q.items[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("x")),
            _ => panic!(),
        }
        match &q.items[1] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("y")),
            _ => panic!(),
        }
        assert_eq!(q.from.binding(), "o");
        assert_eq!(q.joins[0].table.binding(), "p");
        assert!(q.joins[0].on.is_none());
    }

    #[test]
    fn comma_join_and_inner_join_mix() {
        let q = parse("SELECT * FROM a, b JOIN c ON a.x = c.x").unwrap();
        assert_eq!(q.joins.len(), 2);
        assert!(q.joins[0].on.is_none());
        assert!(q.joins[1].on.is_some());
    }

    #[test]
    fn negative_numbers_and_not() {
        let q = parse("SELECT -a FROM t WHERE NOT b > -5").unwrap();
        let SelectItem::Expr { expr, .. } = &q.items[0] else {
            panic!()
        };
        assert_eq!(expr.to_string(), "(-a)");
        assert_eq!(q.where_clause.unwrap().to_string(), "(NOT (b > (-5)))");
    }

    #[test]
    fn error_cases() {
        assert!(parse("").is_err());
        assert!(parse("SELECT").is_err());
        assert!(parse("SELECT * FROM").is_err());
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t LIMIT x").is_err());
        assert!(parse("SELECT * FROM t GROUP a").is_err());
        assert!(parse("SELECT * FROM t extra garbage !").is_err());
        assert!(parse("SELECT a FROM t WHERE a NOT 5").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse("SELECT * FROM t;").is_ok());
        assert!(parse("SELECT * FROM t ; SELECT").is_err());
    }

    #[test]
    fn min_max_as_idents_would_be_keywords() {
        // MIN/MAX not followed by '(' are not aggregates; they'd be keywords
        // in identifier position, which is a parse error — acceptable subset.
        assert!(parse("SELECT min FROM t").is_err());
        assert!(parse("SELECT MIN(x) FROM t").is_ok());
    }
}
