//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for collection strategies: a fixed count or a
/// half-open range, mirroring what real proptest accepts.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)` — a vector of generated
/// elements whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
