//! `proptest::sample` stand-in: choose from a fixed slate of options.
//!
//! [`select`] is the building block for **string-column strategies**: a
//! realistic analytics string column is low-cardinality (regions, segments,
//! categories), so tests model it as `collection::vec(select(pool), len)` —
//! a vector drawn from a bounded value pool, which exercises both string
//! encodings' duplicate handling.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice from a fixed, non-empty list of options.
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.below(self.options.len() as u64) as usize].clone()
    }
}

/// `proptest::sample::select` — pick one of `options` uniformly.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from an empty slate");
    Select { options }
}

/// A string-column strategy: `len` strings drawn from a pool of
/// `pool_size` distinct deterministic values (`"v0"`, `"v1"`, …). The tight
/// pool guarantees duplicates, the interesting case for dictionary
/// encodings.
pub fn string_column(
    pool_size: usize,
    len: impl Into<crate::collection::SizeRange>,
) -> crate::collection::VecStrategy<Select<String>> {
    let pool: Vec<String> = (0..pool_size.max(1)).map(|i| format!("v{i}")).collect();
    crate::collection::vec(select(pool), len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_draws_from_slate() {
        let s = select(vec![1, 2, 3]);
        let mut rng = TestRng::for_case(0);
        for _ in 0..50 {
            assert!((1..=3).contains(&s.generate(&mut rng)));
        }
    }

    #[test]
    fn string_columns_hit_duplicates() {
        let s = string_column(3, 64usize);
        let mut rng = TestRng::for_case(1);
        let col = s.generate(&mut rng);
        assert_eq!(col.len(), 64);
        let distinct: std::collections::BTreeSet<_> = col.iter().collect();
        assert!(distinct.len() <= 3);
        assert!(col.iter().all(|v| v.starts_with('v')));
    }

    #[test]
    #[should_panic(expected = "empty slate")]
    fn empty_slate_panics() {
        let _ = select(Vec::<u8>::new());
    }
}
