//! The `proptest!`, `prop_assert!`, and `prop_assert_eq!` macros.

/// Declare property tests. Each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` that runs the body over `ProptestConfig::cases`
/// deterministic inputs. On failure the case index is reported; cases are
/// derived from a fixed seed, so re-running reproduces the failure exactly.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| -> ::std::result::Result<(), ::std::string::String> {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "proptest case {}/{} failed: {}",
                            case,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body; failure aborts the current case with a
/// message instead of panicking mid-generation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}
