//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a minimal, API-compatible subset of proptest sufficient
//! for the property tests in this repository: the [`Strategy`] trait with
//! `prop_map` / `prop_recursive` / `boxed`, range and tuple strategies,
//! [`prelude::Just`], `prop_oneof!`, `collection::vec`, `any::<T>()`,
//! `sample::select` (plus the [`sample::string_column`] convenience for
//! low-cardinality string columns), and the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its case index and RNG seed;
//!   re-running is fully deterministic, so the failure reproduces exactly.
//! * **Deterministic by default.** Cases are derived from a fixed seed via
//!   SplitMix64, keeping the workspace's determinism guarantee (same binary,
//!   same results) intact even inside the test suite.
//! * **String "regex" strategies** support only the `.{lo,hi}` shape used
//!   here (arbitrary strings with bounded length); any other pattern is
//!   generated as a literal.

pub mod collection;
mod macros;
pub mod sample;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The subset of `proptest::prelude` this workspace uses.
    pub use crate::sample::{select, string_column};
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

pub use strategy::{any, BoxedStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};
