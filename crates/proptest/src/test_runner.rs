//! Deterministic RNG and run configuration for the proptest stand-in.

/// SplitMix64: tiny, fast, and plenty for test-case generation. Every case
/// seeds one of these from `(GLOBAL_SEED, case_index)`, so any failure
/// message's case index is enough to reproduce the exact inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

/// Fixed global seed; change it only if you want a different (still
/// deterministic) exploration of the input space.
pub const GLOBAL_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ GLOBAL_SEED,
        }
    }

    pub fn for_case(case: u64) -> Self {
        // Decorrelate consecutive case indices before mixing.
        TestRng::new(case.wrapping_mul(0xBF58_476D_1CE4_E5B9).wrapping_add(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // test-case generation.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Run configuration; only `cases` is honoured by the stand-in.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}
