//! Value-generation strategies: the core of the proptest stand-in.

use std::ops::Range;
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike real proptest there is
/// no value tree and no shrinking: `generate` produces a finished value.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Build a recursive strategy: `depth` levels deep, each level choosing
    /// between the base (`self`) and one expansion via `expand`. The `_size`
    /// and `_branch` hints from real proptest are accepted but unused — depth
    /// alone bounds generation here.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _size: u32,
        _branch: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            strat = Union::new(vec![leaf.clone(), expand(strat).boxed()]).boxed();
        }
        strat
    }
}

/// Object-safe adapter so strategies of one value type can be type-erased.
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S> DynStrategy<S::Value> for S
where
    S: Strategy,
{
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between alternatives; backs `prop_oneof!`.
pub struct Union<T> {
    variants: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        Union { variants }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            variants: self.variants.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].generate(rng)
    }
}

/// Pick one strategy from several with uniform probability. All variants must
/// share a value type (they are boxed internally).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String "regex" strategy. Only the `.{lo,hi}` shape is interpreted (an
/// arbitrary string of `lo..=hi` chars drawn from printable ASCII plus a few
/// troublemakers); any other pattern generates the pattern text literally.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        const ALPHABET: &[char] = &[
            'a',
            'b',
            'z',
            'A',
            'Z',
            '0',
            '1',
            '9',
            ' ',
            '\t',
            '\n',
            '(',
            ')',
            ',',
            '.',
            '*',
            '=',
            '<',
            '>',
            '\'',
            '"',
            '_',
            '-',
            '+',
            '/',
            ';',
            '%',
            '?',
            '!',
            '\\',
            '\u{0}',
            'é',
            '日',
            '\u{1F600}',
        ];
        if let Some((lo, hi)) = parse_dot_repetition(self) {
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| ALPHABET[rng.below(ALPHABET.len() as u64) as usize])
                .collect()
        } else {
            (*self).to_owned()
        }
    }
}

fn parse_dot_repetition(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?;
    let rest = rest.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A/0)
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
    (A/0, B/1, C/2, D/3, E/4)
    (A/0, B/1, C/2, D/3, E/4, F/5)
}

/// Types with a canonical whole-domain strategy, for `any::<T>()`.
pub trait Arbitrary {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, spread over many magnitudes.
        let mag = rng.unit_f64() * 600.0 - 300.0;
        let sign = if rng.bool() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// `any::<T>()` — the whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}
