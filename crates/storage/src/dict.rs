//! Per-table string dictionaries.
//!
//! A [`Dictionary`] interns every distinct string of one table column once,
//! in first-appearance order, so batches can carry compact `u32` ids instead
//! of owned `String`s. The dictionary is shared via `Arc` by every batch
//! derived from the table — filter, take, slice, and morsel splitting all
//! move 4-byte ids and bump a refcount instead of cloning heap strings.
//!
//! Because entries are interned from the column's actual values, the
//! dictionary length is the column's **exact** number of distinct values,
//! which the catalog statistics and the cost estimator read directly.

use std::collections::HashMap;
use std::sync::Arc;

/// An immutable-by-convention interning table for one string column.
///
/// Entry order is first-appearance order over the column scanned top to
/// bottom, so two identical tables always produce bit-identical dictionaries
/// (a workspace determinism requirement).
///
/// Each distinct string is allocated **once**: the id-ordered entry list and
/// the reverse index share one `Arc<str>` per entry, so the dictionary's
/// heap footprint is a single copy of its distinct values (plus refcounts),
/// and cloning for an `Arc::make_mut` merge bumps refcounts instead of
/// duplicating string payloads.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    /// Distinct values, indexed by id (allocation shared with `index`).
    values: Vec<Arc<str>>,
    /// Reverse index: value → id (allocation shared with `values`).
    index: HashMap<Arc<str>, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Dictionary {
        Dictionary::default()
    }

    /// Interns a sequence of strings, returning the dictionary and the id of
    /// each input string in order.
    pub fn encode<'a>(values: impl Iterator<Item = &'a str>) -> (Dictionary, Vec<u32>) {
        let mut dict = Dictionary::new();
        let ids = values.map(|s| dict.intern(s)).collect();
        (dict, ids)
    }

    /// Returns the id of `s`, interning it if new (one shared allocation
    /// for both the entry list and the reverse index).
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("dictionary overflow");
        let entry: Arc<str> = Arc::from(s);
        self.values.push(entry.clone());
        self.index.insert(entry, id);
        id
    }

    /// The string for an id. Panics if the id was not produced by this
    /// dictionary.
    pub fn get(&self, id: u32) -> &str {
        &self.values[id as usize]
    }

    /// The id of `s`, if it was interned.
    pub fn id_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// Number of distinct entries — the exact NDV of the encoded column.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no strings have been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All entries in id order.
    pub fn values(&self) -> &[Arc<str>] {
        &self.values
    }

    /// Encoded payload bytes of the entry for `id` (length + 4-byte header),
    /// matching the accounting [`crate::column::ColumnData::byte_size`] uses
    /// for plain `Utf8` columns so encodings are cost-transparent.
    pub fn value_bytes(&self, id: u32) -> usize {
        self.values[id as usize].len() + 4
    }

    /// Rank of each entry under lexicographic order: `ranks()[id]` is the
    /// sort position of entry `id`. Lets sorts compare dict columns with one
    /// integer comparison per row after an `O(|dict| log |dict|)` prepass.
    pub fn sort_ranks(&self) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.values.len() as u32).collect();
        order.sort_by(|&a, &b| self.values[a as usize].cmp(&self.values[b as usize]));
        let mut ranks = vec![0u32; self.values.len()];
        for (rank, &id) in order.iter().enumerate() {
            ranks[id as usize] = rank as u32;
        }
        ranks
    }
}

/// Dictionaries compare by entry list (the reverse index is derived state).
impl PartialEq for Dictionary {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

/// An interning table for one low-cardinality integer column (dates, enum
/// codes, small foreign keys): the `i64` twin of [`Dictionary`].
///
/// Entry order is first-appearance order over the column scanned top to
/// bottom, so two identical tables always produce bit-identical dictionaries
/// (the same workspace determinism requirement the string dictionary meets).
/// Unlike strings, integer entries are their own canonical key — no shared
/// allocation games are needed, and key encoders can use the decoded value
/// inline instead of translating ids between dictionaries.
#[derive(Debug, Clone, Default)]
pub struct IntDict {
    /// Distinct values, indexed by id.
    values: Vec<i64>,
    /// Reverse index: value → id.
    index: HashMap<i64, u32>,
}

impl IntDict {
    /// An empty dictionary.
    pub fn new() -> IntDict {
        IntDict::default()
    }

    /// Interns a sequence of integers, returning the dictionary and the id
    /// of each input value in order.
    pub fn encode(values: impl Iterator<Item = i64>) -> (IntDict, Vec<u32>) {
        let mut dict = IntDict::new();
        let ids = values.map(|x| dict.intern(x)).collect();
        (dict, ids)
    }

    /// Returns the id of `x`, interning it if new.
    pub fn intern(&mut self, x: i64) -> u32 {
        if let Some(&id) = self.index.get(&x) {
            return id;
        }
        let id = u32::try_from(self.values.len()).expect("dictionary overflow");
        self.values.push(x);
        self.index.insert(x, id);
        id
    }

    /// The value for an id. Panics if the id was not produced by this
    /// dictionary.
    pub fn get(&self, id: u32) -> i64 {
        self.values[id as usize]
    }

    /// The id of `x`, if it was interned.
    pub fn id_of(&self, x: i64) -> Option<u32> {
        self.index.get(&x).copied()
    }

    /// Number of distinct entries — the exact NDV of the encoded column.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when no values have been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All entries in id order.
    pub fn values(&self) -> &[i64] {
        &self.values
    }
}

/// Int dictionaries compare by entry list (the reverse index is derived
/// state).
impl PartialEq for IntDict {
    fn eq(&self, other: &Self) -> bool {
        self.values == other.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_interns_in_first_appearance_order() {
        let (dict, ids) = Dictionary::encode(["b", "a", "b", "c", "a"].into_iter());
        assert_eq!(dict.len(), 3);
        let entries: Vec<&str> = dict.values().iter().map(|s| s.as_ref()).collect();
        assert_eq!(entries, ["b", "a", "c"]);
        assert_eq!(ids, vec![0, 1, 0, 2, 1]);
        assert_eq!(dict.get(2), "c");
        assert_eq!(dict.id_of("a"), Some(1));
        assert_eq!(dict.id_of("zzz"), None);
    }

    #[test]
    fn entries_share_one_allocation_with_the_reverse_index() {
        let (dict, _) = Dictionary::encode(["x", "y"].into_iter());
        for entry in dict.values() {
            // The entry list and the reverse-index key both point at the
            // same allocation: 2 strong refs, not 2 string copies.
            assert_eq!(Arc::strong_count(entry), 2, "entry {entry} duplicated");
        }
    }

    #[test]
    fn value_bytes_match_utf8_accounting() {
        let (dict, _) = Dictionary::encode(["ab", ""].into_iter());
        assert_eq!(dict.value_bytes(0), 2 + 4);
        assert_eq!(dict.value_bytes(1), 4);
    }

    #[test]
    fn sort_ranks_follow_lexicographic_order() {
        let (dict, _) = Dictionary::encode(["m", "a", "z"].into_iter());
        // ids: m=0, a=1, z=2; sorted: a < m < z.
        assert_eq!(dict.sort_ranks(), vec![1, 0, 2]);
    }

    #[test]
    fn equality_ignores_index_layout() {
        let (a, _) = Dictionary::encode(["x", "y"].into_iter());
        let mut b = Dictionary::new();
        b.intern("x");
        b.intern("y");
        assert_eq!(a, b);
        b.intern("z");
        assert_ne!(a, b);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }

    #[test]
    fn int_dict_interns_in_first_appearance_order() {
        let (dict, ids) = IntDict::encode([20240107, 20240101, 20240107, 20240102].into_iter());
        assert_eq!(dict.len(), 3);
        assert_eq!(dict.values(), &[20240107, 20240101, 20240102]);
        assert_eq!(ids, vec![0, 1, 0, 2]);
        assert_eq!(dict.get(2), 20240102);
        assert_eq!(dict.id_of(20240101), Some(1));
        assert_eq!(dict.id_of(7), None);
    }

    #[test]
    fn int_dict_equality_ignores_index_layout() {
        let (a, _) = IntDict::encode([5, -2].into_iter());
        let mut b = IntDict::new();
        b.intern(5);
        b.intern(-2);
        assert_eq!(a, b);
        b.intern(9);
        assert_ne!(a, b);
    }
}
