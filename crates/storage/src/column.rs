//! Typed column vectors.

use ci_types::{CiError, Result};

use crate::value::{DataType, Value};

/// A contiguous, non-nullable, typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// UTF-8 strings.
    Utf8(Vec<String>),
    /// Booleans.
    Bool(Vec<bool>),
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn empty(dt: DataType) -> ColumnData {
        match dt {
            DataType::Int64 => ColumnData::Int64(Vec::new()),
            DataType::Float64 => ColumnData::Float64(Vec::new()),
            DataType::Utf8 => ColumnData::Utf8(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
        }
    }

    /// An empty column with reserved capacity.
    pub fn with_capacity(dt: DataType, cap: usize) -> ColumnData {
        match dt {
            DataType::Int64 => ColumnData::Int64(Vec::with_capacity(cap)),
            DataType::Float64 => ColumnData::Float64(Vec::with_capacity(cap)),
            DataType::Utf8 => ColumnData::Utf8(Vec::with_capacity(cap)),
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
        }
    }

    /// This column's type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Utf8(_) => DataType::Utf8,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Utf8(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// `true` if the column has no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at row `i` (clones strings). Panics if out of bounds.
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnData::Int64(v) => Value::Int(v[i]),
            ColumnData::Float64(v) => Value::Float(v[i]),
            ColumnData::Utf8(v) => Value::Str(v[i].clone()),
            ColumnData::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Appends a value; errors on type mismatch.
    pub fn push(&mut self, v: Value) -> Result<()> {
        match (self, v) {
            (ColumnData::Int64(c), Value::Int(x)) => c.push(x),
            (ColumnData::Float64(c), Value::Float(x)) => c.push(x),
            (ColumnData::Float64(c), Value::Int(x)) => c.push(x as f64),
            (ColumnData::Utf8(c), Value::Str(x)) => c.push(x),
            (ColumnData::Bool(c), Value::Bool(x)) => c.push(x),
            (col, v) => {
                return Err(CiError::Exec(format!(
                    "cannot push {} into {} column",
                    v.data_type(),
                    col.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Appends row `i` of `src` to this column (same type required).
    pub fn push_from(&mut self, src: &ColumnData, i: usize) -> Result<()> {
        match (self, src) {
            (ColumnData::Int64(dst), ColumnData::Int64(s)) => dst.push(s[i]),
            (ColumnData::Float64(dst), ColumnData::Float64(s)) => dst.push(s[i]),
            (ColumnData::Utf8(dst), ColumnData::Utf8(s)) => dst.push(s[i].clone()),
            (ColumnData::Bool(dst), ColumnData::Bool(s)) => dst.push(s[i]),
            (dst, s) => {
                return Err(CiError::Exec(format!(
                    "column type mismatch: {} vs {}",
                    dst.data_type(),
                    s.data_type()
                )))
            }
        }
        Ok(())
    }

    /// New column containing only rows where `keep[i]` is true.
    pub fn filter(&self, keep: &[bool]) -> ColumnData {
        debug_assert_eq!(keep.len(), self.len());
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(
                v.iter()
                    .zip(keep)
                    .filter_map(|(x, &k)| k.then_some(*x))
                    .collect(),
            ),
            ColumnData::Float64(v) => ColumnData::Float64(
                v.iter()
                    .zip(keep)
                    .filter_map(|(x, &k)| k.then_some(*x))
                    .collect(),
            ),
            ColumnData::Utf8(v) => ColumnData::Utf8(
                v.iter()
                    .zip(keep)
                    .filter(|&(_x, &k)| k)
                    .map(|(x, &_k)| x.clone())
                    .collect(),
            ),
            ColumnData::Bool(v) => ColumnData::Bool(
                v.iter()
                    .zip(keep)
                    .filter_map(|(x, &k)| k.then_some(*x))
                    .collect(),
            ),
        }
    }

    /// New column gathering the given row indices (indices may repeat).
    pub fn take(&self, indices: &[usize]) -> ColumnData {
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float64(v) => ColumnData::Float64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Utf8(v) => {
                ColumnData::Utf8(indices.iter().map(|&i| v[i].clone()).collect())
            }
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
        }
    }

    /// Zero-copy-ish slice: clones only the selected range.
    pub fn slice(&self, offset: usize, len: usize) -> ColumnData {
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(v[offset..offset + len].to_vec()),
            ColumnData::Float64(v) => ColumnData::Float64(v[offset..offset + len].to_vec()),
            ColumnData::Utf8(v) => ColumnData::Utf8(v[offset..offset + len].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[offset..offset + len].to_vec()),
        }
    }

    /// Appends all values of `other` (same type required).
    pub fn extend_from(&mut self, other: &ColumnData) -> Result<()> {
        match (self, other) {
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend_from_slice(b),
            (ColumnData::Float64(a), ColumnData::Float64(b)) => a.extend_from_slice(b),
            (ColumnData::Utf8(a), ColumnData::Utf8(b)) => a.extend(b.iter().cloned()),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            (a, b) => {
                return Err(CiError::Exec(format!(
                    "cannot concat {} with {}",
                    a.data_type(),
                    b.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Exact encoded byte size of this column's data.
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
            ColumnData::Utf8(v) => v.iter().map(|s| s.len() + 4).sum(),
            ColumnData::Bool(v) => v.len(),
        }
    }

    /// Min and max values (`None` for an empty column).
    pub fn min_max(&self) -> Option<(Value, Value)> {
        if self.is_empty() {
            return None;
        }
        match self {
            ColumnData::Int64(v) => {
                let min = *v.iter().min().expect("non-empty");
                let max = *v.iter().max().expect("non-empty");
                Some((Value::Int(min), Value::Int(max)))
            }
            ColumnData::Float64(v) => {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for &x in v {
                    min = min.min(x);
                    max = max.max(x);
                }
                Some((Value::Float(min), Value::Float(max)))
            }
            ColumnData::Utf8(v) => {
                let min = v.iter().min().expect("non-empty").clone();
                let max = v.iter().max().expect("non-empty").clone();
                Some((Value::Str(min), Value::Str(max)))
            }
            ColumnData::Bool(v) => {
                let any_false = v.iter().any(|x| !x);
                let any_true = v.iter().any(|x| *x);
                // false < true: min is false iff any false, max is true iff any true.
                Some((Value::Bool(!any_false), Value::Bool(any_true)))
            }
        }
    }

    /// Typed accessor; errors if the column is not Int64.
    pub fn as_i64(&self) -> Result<&[i64]> {
        match self {
            ColumnData::Int64(v) => Ok(v),
            other => Err(CiError::Exec(format!(
                "expected INT column, got {}",
                other.data_type()
            ))),
        }
    }

    /// Typed accessor; errors if the column is not Float64.
    pub fn as_f64(&self) -> Result<&[f64]> {
        match self {
            ColumnData::Float64(v) => Ok(v),
            other => Err(CiError::Exec(format!(
                "expected DOUBLE column, got {}",
                other.data_type()
            ))),
        }
    }

    /// Typed accessor; errors if the column is not Utf8.
    pub fn as_str(&self) -> Result<&[String]> {
        match self {
            ColumnData::Utf8(v) => Ok(v),
            other => Err(CiError::Exec(format!(
                "expected VARCHAR column, got {}",
                other.data_type()
            ))),
        }
    }

    /// Typed accessor; errors if the column is not Bool.
    pub fn as_bool(&self) -> Result<&[bool]> {
        match self {
            ColumnData::Bool(v) => Ok(v),
            other => Err(CiError::Exec(format!(
                "expected BOOLEAN column, got {}",
                other.data_type()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut c = ColumnData::empty(DataType::Int64);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(1), Value::Int(2));
        assert!(c.push(Value::from("x")).is_err());
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut c = ColumnData::empty(DataType::Float64);
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.value(0), Value::Float(3.0));
    }

    #[test]
    fn filter_keeps_marked_rows() {
        let c = ColumnData::Int64(vec![10, 20, 30, 40]);
        let f = c.filter(&[true, false, true, false]);
        assert_eq!(f, ColumnData::Int64(vec![10, 30]));
    }

    #[test]
    fn take_gathers_with_repeats() {
        let c = ColumnData::Utf8(vec!["a".into(), "b".into(), "c".into()]);
        let t = c.take(&[2, 0, 2]);
        assert_eq!(
            t,
            ColumnData::Utf8(vec!["c".into(), "a".into(), "c".into()])
        );
    }

    #[test]
    fn slice_range() {
        let c = ColumnData::Float64(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.slice(1, 2), ColumnData::Float64(vec![2.0, 3.0]));
    }

    #[test]
    fn extend_same_type_only() {
        let mut a = ColumnData::Int64(vec![1]);
        a.extend_from(&ColumnData::Int64(vec![2, 3])).unwrap();
        assert_eq!(a.len(), 3);
        assert!(a.extend_from(&ColumnData::Bool(vec![true])).is_err());
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(ColumnData::Int64(vec![1, 2]).byte_size(), 16);
        assert_eq!(ColumnData::Bool(vec![true; 5]).byte_size(), 5);
        assert_eq!(
            ColumnData::Utf8(vec!["ab".into(), "c".into()]).byte_size(),
            2 + 4 + 1 + 4
        );
    }

    #[test]
    fn min_max_per_type() {
        assert_eq!(
            ColumnData::Int64(vec![3, 1, 2]).min_max(),
            Some((Value::Int(1), Value::Int(3)))
        );
        assert_eq!(
            ColumnData::Utf8(vec!["b".into(), "a".into()]).min_max(),
            Some((Value::Str("a".into()), Value::Str("b".into())))
        );
        assert_eq!(ColumnData::Int64(vec![]).min_max(), None);
    }

    #[test]
    fn typed_accessors() {
        let c = ColumnData::Int64(vec![5]);
        assert_eq!(c.as_i64().unwrap(), &[5]);
        assert!(c.as_f64().is_err());
        assert!(c.as_str().is_err());
        assert!(c.as_bool().is_err());
    }

    #[test]
    fn push_from_copies_row() {
        let src = ColumnData::Int64(vec![7, 8]);
        let mut dst = ColumnData::empty(DataType::Int64);
        dst.push_from(&src, 1).unwrap();
        assert_eq!(dst, ColumnData::Int64(vec![8]));
    }
}
