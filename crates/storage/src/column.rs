//! Typed column vectors.
//!
//! Strings come in two encodings with identical logical semantics:
//! [`ColumnData::Utf8`] owns its strings, while [`ColumnData::Dict`] stores
//! `u32` ids into an `Arc`-shared [`Dictionary`] (interned once per table
//! column at load). Both report [`DataType::Utf8`]; equality, byte
//! accounting, and min/max are defined over the *decoded* values, so the
//! encoding is invisible to schemas, zone maps, and cost models — only the
//! data-path cost changes (filter/take/slice move 4-byte ids, not heap
//! strings).

use std::sync::Arc;

use ci_types::{CiError, Result};

use crate::dict::{Dictionary, IntDict};
use crate::selection::SelectionVector;
use crate::value::{DataType, Value};

/// A contiguous, non-nullable, typed column of values.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// 64-bit integers.
    Int64(Vec<i64>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// UTF-8 strings (owned encoding).
    Utf8(Vec<String>),
    /// Booleans.
    Bool(Vec<bool>),
    /// UTF-8 strings, dictionary-encoded: `ids[i]` indexes into `dict`.
    Dict {
        /// Per-row dictionary ids.
        ids: Vec<u32>,
        /// The shared interning table.
        dict: Arc<Dictionary>,
    },
    /// Low-cardinality 64-bit integers (dates, enum codes),
    /// dictionary-encoded: `ids[i]` indexes into `dict`. Reports
    /// [`DataType::Int64`]; like [`ColumnData::Dict`], the encoding is
    /// invisible to schemas, zone maps, and byte accounting.
    DictInt {
        /// Per-row dictionary ids.
        ids: Vec<u32>,
        /// The shared interning table.
        dict: Arc<IntDict>,
    },
}

impl ColumnData {
    /// An empty column of the given type.
    pub fn empty(dt: DataType) -> ColumnData {
        match dt {
            DataType::Int64 => ColumnData::Int64(Vec::new()),
            DataType::Float64 => ColumnData::Float64(Vec::new()),
            DataType::Utf8 => ColumnData::Utf8(Vec::new()),
            DataType::Bool => ColumnData::Bool(Vec::new()),
        }
    }

    /// An empty column with reserved capacity.
    pub fn with_capacity(dt: DataType, cap: usize) -> ColumnData {
        match dt {
            DataType::Int64 => ColumnData::Int64(Vec::with_capacity(cap)),
            DataType::Float64 => ColumnData::Float64(Vec::with_capacity(cap)),
            DataType::Utf8 => ColumnData::Utf8(Vec::with_capacity(cap)),
            DataType::Bool => ColumnData::Bool(Vec::with_capacity(cap)),
        }
    }

    /// This column's logical type (`Dict` is an encoding of `Utf8`,
    /// `DictInt` of `Int64`).
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int64(_) | ColumnData::DictInt { .. } => DataType::Int64,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Utf8(_) | ColumnData::Dict { .. } => DataType::Utf8,
            ColumnData::Bool(_) => DataType::Bool,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Utf8(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Dict { ids, .. } => ids.len(),
            ColumnData::DictInt { ids, .. } => ids.len(),
        }
    }

    /// `true` if the column has no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at row `i` (clones strings). Panics if out of bounds.
    pub fn value(&self, i: usize) -> Value {
        match self {
            ColumnData::Int64(v) => Value::Int(v[i]),
            ColumnData::Float64(v) => Value::Float(v[i]),
            ColumnData::Utf8(v) => Value::Str(v[i].clone()),
            ColumnData::Bool(v) => Value::Bool(v[i]),
            ColumnData::Dict { ids, dict } => Value::Str(dict.get(ids[i]).to_owned()),
            ColumnData::DictInt { ids, dict } => Value::Int(dict.get(ids[i])),
        }
    }

    /// Integer at row `i` for either int encoding, `None` for non-int
    /// columns. The zero-copy read path for operators over dict-encoded
    /// ints.
    pub fn int_at(&self, i: usize) -> Option<i64> {
        match self {
            ColumnData::Int64(v) => Some(v[i]),
            ColumnData::DictInt { ids, dict } => Some(dict.get(ids[i])),
            _ => None,
        }
    }

    /// Borrowed string at row `i` for either string encoding, `None` for
    /// non-string columns. The zero-copy read path for operators.
    pub fn str_at(&self, i: usize) -> Option<&str> {
        match self {
            ColumnData::Utf8(v) => Some(&v[i]),
            ColumnData::Dict { ids, dict } => Some(dict.get(ids[i])),
            _ => None,
        }
    }

    /// The `(ids, dictionary)` view of a dict-encoded column.
    pub fn as_dict(&self) -> Option<(&[u32], &Arc<Dictionary>)> {
        match self {
            ColumnData::Dict { ids, dict } => Some((ids, dict)),
            _ => None,
        }
    }

    /// The `(ids, dictionary)` view of a dict-encoded int column.
    pub fn as_int_dict(&self) -> Option<(&[u32], &Arc<IntDict>)> {
        match self {
            ColumnData::DictInt { ids, dict } => Some((ids, dict)),
            _ => None,
        }
    }

    /// Re-encodes a `Utf8` column as `Dict` with a fresh dictionary interned
    /// in row order. Other encodings (including `Dict`) are returned as-is.
    pub fn dict_encoded(&self) -> ColumnData {
        match self {
            ColumnData::Utf8(v) => {
                let (dict, ids) = Dictionary::encode(v.iter().map(String::as_str));
                ColumnData::Dict {
                    ids,
                    dict: Arc::new(dict),
                }
            }
            other => other.clone(),
        }
    }

    /// Re-encodes an `Int64` column as `DictInt` with a fresh dictionary
    /// interned in row order, but only when the column's NDV is at most
    /// `max_ndv` (dictionary-encoding a high-cardinality int column would
    /// trade an 8-byte payload for 8-byte entries *plus* ids). Other
    /// encodings (including `DictInt`) and over-cardinality columns are
    /// returned as-is.
    pub fn dict_encoded_ints(&self, max_ndv: usize) -> ColumnData {
        match self {
            ColumnData::Int64(v) => {
                let (dict, ids) = IntDict::encode(v.iter().copied());
                if dict.len() > max_ndv {
                    return self.clone();
                }
                ColumnData::DictInt {
                    ids,
                    dict: Arc::new(dict),
                }
            }
            other => other.clone(),
        }
    }

    /// Appends a value; errors on type mismatch.
    pub fn push(&mut self, v: Value) -> Result<()> {
        match (self, v) {
            (ColumnData::Int64(c), Value::Int(x)) => c.push(x),
            (ColumnData::Float64(c), Value::Float(x)) => c.push(x),
            (ColumnData::Float64(c), Value::Int(x)) => c.push(x as f64),
            (ColumnData::Utf8(c), Value::Str(x)) => c.push(x),
            (ColumnData::Bool(c), Value::Bool(x)) => c.push(x),
            (ColumnData::Dict { ids, dict }, Value::Str(x)) => {
                ids.push(Arc::make_mut(dict).intern(&x));
            }
            (ColumnData::DictInt { ids, dict }, Value::Int(x)) => {
                ids.push(Arc::make_mut(dict).intern(x));
            }
            (col, v) => {
                return Err(CiError::Exec(format!(
                    "cannot push {} into {} column",
                    v.data_type(),
                    col.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Appends row `i` of `src` to this column (same logical type required).
    pub fn push_from(&mut self, src: &ColumnData, i: usize) -> Result<()> {
        match (self, src) {
            (ColumnData::Int64(dst), ColumnData::Int64(s)) => dst.push(s[i]),
            (ColumnData::Float64(dst), ColumnData::Float64(s)) => dst.push(s[i]),
            (ColumnData::Utf8(dst), ColumnData::Utf8(s)) => dst.push(s[i].clone()),
            (ColumnData::Bool(dst), ColumnData::Bool(s)) => dst.push(s[i]),
            (
                ColumnData::Dict { ids, dict },
                ColumnData::Dict {
                    ids: sids,
                    dict: sdict,
                },
            ) => {
                if Arc::ptr_eq(dict, sdict) {
                    ids.push(sids[i]);
                } else {
                    ids.push(Arc::make_mut(dict).intern(sdict.get(sids[i])));
                }
            }
            (ColumnData::Dict { ids, dict }, ColumnData::Utf8(s)) => {
                ids.push(Arc::make_mut(dict).intern(&s[i]));
            }
            (ColumnData::Utf8(dst), ColumnData::Dict { ids: sids, dict }) => {
                dst.push(dict.get(sids[i]).to_owned());
            }
            (
                ColumnData::DictInt { ids, dict },
                ColumnData::DictInt {
                    ids: sids,
                    dict: sdict,
                },
            ) => {
                if Arc::ptr_eq(dict, sdict) {
                    ids.push(sids[i]);
                } else {
                    ids.push(Arc::make_mut(dict).intern(sdict.get(sids[i])));
                }
            }
            (ColumnData::DictInt { ids, dict }, ColumnData::Int64(s)) => {
                ids.push(Arc::make_mut(dict).intern(s[i]));
            }
            (ColumnData::Int64(dst), ColumnData::DictInt { ids: sids, dict }) => {
                dst.push(dict.get(sids[i]));
            }
            (dst, s) => {
                return Err(CiError::Exec(format!(
                    "column type mismatch: {} vs {}",
                    dst.data_type(),
                    s.data_type()
                )))
            }
        }
        Ok(())
    }

    /// New column containing only rows where `keep[i]` is true. Single pass;
    /// dict columns keep their dictionary and move only ids.
    pub fn filter(&self, keep: &[bool]) -> ColumnData {
        debug_assert_eq!(keep.len(), self.len());
        fn pick<T: Clone>(v: &[T], keep: &[bool]) -> Vec<T> {
            v.iter()
                .zip(keep)
                .filter(|&(_, &k)| k)
                .map(|(x, _)| x.clone())
                .collect()
        }
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(pick(v, keep)),
            ColumnData::Float64(v) => ColumnData::Float64(pick(v, keep)),
            ColumnData::Utf8(v) => ColumnData::Utf8(pick(v, keep)),
            ColumnData::Bool(v) => ColumnData::Bool(pick(v, keep)),
            ColumnData::Dict { ids, dict } => ColumnData::Dict {
                ids: pick(ids, keep),
                dict: dict.clone(),
            },
            ColumnData::DictInt { ids, dict } => ColumnData::DictInt {
                ids: pick(ids, keep),
                dict: dict.clone(),
            },
        }
    }

    /// New column gathering the given row indices (indices may repeat).
    /// Panics on out-of-bounds indices; see [`ColumnData::try_take`] for the
    /// checked variant.
    pub fn take(&self, indices: &[usize]) -> ColumnData {
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Float64(v) => ColumnData::Float64(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Utf8(v) => {
                ColumnData::Utf8(indices.iter().map(|&i| v[i].clone()).collect())
            }
            ColumnData::Bool(v) => ColumnData::Bool(indices.iter().map(|&i| v[i]).collect()),
            ColumnData::Dict { ids, dict } => ColumnData::Dict {
                ids: indices.iter().map(|&i| ids[i]).collect(),
                dict: dict.clone(),
            },
            ColumnData::DictInt { ids, dict } => ColumnData::DictInt {
                ids: indices.iter().map(|&i| ids[i]).collect(),
                dict: dict.clone(),
            },
        }
    }

    /// Gather with inline bounds validation: one pass, erroring on the first
    /// out-of-bounds index instead of pre-scanning.
    pub fn try_take(&self, indices: &[usize]) -> Result<ColumnData> {
        let rows = self.len();
        fn gather<T: Clone>(v: &[T], indices: &[usize], rows: usize) -> Result<Vec<T>> {
            indices
                .iter()
                .map(|&i| {
                    v.get(i).cloned().ok_or_else(|| {
                        CiError::Exec(format!("take index {i} out of bounds for {rows} rows"))
                    })
                })
                .collect()
        }
        Ok(match self {
            ColumnData::Int64(v) => ColumnData::Int64(gather(v, indices, rows)?),
            ColumnData::Float64(v) => ColumnData::Float64(gather(v, indices, rows)?),
            ColumnData::Utf8(v) => ColumnData::Utf8(gather(v, indices, rows)?),
            ColumnData::Bool(v) => ColumnData::Bool(gather(v, indices, rows)?),
            ColumnData::Dict { ids, dict } => ColumnData::Dict {
                ids: gather(ids, indices, rows)?,
                dict: dict.clone(),
            },
            ColumnData::DictInt { ids, dict } => ColumnData::DictInt {
                ids: gather(ids, indices, rows)?,
                dict: dict.clone(),
            },
        })
    }

    /// Materializes the rows a selection names, in order. Panic-free by the
    /// selection invariants (`sel.total() == self.len()`, indices in
    /// bounds); dict columns keep their dictionary and move only ids. A
    /// contiguous range-run selection degrades to [`ColumnData::slice`] — a
    /// memcpy of fixed-width payloads instead of a per-row gather.
    pub fn gather(&self, sel: &SelectionVector) -> ColumnData {
        debug_assert_eq!(sel.total(), self.len());
        if let Some((start, len)) = sel.as_range() {
            return self.slice(start, len);
        }
        fn pick<T: Clone>(v: &[T], sel: &SelectionVector) -> Vec<T> {
            sel.iter().map(|i| v[i].clone()).collect()
        }
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(pick(v, sel)),
            ColumnData::Float64(v) => ColumnData::Float64(pick(v, sel)),
            ColumnData::Utf8(v) => ColumnData::Utf8(pick(v, sel)),
            ColumnData::Bool(v) => ColumnData::Bool(pick(v, sel)),
            ColumnData::Dict { ids, dict } => ColumnData::Dict {
                ids: pick(ids, sel),
                dict: dict.clone(),
            },
            ColumnData::DictInt { ids, dict } => ColumnData::DictInt {
                ids: pick(ids, sel),
                dict: dict.clone(),
            },
        }
    }

    /// [`ColumnData::byte_size`] restricted to the rows a selection names,
    /// so byte accounting over a selected batch matches what the eagerly
    /// materialized batch would report.
    pub fn byte_size_selected(&self, sel: &SelectionVector) -> usize {
        debug_assert_eq!(sel.total(), self.len());
        match self {
            ColumnData::Int64(_) | ColumnData::Float64(_) | ColumnData::DictInt { .. } => {
                sel.len() * 8
            }
            ColumnData::Bool(_) => sel.len(),
            ColumnData::Utf8(v) => match sel.as_range() {
                Some((start, len)) => v[start..start + len].iter().map(|s| s.len() + 4).sum(),
                None => sel.iter().map(|i| v[i].len() + 4).sum(),
            },
            ColumnData::Dict { ids, dict } => match sel.as_range() {
                Some((start, len)) => ids[start..start + len]
                    .iter()
                    .map(|&id| dict.value_bytes(id))
                    .sum(),
                None => sel.iter().map(|i| dict.value_bytes(ids[i])).sum(),
            },
        }
    }

    /// Slice of the selected range: copies fixed-width payloads (a memcpy);
    /// dict columns copy only the 4-byte ids and share the dictionary.
    pub fn slice(&self, offset: usize, len: usize) -> ColumnData {
        match self {
            ColumnData::Int64(v) => ColumnData::Int64(v[offset..offset + len].to_vec()),
            ColumnData::Float64(v) => ColumnData::Float64(v[offset..offset + len].to_vec()),
            ColumnData::Utf8(v) => ColumnData::Utf8(v[offset..offset + len].to_vec()),
            ColumnData::Bool(v) => ColumnData::Bool(v[offset..offset + len].to_vec()),
            ColumnData::Dict { ids, dict } => ColumnData::Dict {
                ids: ids[offset..offset + len].to_vec(),
                dict: dict.clone(),
            },
            ColumnData::DictInt { ids, dict } => ColumnData::DictInt {
                ids: ids[offset..offset + len].to_vec(),
                dict: dict.clone(),
            },
        }
    }

    /// Appends all values of `other` (same logical type required). Dict
    /// columns sharing one dictionary extend ids directly; mismatched string
    /// encodings re-intern or decode row by row.
    pub fn extend_from(&mut self, other: &ColumnData) -> Result<()> {
        match (self, other) {
            (ColumnData::Int64(a), ColumnData::Int64(b)) => a.extend_from_slice(b),
            (ColumnData::Float64(a), ColumnData::Float64(b)) => a.extend_from_slice(b),
            (ColumnData::Utf8(a), ColumnData::Utf8(b)) => a.extend(b.iter().cloned()),
            (ColumnData::Bool(a), ColumnData::Bool(b)) => a.extend_from_slice(b),
            (
                ColumnData::Dict { ids, dict },
                ColumnData::Dict {
                    ids: bids,
                    dict: bdict,
                },
            ) => {
                if Arc::ptr_eq(dict, bdict) {
                    ids.extend_from_slice(bids);
                } else {
                    let d = Arc::make_mut(dict);
                    ids.extend(bids.iter().map(|&id| d.intern(bdict.get(id))));
                }
            }
            (ColumnData::Dict { ids, dict }, ColumnData::Utf8(b)) => {
                let d = Arc::make_mut(dict);
                ids.extend(b.iter().map(|s| d.intern(s)));
            }
            (ColumnData::Utf8(a), ColumnData::Dict { ids: bids, dict }) => {
                a.extend(bids.iter().map(|&id| dict.get(id).to_owned()));
            }
            (
                ColumnData::DictInt { ids, dict },
                ColumnData::DictInt {
                    ids: bids,
                    dict: bdict,
                },
            ) => {
                if Arc::ptr_eq(dict, bdict) {
                    ids.extend_from_slice(bids);
                } else {
                    let d = Arc::make_mut(dict);
                    ids.extend(bids.iter().map(|&id| d.intern(bdict.get(id))));
                }
            }
            (ColumnData::DictInt { ids, dict }, ColumnData::Int64(b)) => {
                let d = Arc::make_mut(dict);
                ids.extend(b.iter().map(|&x| d.intern(x)));
            }
            (ColumnData::Int64(a), ColumnData::DictInt { ids: bids, dict }) => {
                a.extend(bids.iter().map(|&id| dict.get(id)));
            }
            (a, b) => {
                return Err(CiError::Exec(format!(
                    "cannot concat {} with {}",
                    a.data_type(),
                    b.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Exact encoded byte size of this column's *decoded* data. Dict columns
    /// report the same size as their Utf8 equivalent so storage, network, and
    /// billing accounting are encoding-independent.
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len() * 8,
            ColumnData::Float64(v) => v.len() * 8,
            ColumnData::Utf8(v) => v.iter().map(|s| s.len() + 4).sum(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Dict { ids, dict } => ids.iter().map(|&id| dict.value_bytes(id)).sum(),
            ColumnData::DictInt { ids, .. } => ids.len() * 8,
        }
    }

    /// Min and max values (`None` for an empty column).
    pub fn min_max(&self) -> Option<(Value, Value)> {
        if self.is_empty() {
            return None;
        }
        match self {
            ColumnData::Int64(v) => {
                let min = *v.iter().min().expect("non-empty");
                let max = *v.iter().max().expect("non-empty");
                Some((Value::Int(min), Value::Int(max)))
            }
            ColumnData::Float64(v) => {
                let mut min = f64::INFINITY;
                let mut max = f64::NEG_INFINITY;
                for &x in v {
                    min = min.min(x);
                    max = max.max(x);
                }
                Some((Value::Float(min), Value::Float(max)))
            }
            ColumnData::Utf8(v) => {
                let min = v.iter().min().expect("non-empty").clone();
                let max = v.iter().max().expect("non-empty").clone();
                Some((Value::Str(min), Value::Str(max)))
            }
            ColumnData::Bool(v) => {
                let any_false = v.iter().any(|x| !x);
                let any_true = v.iter().any(|x| *x);
                // false < true: min is false iff any false, max is true iff any true.
                Some((Value::Bool(!any_false), Value::Bool(any_true)))
            }
            ColumnData::Dict { ids, dict } => {
                let mut min = dict.get(ids[0]);
                let mut max = min;
                for &id in &ids[1..] {
                    let s = dict.get(id);
                    if s < min {
                        min = s;
                    }
                    if s > max {
                        max = s;
                    }
                }
                Some((Value::Str(min.to_owned()), Value::Str(max.to_owned())))
            }
            ColumnData::DictInt { ids, dict } => {
                let mut min = dict.get(ids[0]);
                let mut max = min;
                for &id in &ids[1..] {
                    let x = dict.get(id);
                    min = min.min(x);
                    max = max.max(x);
                }
                Some((Value::Int(min), Value::Int(max)))
            }
        }
    }

    /// Typed accessor; errors if the column is not Int64 — including for
    /// dict-encoded ints (use [`ColumnData::int_at`] or
    /// [`ColumnData::as_int_dict`] to read those without decoding).
    pub fn as_i64(&self) -> Result<&[i64]> {
        match self {
            ColumnData::Int64(v) => Ok(v),
            ColumnData::DictInt { .. } => Err(CiError::Exec(
                "expected plain INT column, got dict-encoded INT".into(),
            )),
            other => Err(CiError::Exec(format!(
                "expected INT column, got {}",
                other.data_type()
            ))),
        }
    }

    /// Typed accessor; errors if the column is not Float64.
    pub fn as_f64(&self) -> Result<&[f64]> {
        match self {
            ColumnData::Float64(v) => Ok(v),
            other => Err(CiError::Exec(format!(
                "expected DOUBLE column, got {}",
                other.data_type()
            ))),
        }
    }

    /// Typed accessor over the owned encoding; errors for non-string columns
    /// *and* for dict-encoded columns (use [`ColumnData::str_at`] or
    /// [`ColumnData::as_dict`] to read those without decoding).
    pub fn as_str(&self) -> Result<&[String]> {
        match self {
            ColumnData::Utf8(v) => Ok(v),
            ColumnData::Dict { .. } => Err(CiError::Exec(
                "expected owned VARCHAR column, got dict-encoded VARCHAR".into(),
            )),
            other => Err(CiError::Exec(format!(
                "expected VARCHAR column, got {}",
                other.data_type()
            ))),
        }
    }

    /// Typed accessor; errors if the column is not Bool.
    pub fn as_bool(&self) -> Result<&[bool]> {
        match self {
            ColumnData::Bool(v) => Ok(v),
            other => Err(CiError::Exec(format!(
                "expected BOOLEAN column, got {}",
                other.data_type()
            ))),
        }
    }
}

/// Equality over *decoded* values: a dict-encoded column equals the Utf8
/// column holding the same strings. Keeps result comparison (tests, the
/// determinism oracle) independent of which encoding a plan path produced.
impl PartialEq for ColumnData {
    fn eq(&self, other: &Self) -> bool {
        use ColumnData::*;
        match (self, other) {
            (Int64(a), Int64(b)) => a == b,
            (Float64(a), Float64(b)) => a == b,
            (Bool(a), Bool(b)) => a == b,
            (Utf8(a), Utf8(b)) => a == b,
            (Dict { ids: a, dict: da }, Dict { ids: b, dict: db }) => {
                if Arc::ptr_eq(da, db) || da == db {
                    a == b
                } else {
                    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| da.get(x) == db.get(y))
                }
            }
            (Utf8(a), Dict { ids, dict }) | (Dict { ids, dict }, Utf8(a)) => {
                a.len() == ids.len() && a.iter().zip(ids).all(|(s, &id)| s == dict.get(id))
            }
            (DictInt { ids: a, dict: da }, DictInt { ids: b, dict: db }) => {
                if Arc::ptr_eq(da, db) || da == db {
                    a == b
                } else {
                    a.len() == b.len() && a.iter().zip(b).all(|(&x, &y)| da.get(x) == db.get(y))
                }
            }
            (Int64(a), DictInt { ids, dict }) | (DictInt { ids, dict }, Int64(a)) => {
                a.len() == ids.len() && a.iter().zip(ids).all(|(&x, &id)| x == dict.get(id))
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut c = ColumnData::empty(DataType::Int64);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Int(2)).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.value(1), Value::Int(2));
        assert!(c.push(Value::from("x")).is_err());
    }

    #[test]
    fn int_coerces_into_float_column() {
        let mut c = ColumnData::empty(DataType::Float64);
        c.push(Value::Int(3)).unwrap();
        assert_eq!(c.value(0), Value::Float(3.0));
    }

    #[test]
    fn filter_keeps_marked_rows() {
        let c = ColumnData::Int64(vec![10, 20, 30, 40]);
        let f = c.filter(&[true, false, true, false]);
        assert_eq!(f, ColumnData::Int64(vec![10, 30]));
    }

    #[test]
    fn take_gathers_with_repeats() {
        let c = ColumnData::Utf8(vec!["a".into(), "b".into(), "c".into()]);
        let t = c.take(&[2, 0, 2]);
        assert_eq!(
            t,
            ColumnData::Utf8(vec!["c".into(), "a".into(), "c".into()])
        );
    }

    #[test]
    fn try_take_errors_on_first_bad_index() {
        let c = ColumnData::Int64(vec![1, 2, 3]);
        assert_eq!(c.try_take(&[2, 0]).unwrap(), ColumnData::Int64(vec![3, 1]));
        let err = c.try_take(&[1, 7, 9]).unwrap_err().to_string();
        assert!(
            err.contains("take index 7 out of bounds for 3 rows"),
            "{err}"
        );
    }

    #[test]
    fn slice_range() {
        let c = ColumnData::Float64(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.slice(1, 2), ColumnData::Float64(vec![2.0, 3.0]));
    }

    #[test]
    fn extend_same_type_only() {
        let mut a = ColumnData::Int64(vec![1]);
        a.extend_from(&ColumnData::Int64(vec![2, 3])).unwrap();
        assert_eq!(a.len(), 3);
        assert!(a.extend_from(&ColumnData::Bool(vec![true])).is_err());
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(ColumnData::Int64(vec![1, 2]).byte_size(), 16);
        assert_eq!(ColumnData::Bool(vec![true; 5]).byte_size(), 5);
        assert_eq!(
            ColumnData::Utf8(vec!["ab".into(), "c".into()]).byte_size(),
            2 + 4 + 1 + 4
        );
    }

    #[test]
    fn min_max_per_type() {
        assert_eq!(
            ColumnData::Int64(vec![3, 1, 2]).min_max(),
            Some((Value::Int(1), Value::Int(3)))
        );
        assert_eq!(
            ColumnData::Utf8(vec!["b".into(), "a".into()]).min_max(),
            Some((Value::Str("a".into()), Value::Str("b".into())))
        );
        assert_eq!(ColumnData::Int64(vec![]).min_max(), None);
    }

    #[test]
    fn typed_accessors() {
        let c = ColumnData::Int64(vec![5]);
        assert_eq!(c.as_i64().unwrap(), &[5]);
        assert!(c.as_f64().is_err());
        assert!(c.as_str().is_err());
        assert!(c.as_bool().is_err());
    }

    #[test]
    fn push_from_copies_row() {
        let src = ColumnData::Int64(vec![7, 8]);
        let mut dst = ColumnData::empty(DataType::Int64);
        dst.push_from(&src, 1).unwrap();
        assert_eq!(dst, ColumnData::Int64(vec![8]));
    }

    fn dict_col(vals: &[&str]) -> ColumnData {
        ColumnData::Utf8(vals.iter().map(|s| (*s).to_owned()).collect()).dict_encoded()
    }

    #[test]
    fn dict_encoding_round_trips() {
        let c = dict_col(&["x", "y", "x", "z"]);
        assert_eq!(c.data_type(), DataType::Utf8);
        assert_eq!(c.len(), 4);
        assert_eq!(c.value(2), Value::from("x"));
        assert_eq!(c.str_at(3), Some("z"));
        let (ids, dict) = c.as_dict().unwrap();
        assert_eq!(ids, &[0, 1, 0, 2]);
        assert_eq!(dict.len(), 3);
    }

    #[test]
    fn dict_equals_utf8_with_same_values() {
        let utf8 = ColumnData::Utf8(vec!["x".into(), "y".into(), "x".into()]);
        let dict = dict_col(&["x", "y", "x"]);
        assert_eq!(dict, utf8);
        assert_eq!(utf8, dict);
        assert_ne!(
            dict,
            ColumnData::Utf8(vec!["x".into(), "y".into(), "y".into()])
        );
    }

    #[test]
    fn dict_filter_take_slice_share_dictionary() {
        let c = dict_col(&["a", "b", "c", "a"]);
        let (_, dict) = c.as_dict().unwrap();
        let dict = dict.clone();
        let f = c.filter(&[true, false, true, true]);
        assert_eq!(
            f,
            ColumnData::Utf8(vec!["a".into(), "c".into(), "a".into()])
        );
        assert!(Arc::ptr_eq(f.as_dict().unwrap().1, &dict));
        let t = c.take(&[3, 2]);
        assert!(Arc::ptr_eq(t.as_dict().unwrap().1, &dict));
        let s = c.slice(1, 2);
        assert_eq!(s, ColumnData::Utf8(vec!["b".into(), "c".into()]));
        assert!(Arc::ptr_eq(s.as_dict().unwrap().1, &dict));
    }

    #[test]
    fn dict_byte_size_matches_utf8() {
        let vals = ["ab", "c", "ab", ""];
        let utf8 = ColumnData::Utf8(vals.iter().map(|s| (*s).to_owned()).collect());
        assert_eq!(dict_col(&vals).byte_size(), utf8.byte_size());
    }

    #[test]
    fn dict_min_max_matches_utf8() {
        let vals = ["m", "a", "z", "a"];
        let utf8 = ColumnData::Utf8(vals.iter().map(|s| (*s).to_owned()).collect());
        assert_eq!(dict_col(&vals).min_max(), utf8.min_max());
    }

    #[test]
    fn dict_extend_from_shared_and_foreign() {
        let a = dict_col(&["a", "b"]);
        let same_dict_tail = a.slice(1, 1);
        let mut grown = a.clone();
        grown.extend_from(&same_dict_tail).unwrap();
        assert_eq!(
            grown,
            ColumnData::Utf8(vec!["a".into(), "b".into(), "b".into()])
        );
        // Extending from a foreign dictionary re-interns.
        let foreign = dict_col(&["c", "a"]);
        grown.extend_from(&foreign).unwrap();
        assert_eq!(
            grown,
            ColumnData::Utf8(vec![
                "a".into(),
                "b".into(),
                "b".into(),
                "c".into(),
                "a".into()
            ])
        );
        // And from an owned Utf8 column.
        grown
            .extend_from(&ColumnData::Utf8(vec!["d".into()]))
            .unwrap();
        assert_eq!(grown.len(), 6);
        assert_eq!(grown.str_at(5), Some("d"));
    }

    #[test]
    fn dict_push_interns() {
        let mut c = dict_col(&["a"]);
        c.push(Value::from("b")).unwrap();
        c.push(Value::from("a")).unwrap();
        let (ids, dict) = c.as_dict().unwrap();
        assert_eq!(ids, &[0, 1, 0]);
        assert_eq!(dict.len(), 2);
    }

    #[test]
    fn gather_and_selected_bytes_match_eager_filter() {
        let keep = [true, false, true, false];
        let sel = SelectionVector::from_mask(&keep);
        let ints = ColumnData::Int64(vec![1, 2, 3, 4]);
        assert_eq!(ints.gather(&sel), ints.filter(&keep));
        assert_eq!(
            ints.byte_size_selected(&sel),
            ints.filter(&keep).byte_size()
        );
        let d = dict_col(&["ab", "c", "ab", ""]);
        assert_eq!(d.gather(&sel), d.filter(&keep));
        assert_eq!(d.byte_size_selected(&sel), d.filter(&keep).byte_size());
        assert!(Arc::ptr_eq(
            d.gather(&sel).as_dict().unwrap().1,
            d.as_dict().unwrap().1
        ));
    }

    #[test]
    fn dict_as_str_is_rejected_with_hint() {
        let err = dict_col(&["a"]).as_str().unwrap_err().to_string();
        assert!(err.contains("dict-encoded"), "{err}");
    }
}
