//! Tiered page sources: real on-disk CIPG partition files behind a
//! memory -> local-SSD -> object-store hierarchy.
//!
//! The rest of the workspace models the object store analytically; this
//! module makes the *bytes* real. [`ObjectStoreDir`] persists every
//! micro-partition of a table as one self-describing `CIPF` file — a
//! checksummed container of per-column CIPG pages — plus a `CIPT` manifest
//! carrying the table-wide dictionaries. A scan under
//! `CI_PAGE_SOURCE=disk|tiered` then reads partitions back from those
//! files through the [`PageSource`] trait instead of cloning resident
//! batches, and must produce bit-identical rows and Dollars.
//!
//! # `CIPF` partition file layout
//!
//! ```text
//! [0..4)   magic  "CIPF"
//! [4]      format version (1)
//! [5]      flags (0)
//! [6..8)   column count, u16 LE
//! [8..12)  row count, u32 LE
//! [12..20) payload length, u64 LE
//! [20..28) FNV-1a-64 checksum of the payload, u64 LE
//! [28..]   payload: per column `kind u8 | blob_len u32 LE | blob`
//! ```
//!
//! Column kinds: `0` = a self-contained CIPG page ([`crate::pages`]);
//! `1` / `2` = bit-packed ids referencing the table-wide string / int
//! dictionary from the manifest. Dict-ref columns exist so a decoded
//! partition attaches the *same* `Arc`'d dictionary the in-memory table
//! shares — wire-level dictionary deduplication (ship-once) and therefore
//! Dollars stay identical to the in-memory path.
//!
//! Every malformed input — truncation, flipped bytes, forged lengths —
//! surfaces as [`CiError::Storage`], never a panic, and length fields are
//! validated against the actual file size *before* any proportional
//! allocation.
//!
//! Decoded-value fidelity: inline (kind 0) columns restrict the codec
//! choice so decoding reproduces the in-memory representation exactly
//! (plain ints stay plain rather than resurfacing as fresh per-partition
//! dictionaries), which keeps exchange wire accounting source-invariant.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use ci_types::{CiError, Result, TableId};

use crate::batch::RecordBatch;
use crate::column::ColumnData;
use crate::dict::{Dictionary, IntDict};
use crate::pages::{
    self, encode_best, encode_column, id_bit_width, packed_id_bytes, PageCodec, MAX_DECODE_ROWS,
};
use crate::schema::SchemaRef;
use crate::table::Table;
use crate::value::DataType;

/// Magic prefix of a partition file.
pub const PART_MAGIC: [u8; 4] = *b"CIPF";
/// Magic prefix of a table manifest.
pub const MANIFEST_MAGIC: [u8; 4] = *b"CIPT";
/// Container format version.
pub const TIER_FILE_VERSION: u8 = 1;
/// Fixed container header size (both file kinds).
pub const TIER_HEADER_BYTES: usize = 28;

/// Column payload kinds inside a `CIPF` file.
const KIND_PAGE: u8 = 0;
const KIND_DICT_REF: u8 = 1;
const KIND_INT_DICT_REF: u8 = 2;

fn serr(msg: String) -> CiError {
    CiError::Storage(msg)
}

/// FNV-1a 64-bit — tiny, dependency-free, deterministic.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Page source selection
// ---------------------------------------------------------------------------

/// Where scans physically read partition bytes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PageSourceMode {
    /// Resident in-memory batches (the seed behavior).
    #[default]
    Mem,
    /// Every fetch reads and decodes the partition's `CIPF` file.
    Disk,
    /// Reads go through the memory -> SSD -> object tier stack.
    Tiered,
}

impl PageSourceMode {
    /// Parses `mem` / `disk` / `tiered` (case-insensitive).
    pub fn parse(s: &str) -> Option<PageSourceMode> {
        match s.to_ascii_lowercase().as_str() {
            "mem" | "memory" => Some(PageSourceMode::Mem),
            "disk" => Some(PageSourceMode::Disk),
            "tiered" => Some(PageSourceMode::Tiered),
            _ => None,
        }
    }

    /// Reads `CI_PAGE_SOURCE`; unset or unrecognized means [`Mem`].
    ///
    /// [`Mem`]: PageSourceMode::Mem
    pub fn from_env() -> PageSourceMode {
        std::env::var("CI_PAGE_SOURCE")
            .ok()
            .and_then(|s| PageSourceMode::parse(&s))
            .unwrap_or_default()
    }

    /// Display label for traces and logs.
    pub fn label(self) -> &'static str {
        match self {
            PageSourceMode::Mem => "mem",
            PageSourceMode::Disk => "disk",
            PageSourceMode::Tiered => "tiered",
        }
    }
}

// ---------------------------------------------------------------------------
// Table-wide dictionaries
// ---------------------------------------------------------------------------

/// Per-column table-wide dictionary, pinned so every decoded partition
/// shares one `Arc` (identity matters for wire ship-once accounting).
#[derive(Debug, Clone)]
pub enum StoredDict {
    /// No table-wide dictionary for this column.
    None,
    /// Shared string dictionary.
    Str(Arc<Dictionary>),
    /// Shared integer dictionary.
    Int(Arc<IntDict>),
}

/// One table registered in an [`ObjectStoreDir`]: its schema, partition
/// count, on-disk location, and pinned dictionaries.
#[derive(Debug)]
pub struct StoredTable {
    /// Directory holding `part-N.cipf` files and `table.cipt`.
    pub dir: PathBuf,
    /// Table schema (decoded partitions carry it).
    pub schema: SchemaRef,
    /// Number of partition files.
    pub parts: usize,
    dicts: Vec<StoredDict>,
    /// Identity of the source `Arc<Table>` used for idempotent re-writes
    /// (0 when attached from disk without a source table).
    ident: usize,
}

impl StoredTable {
    /// The pinned dictionary of column `i`.
    pub fn dict(&self, i: usize) -> &StoredDict {
        &self.dicts[i]
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Encodes one column as a kind-0 inline page whose decode reproduces the
/// in-memory representation exactly: plain int columns never pick the Dict
/// codec (which would decode into a fresh per-partition dictionary), and
/// plain string columns stay Plain.
fn inline_page_bytes(col: &ColumnData) -> Result<Vec<u8>> {
    match col {
        ColumnData::Int64(_) => {
            let mut best: Option<(usize, PageCodec)> = None;
            for codec in PageCodec::candidates(DataType::Int64) {
                if codec == PageCodec::Dict {
                    continue;
                }
                let (_, bytes) = encode_column(col, codec)?;
                if best.as_ref().is_none_or(|(sz, _)| bytes.len() < *sz) {
                    best = Some((bytes.len(), codec));
                }
            }
            let (_, codec) = best.expect("Int64 always has candidate codecs");
            Ok(encode_column(col, codec)?.1)
        }
        ColumnData::Utf8(_) => Ok(encode_column(col, PageCodec::Plain)?.1),
        ColumnData::Float64(_) | ColumnData::Bool(_) => Ok(encode_best(col)?.1),
        // Dictionary columns without a table-wide dictionary: store the
        // materialized values. (Unreachable through the catalog, which
        // always produces table-wide dictionaries; representation may then
        // legitimately differ from the resident batch.)
        ColumnData::Dict { ids, dict } => {
            let vals: Vec<String> = ids.iter().map(|&id| dict.get(id).to_string()).collect();
            Ok(encode_column(&ColumnData::Utf8(vals), PageCodec::Plain)?.1)
        }
        ColumnData::DictInt { ids, dict } => {
            let vals: Vec<i64> = ids.iter().map(|&id| dict.get(id)).collect();
            inline_page_bytes(&ColumnData::Int64(vals))
        }
    }
}

fn push_header(out: &mut Vec<u8>, magic: [u8; 4], cols: u16, rows: u32, payload: &[u8]) {
    out.extend_from_slice(&magic);
    out.push(TIER_FILE_VERSION);
    out.push(0); // flags
    out.extend_from_slice(&cols.to_le_bytes());
    out.extend_from_slice(&rows.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Serializes one dense partition batch against the table-wide dicts.
fn encode_partition(batch: &RecordBatch, dicts: &[StoredDict]) -> Result<Vec<u8>> {
    let rows = batch.rows();
    if rows > MAX_DECODE_ROWS {
        return Err(serr(format!(
            "partition of {rows} rows exceeds the page bound of {MAX_DECODE_ROWS}"
        )));
    }
    let mut payload = Vec::new();
    for (i, col) in batch.columns().iter().enumerate() {
        let (kind, blob) = match (col.as_ref(), &dicts[i]) {
            (ColumnData::Dict { ids, dict }, StoredDict::Str(td)) if Arc::ptr_eq(dict, td) => {
                let width = id_bit_width(td.len());
                let mut b = vec![width as u8];
                pages::pack_ids(&mut b, ids.iter().copied(), width);
                (KIND_DICT_REF, b)
            }
            (ColumnData::DictInt { ids, dict }, StoredDict::Int(td)) if Arc::ptr_eq(dict, td) => {
                let width = id_bit_width(td.len());
                let mut b = vec![width as u8];
                pages::pack_ids(&mut b, ids.iter().copied(), width);
                (KIND_INT_DICT_REF, b)
            }
            _ => (KIND_PAGE, inline_page_bytes(col)?),
        };
        payload.push(kind);
        payload.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        payload.extend_from_slice(&blob);
    }
    let mut out = Vec::with_capacity(TIER_HEADER_BYTES + payload.len());
    push_header(
        &mut out,
        PART_MAGIC,
        batch.columns().len() as u16,
        rows as u32,
        &payload,
    );
    Ok(out)
}

/// Serializes the table manifest: per-column table-wide dictionaries.
fn encode_manifest(dicts: &[StoredDict], parts: usize) -> Vec<u8> {
    let mut payload = Vec::new();
    for d in dicts {
        match d {
            StoredDict::None => payload.push(0),
            StoredDict::Str(dict) => {
                payload.push(1);
                payload.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                for v in dict.values() {
                    payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    payload.extend_from_slice(v.as_bytes());
                }
            }
            StoredDict::Int(dict) => {
                payload.push(2);
                payload.extend_from_slice(&(dict.len() as u32).to_le_bytes());
                for &v in dict.values() {
                    payload.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
    let mut out = Vec::with_capacity(TIER_HEADER_BYTES + payload.len());
    push_header(
        &mut out,
        MANIFEST_MAGIC,
        dicts.len() as u16,
        parts as u32,
        &payload,
    );
    out
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

struct TierCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'a str,
}

impl<'a> TierCursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.bytes.len() - self.pos < n {
            return Err(serr(format!(
                "{}: truncated payload (need {n} bytes at offset {}, have {})",
                self.what,
                self.pos,
                self.bytes.len() - self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Validates a container header against the actual byte length and returns
/// `(cols, rows, payload)`. Checksums the payload.
fn open_container<'a>(bytes: &'a [u8], magic: [u8; 4], what: &str) -> Result<(u16, u32, &'a [u8])> {
    if bytes.len() < TIER_HEADER_BYTES {
        return Err(serr(format!(
            "{what}: file of {} bytes is shorter than the {TIER_HEADER_BYTES}-byte header",
            bytes.len()
        )));
    }
    if bytes[0..4] != magic {
        return Err(serr(format!(
            "{what}: bad magic {:02x?} (want {:02x?})",
            &bytes[0..4],
            magic
        )));
    }
    if bytes[4] != TIER_FILE_VERSION {
        return Err(serr(format!(
            "{what}: unsupported version {} (want {TIER_FILE_VERSION})",
            bytes[4]
        )));
    }
    if bytes[5] != 0 {
        return Err(serr(format!("{what}: unknown flags {:#x}", bytes[5])));
    }
    let cols = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    let rows = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let payload_len = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let checksum = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    // Forged lengths fail here, against the real file size, before any
    // payload-proportional allocation.
    if payload_len != (bytes.len() - TIER_HEADER_BYTES) as u64 {
        return Err(serr(format!(
            "{what}: payload length {payload_len} disagrees with file size {}",
            bytes.len()
        )));
    }
    let payload = &bytes[TIER_HEADER_BYTES..];
    let actual = fnv1a64(payload);
    if actual != checksum {
        return Err(serr(format!(
            "{what}: checksum mismatch (stored {checksum:#018x}, computed {actual:#018x})"
        )));
    }
    Ok((cols, rows, payload))
}

/// Decodes a dict-ref blob (`width u8 | packed ids`) against `entries`.
fn decode_dict_ref(blob: &[u8], rows: usize, entries: usize, what: &str) -> Result<Vec<u32>> {
    if blob.is_empty() {
        return Err(serr(format!("{what}: empty dict-ref blob")));
    }
    let width = blob[0] as u32;
    if width > 32 || (entries > 1 && width < id_bit_width(entries)) {
        return Err(serr(format!(
            "{what}: dict-ref bit width {width} invalid for {entries} entries"
        )));
    }
    if rows > 0 && entries == 0 {
        return Err(serr(format!("{what}: {rows} rows but empty dictionary")));
    }
    let expect = packed_id_bytes(rows, width);
    if (blob.len() - 1) as u64 != expect {
        return Err(serr(format!(
            "{what}: dict-ref blob holds {} packed bytes, want {expect}",
            blob.len() - 1
        )));
    }
    let ids = pages::unpack_ids(&blob[1..], rows, width)?;
    if let Some(&bad) = ids.iter().find(|&&id| id as usize >= entries.max(1)) {
        return Err(serr(format!(
            "{what}: dict-ref id {bad} out of range for {entries} entries"
        )));
    }
    Ok(ids)
}

/// Decodes one `CIPF` partition file against a table's schema + dicts.
fn decode_partition(bytes: &[u8], stored: &StoredTable, what: &str) -> Result<RecordBatch> {
    let (cols, rows, payload) = open_container(bytes, PART_MAGIC, what)?;
    if cols as usize != stored.schema.arity() {
        return Err(serr(format!(
            "{what}: {cols} columns, schema has {}",
            stored.schema.arity()
        )));
    }
    let rows = rows as usize;
    if rows > MAX_DECODE_ROWS {
        return Err(serr(format!(
            "{what}: {rows} rows exceeds the decoder bound of {MAX_DECODE_ROWS}"
        )));
    }
    let mut c = TierCursor {
        bytes: payload,
        pos: 0,
        what,
    };
    let mut out: Vec<ColumnData> = Vec::with_capacity(cols as usize);
    for i in 0..cols as usize {
        let kind = c.u8()?;
        let blob_len = c.u32()? as usize;
        let blob = c.take(blob_len)?;
        let col = match kind {
            KIND_PAGE => {
                let col = pages::decode_column(blob)?;
                if col.len() != rows {
                    return Err(serr(format!(
                        "{what}: column {i} decoded {} rows, file declares {rows}",
                        col.len()
                    )));
                }
                col
            }
            KIND_DICT_REF => match &stored.dicts[i] {
                StoredDict::Str(d) => ColumnData::Dict {
                    ids: decode_dict_ref(blob, rows, d.len(), what)?,
                    dict: d.clone(),
                },
                _ => {
                    return Err(serr(format!(
                        "{what}: column {i} references a string dictionary the manifest lacks"
                    )))
                }
            },
            KIND_INT_DICT_REF => match &stored.dicts[i] {
                StoredDict::Int(d) => ColumnData::DictInt {
                    ids: decode_dict_ref(blob, rows, d.len(), what)?,
                    dict: d.clone(),
                },
                _ => {
                    return Err(serr(format!(
                        "{what}: column {i} references an int dictionary the manifest lacks"
                    )))
                }
            },
            other => return Err(serr(format!("{what}: unknown column kind {other}"))),
        };
        if col.data_type() != stored.schema.field(i).data_type {
            return Err(serr(format!(
                "{what}: column {i} decoded as {:?}, schema wants {:?}",
                col.data_type(),
                stored.schema.field(i).data_type
            )));
        }
        out.push(col);
    }
    if !c.done() {
        return Err(serr(format!(
            "{what}: {} trailing payload bytes after the last column",
            payload.len() - c.pos
        )));
    }
    RecordBatch::new(stored.schema.clone(), out)
        .map_err(|e| serr(format!("{what}: malformed decoded batch: {e}")))
}

/// Parses a `CIPT` manifest into `(parts, dicts)`.
fn decode_manifest(bytes: &[u8], arity: usize, what: &str) -> Result<(usize, Vec<StoredDict>)> {
    let (cols, parts, payload) = open_container(bytes, MANIFEST_MAGIC, what)?;
    if cols as usize != arity {
        return Err(serr(format!(
            "{what}: manifest covers {cols} columns, schema has {arity}"
        )));
    }
    let mut c = TierCursor {
        bytes: payload,
        pos: 0,
        what,
    };
    let mut dicts = Vec::with_capacity(arity);
    for i in 0..arity {
        match c.u8()? {
            0 => dicts.push(StoredDict::None),
            1 => {
                let n = c.u32()? as usize;
                let mut d = Dictionary::new();
                for _ in 0..n {
                    let len = c.u32()? as usize;
                    let raw = c.take(len)?;
                    let s = std::str::from_utf8(raw)
                        .map_err(|_| serr(format!("{what}: non-UTF-8 dictionary entry")))?;
                    d.intern(s);
                }
                if d.len() != n {
                    return Err(serr(format!(
                        "{what}: column {i} dictionary holds duplicate entries"
                    )));
                }
                dicts.push(StoredDict::Str(Arc::new(d)));
            }
            2 => {
                let n = c.u32()? as usize;
                let mut d = IntDict::new();
                for _ in 0..n {
                    let v = c.i64()?;
                    d.intern(v);
                }
                if d.len() != n {
                    return Err(serr(format!(
                        "{what}: column {i} int dictionary holds duplicate entries"
                    )));
                }
                dicts.push(StoredDict::Int(Arc::new(d)));
            }
            other => return Err(serr(format!("{what}: unknown dictionary kind {other}"))),
        }
    }
    if !c.done() {
        return Err(serr(format!(
            "{what}: trailing bytes after the last dictionary"
        )));
    }
    Ok((parts as usize, dicts))
}

// ---------------------------------------------------------------------------
// ObjectStoreDir
// ---------------------------------------------------------------------------

static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dir(prefix: &str) -> Result<PathBuf> {
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("{prefix}-{}-{seq}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| serr(format!("creating {}: {e}", dir.display())))?;
    Ok(dir)
}

/// The simulated object store made physical: a directory of per-table
/// subdirectories, each holding `part-N.cipf` partition files plus a
/// `table.cipt` manifest. Registration writes the files; reads go through
/// [`ObjectStoreDir::read_partition`], which verifies checksums and decodes
/// pages — no resident decoded tables on this path.
#[derive(Debug)]
pub struct ObjectStoreDir {
    root: PathBuf,
    owns_root: bool,
    tables: Mutex<HashMap<TableId, Arc<StoredTable>>>,
}

impl ObjectStoreDir {
    /// Opens (creating if needed) a store rooted at `path`.
    pub fn at(path: impl Into<PathBuf>) -> Result<ObjectStoreDir> {
        let root = path.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| serr(format!("creating {}: {e}", root.display())))?;
        Ok(ObjectStoreDir {
            root,
            owns_root: false,
            tables: Mutex::new(HashMap::new()),
        })
    }

    /// A store under a fresh process-unique temp directory, removed on drop.
    pub fn temp() -> Result<ObjectStoreDir> {
        let root = temp_dir("ci-objstore")?;
        Ok(ObjectStoreDir {
            root,
            owns_root: true,
            tables: Mutex::new(HashMap::new()),
        })
    }

    /// Root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn table_dir(&self, id: TableId) -> PathBuf {
        self.root.join(format!("t{}", id.index()))
    }

    /// Path of one partition file (exists only after `ensure_table`).
    pub fn partition_path(&self, id: TableId, part: usize) -> PathBuf {
        self.table_dir(id).join(format!("part-{part}.cipf"))
    }

    /// The registered metadata for `id`, if any.
    pub fn stored(&self, id: TableId) -> Option<Arc<StoredTable>> {
        self.tables.lock().unwrap().get(&id).cloned()
    }

    /// Writes (or re-writes, if the table object changed identity) every
    /// partition of `table` as a `CIPF` file plus the manifest. Idempotent
    /// per `Arc` identity: repeated calls with the same `Arc<Table>` only
    /// pay a pointer compare.
    pub fn ensure_table(&self, table: &Arc<Table>) -> Result<Arc<StoredTable>> {
        let ident = Arc::as_ptr(table) as usize;
        let mut tables = self.tables.lock().unwrap();
        if let Some(st) = tables.get(&table.id) {
            if st.ident == ident {
                return Ok(st.clone());
            }
        }
        let dicts: Vec<StoredDict> = (0..table.schema.arity())
            .map(|i| {
                if let Some(d) = table.column_dictionary(i) {
                    StoredDict::Str(d.clone())
                } else if let Some(d) = table.column_int_dictionary(i) {
                    StoredDict::Int(d.clone())
                } else {
                    StoredDict::None
                }
            })
            .collect();
        let dir = self.table_dir(table.id);
        std::fs::create_dir_all(&dir)
            .map_err(|e| serr(format!("creating {}: {e}", dir.display())))?;
        for (pi, part) in table.partitions.iter().enumerate() {
            let bytes = encode_partition(&part.batch, &dicts)?;
            let path = dir.join(format!("part-{pi}.cipf"));
            std::fs::write(&path, &bytes)
                .map_err(|e| serr(format!("writing {}: {e}", path.display())))?;
        }
        let manifest = encode_manifest(&dicts, table.partitions.len());
        let mpath = dir.join("table.cipt");
        std::fs::write(&mpath, &manifest)
            .map_err(|e| serr(format!("writing {}: {e}", mpath.display())))?;
        let st = Arc::new(StoredTable {
            dir,
            schema: table.schema.clone(),
            parts: table.partitions.len(),
            dicts,
            ident,
        });
        tables.insert(table.id, st.clone());
        Ok(st)
    }

    /// Cold-opens a table already on disk from its manifest alone — the
    /// self-description path: no source `Table` needed.
    pub fn attach(&self, id: TableId, schema: SchemaRef) -> Result<Arc<StoredTable>> {
        let dir = self.table_dir(id);
        let mpath = dir.join("table.cipt");
        let bytes =
            std::fs::read(&mpath).map_err(|e| serr(format!("reading {}: {e}", mpath.display())))?;
        let what = format!("{}", mpath.display());
        let (parts, dicts) = decode_manifest(&bytes, schema.arity(), &what)?;
        let st = Arc::new(StoredTable {
            dir,
            schema,
            parts,
            dicts,
            ident: 0,
        });
        self.tables.lock().unwrap().insert(id, st.clone());
        Ok(st)
    }

    /// Reads and decodes one partition file, verifying its checksum.
    pub fn read_partition(&self, id: TableId, part: usize) -> Result<RecordBatch> {
        let stored = self
            .stored(id)
            .ok_or_else(|| serr(format!("table {id} is not registered in the page store")))?;
        let path = self.partition_path(id, part);
        let bytes =
            std::fs::read(&path).map_err(|e| serr(format!("reading {}: {e}", path.display())))?;
        decode_partition(&bytes, &stored, &format!("{}", path.display()))
    }
}

impl Drop for ObjectStoreDir {
    fn drop(&mut self) {
        if self.owns_root {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }
}

// ---------------------------------------------------------------------------
// TierStore: physical residency
// ---------------------------------------------------------------------------

/// Which physical layer served a [`TierStore`] read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedFrom {
    /// In-memory decoded-batch cache.
    Mem,
    /// Local-SSD copy of the encoded file.
    Ssd,
    /// The backing object store directory.
    Object,
}

/// Physical tier residency: a memory cache of decoded batches and a
/// local-SSD directory of encoded file copies in front of an
/// [`ObjectStoreDir`]. Placement is *driven from outside* (by the
/// deterministic cache simulator in `ci-cloud`); this type only moves
/// bytes, so reads are correct no matter which tier serves them.
#[derive(Debug)]
pub struct TierStore {
    store: Arc<ObjectStoreDir>,
    ssd_root: PathBuf,
    owns_ssd: bool,
    mem: Mutex<HashMap<(TableId, u32), RecordBatch>>,
}

impl TierStore {
    /// A tier stack over `store` with a fresh temp SSD directory.
    pub fn new(store: Arc<ObjectStoreDir>) -> Result<TierStore> {
        let ssd_root = temp_dir("ci-ssdcache")?;
        Ok(TierStore {
            store,
            ssd_root,
            owns_ssd: true,
            mem: Mutex::new(HashMap::new()),
        })
    }

    /// The backing object store.
    pub fn object_store(&self) -> &Arc<ObjectStoreDir> {
        &self.store
    }

    fn ssd_path(&self, id: TableId, part: u32) -> PathBuf {
        self.ssd_root.join(format!("t{}-p{part}.cipf", id.index()))
    }

    /// Decodes the partition once and keeps the batch in the memory tier.
    pub fn promote_mem(&self, id: TableId, part: u32) -> Result<()> {
        let batch = self.store.read_partition(id, part as usize)?;
        self.mem.lock().unwrap().insert((id, part), batch);
        Ok(())
    }

    /// Copies the encoded partition file into the SSD cache directory.
    pub fn promote_ssd(&self, id: TableId, part: u32) -> Result<()> {
        let src = self.store.partition_path(id, part as usize);
        let dst = self.ssd_path(id, part);
        std::fs::copy(&src, &dst)
            .map(|_| ())
            .map_err(|e| serr(format!("copying {} to ssd cache: {e}", src.display())))
    }

    /// Drops a partition from the memory tier (no-op if absent).
    pub fn evict_mem(&self, id: TableId, part: u32) {
        self.mem.lock().unwrap().remove(&(id, part));
    }

    /// Drops a partition's SSD copy (no-op if absent).
    pub fn evict_ssd(&self, id: TableId, part: u32) {
        let _ = std::fs::remove_file(self.ssd_path(id, part));
    }

    /// Reads one partition from the highest-resident tier. All tiers hold
    /// byte-identical content, so the serving layer never affects values —
    /// only where the bytes physically came from.
    pub fn read_partition(&self, id: TableId, part: usize) -> Result<(RecordBatch, ServedFrom)> {
        let key = (id, part as u32);
        if let Some(b) = self.mem.lock().unwrap().get(&key) {
            return Ok((b.clone(), ServedFrom::Mem));
        }
        let ssd = self.ssd_path(id, key.1);
        if ssd.exists() {
            let stored = self
                .store
                .stored(id)
                .ok_or_else(|| serr(format!("table {id} is not registered in the page store")))?;
            let bytes =
                std::fs::read(&ssd).map_err(|e| serr(format!("reading {}: {e}", ssd.display())))?;
            let batch = decode_partition(&bytes, &stored, &format!("{}", ssd.display()))?;
            return Ok((batch, ServedFrom::Ssd));
        }
        Ok((self.store.read_partition(id, part)?, ServedFrom::Object))
    }

    /// Number of partitions resident in the memory tier.
    pub fn mem_entries(&self) -> usize {
        self.mem.lock().unwrap().len()
    }
}

impl Drop for TierStore {
    fn drop(&mut self) {
        if self.owns_ssd {
            let _ = std::fs::remove_dir_all(&self.ssd_root);
        }
    }
}

// ---------------------------------------------------------------------------
// PageSource trait
// ---------------------------------------------------------------------------

/// Where the execution engine's scans get partition batches. The in-memory
/// path, plain file reads, and the tier stack all implement it, so the
/// engine can switch sources without touching operator code — and the
/// equivalence tests can demand bit-identical results across all three.
pub trait PageSource: fmt::Debug + Send + Sync {
    /// Makes sure `table`'s pages exist in this source (writes files on
    /// first call for disk-backed sources; no-op for memory).
    fn ensure_table(&self, table: &Arc<Table>) -> Result<()>;

    /// Fetches one whole partition as a dense batch.
    fn read_partition(&self, table: TableId, part: usize) -> Result<RecordBatch>;

    /// Which mode this source implements.
    fn mode(&self) -> PageSourceMode;
}

/// Serves partitions from resident `Arc<Table>`s — the seed fetch path
/// expressed through the trait.
#[derive(Debug, Default)]
pub struct MemSource {
    tables: Mutex<HashMap<TableId, Arc<Table>>>,
}

impl MemSource {
    /// An empty source; tables register through `ensure_table`.
    pub fn new() -> MemSource {
        MemSource::default()
    }
}

impl PageSource for MemSource {
    fn ensure_table(&self, table: &Arc<Table>) -> Result<()> {
        self.tables.lock().unwrap().insert(table.id, table.clone());
        Ok(())
    }

    fn read_partition(&self, table: TableId, part: usize) -> Result<RecordBatch> {
        let tables = self.tables.lock().unwrap();
        let t = tables
            .get(&table)
            .ok_or_else(|| serr(format!("table {table} is not registered in the page store")))?;
        let p = t
            .partitions
            .get(part)
            .ok_or_else(|| serr(format!("table {table} has no partition {part}")))?;
        Ok(p.batch.clone())
    }

    fn mode(&self) -> PageSourceMode {
        PageSourceMode::Mem
    }
}

/// Reads every partition straight from its `CIPF` file.
#[derive(Debug)]
pub struct DiskSource {
    store: Arc<ObjectStoreDir>,
}

impl DiskSource {
    /// A source over the given store.
    pub fn new(store: Arc<ObjectStoreDir>) -> DiskSource {
        DiskSource { store }
    }
}

impl PageSource for DiskSource {
    fn ensure_table(&self, table: &Arc<Table>) -> Result<()> {
        self.store.ensure_table(table).map(|_| ())
    }

    fn read_partition(&self, table: TableId, part: usize) -> Result<RecordBatch> {
        self.store.read_partition(table, part)
    }

    fn mode(&self) -> PageSourceMode {
        PageSourceMode::Disk
    }
}

/// Reads through the physical tier stack (memory, then SSD, then object).
#[derive(Debug)]
pub struct TieredSource {
    tiers: Arc<TierStore>,
}

impl TieredSource {
    /// A source over the given tier stack.
    pub fn new(tiers: Arc<TierStore>) -> TieredSource {
        TieredSource { tiers }
    }

    /// The underlying tier stack (for applying placement decisions).
    pub fn tiers(&self) -> &Arc<TierStore> {
        &self.tiers
    }
}

impl PageSource for TieredSource {
    fn ensure_table(&self, table: &Arc<Table>) -> Result<()> {
        self.tiers.object_store().ensure_table(table).map(|_| ())
    }

    fn read_partition(&self, table: TableId, part: usize) -> Result<RecordBatch> {
        self.tiers.read_partition(table, part).map(|(b, _)| b)
    }

    fn mode(&self) -> PageSourceMode {
        PageSourceMode::Tiered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::table::TableBuilder;

    fn sample_table(id: u32) -> Arc<Table> {
        let schema: SchemaRef = Arc::new(Schema::of(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
            Field::new("tag", DataType::Utf8),
            Field::new("code", DataType::Int64),
            Field::new("ok", DataType::Bool),
        ]));
        let n = 100i64;
        let batch = RecordBatch::new(
            schema.clone(),
            vec![
                ColumnData::Int64((0..n).collect()),
                ColumnData::Float64((0..n).map(|i| i as f64 * 0.5).collect()),
                ColumnData::Utf8((0..n).map(|i| format!("tag{}", i % 3)).collect()),
                ColumnData::Int64((0..n).map(|i| i % 4).collect()),
                ColumnData::Bool((0..n).map(|i| i % 2 == 0).collect()),
            ],
        )
        .unwrap();
        let mut b = TableBuilder::new(TableId::new(id), "sample", schema, 16).unwrap();
        b.append(batch).unwrap();
        Arc::new(b.finish().unwrap().dict_encoded().dict_encoded_ints(16))
    }

    #[test]
    fn round_trip_is_exact_and_pins_dictionaries() {
        let table = sample_table(1);
        let store = ObjectStoreDir::temp().unwrap();
        store.ensure_table(&table).unwrap();
        for (pi, part) in table.partitions.iter().enumerate() {
            let got = store.read_partition(table.id, pi).unwrap();
            assert_eq!(got, part.batch, "partition {pi}");
            // Dict columns must attach the very same Arc the table shares.
            let (_, orig_dict) = part.batch.column(2).as_dict().unwrap();
            let (_, got_dict) = got.column(2).as_dict().unwrap();
            assert!(Arc::ptr_eq(orig_dict, got_dict));
            let (_, oi) = part.batch.column(3).as_int_dict().unwrap();
            let (_, gi) = got.column(3).as_int_dict().unwrap();
            assert!(Arc::ptr_eq(oi, gi));
        }
    }

    #[test]
    fn ensure_is_idempotent_by_identity() {
        let table = sample_table(2);
        let store = ObjectStoreDir::temp().unwrap();
        let a = store.ensure_table(&table).unwrap();
        let b = store.ensure_table(&table).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn cold_open_from_manifest_reproduces_values() {
        let table = sample_table(3);
        let store = ObjectStoreDir::temp().unwrap();
        store.ensure_table(&table).unwrap();
        // A second store over the same directory, knowing only the schema.
        let cold = ObjectStoreDir::at(store.root()).unwrap();
        cold.attach(table.id, table.schema.clone()).unwrap();
        let got = cold.read_partition(table.id, 0).unwrap();
        assert_eq!(got, table.partitions[0].batch);
    }

    #[test]
    fn corrupted_bytes_fail_typed() {
        let table = sample_table(4);
        let store = ObjectStoreDir::temp().unwrap();
        store.ensure_table(&table).unwrap();
        let path = store.partition_path(table.id, 0);
        let good = std::fs::read(&path).unwrap();
        // Flip one payload byte: the checksum must catch it.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        match store.read_partition(table.id, 0) {
            Err(CiError::Storage(_)) => {}
            other => panic!("want Storage error, got {other:?}"),
        }
        std::fs::write(&path, &good).unwrap();
        assert!(store.read_partition(table.id, 0).is_ok());
    }

    #[test]
    fn tier_store_serves_identical_bytes_from_every_layer() {
        let table = sample_table(5);
        let store = Arc::new(ObjectStoreDir::temp().unwrap());
        store.ensure_table(&table).unwrap();
        let tiers = TierStore::new(store).unwrap();
        let (from_object, s0) = tiers.read_partition(table.id, 0).unwrap();
        assert_eq!(s0, ServedFrom::Object);
        tiers.promote_ssd(table.id, 0).unwrap();
        let (from_ssd, s1) = tiers.read_partition(table.id, 0).unwrap();
        assert_eq!(s1, ServedFrom::Ssd);
        tiers.promote_mem(table.id, 0).unwrap();
        let (from_mem, s2) = tiers.read_partition(table.id, 0).unwrap();
        assert_eq!(s2, ServedFrom::Mem);
        assert_eq!(from_object, from_ssd);
        assert_eq!(from_object, from_mem);
        tiers.evict_mem(table.id, 0);
        tiers.evict_ssd(table.id, 0);
        let (_, s3) = tiers.read_partition(table.id, 0).unwrap();
        assert_eq!(s3, ServedFrom::Object);
    }

    #[test]
    fn mode_parses_env_strings() {
        assert_eq!(PageSourceMode::parse("mem"), Some(PageSourceMode::Mem));
        assert_eq!(PageSourceMode::parse("DISK"), Some(PageSourceMode::Disk));
        assert_eq!(
            PageSourceMode::parse("tiered"),
            Some(PageSourceMode::Tiered)
        );
        assert_eq!(PageSourceMode::parse("bogus"), None);
    }
}
