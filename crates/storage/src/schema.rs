//! Table schemas.

use std::fmt;
use std::sync::Arc;

use ci_types::{CiError, Result};

use crate::value::DataType;

/// One named, typed column.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Column name (case-sensitive after normalization by the parser).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Field {
        Field {
            name: name.into(),
            data_type,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type)
    }
}

/// An ordered list of fields. Shared via `Arc` because every batch of a
/// table points at the same schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

/// Shared schema handle.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Builds a schema; duplicate column names are rejected.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(CiError::Catalog(format!(
                    "duplicate column name '{}'",
                    f.name
                )));
            }
        }
        Ok(Schema { fields })
    }

    /// Builds a schema, panicking on duplicates (for static test fixtures).
    pub fn of(fields: Vec<Field>) -> Schema {
        Schema::new(fields).expect("valid schema")
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.fields.len()
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| CiError::Catalog(format!("unknown column '{name}'")))
    }

    /// Field at an index.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Estimated encoded row width in bytes.
    pub fn row_width_estimate(&self) -> usize {
        self.fields
            .iter()
            .map(|f| f.data_type.width_estimate())
            .sum()
    }

    /// A new schema that projects the given column indices, in order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            fields: indices.iter().map(|&i| self.fields[i].clone()).collect(),
        }
    }

    /// Concatenates two schemas (join output). Columns from `other` whose
    /// names collide get a disambiguating prefix.
    pub fn join(&self, other: &Schema, other_prefix: &str) -> Schema {
        let mut fields = self.fields.clone();
        for f in &other.fields {
            let name = if fields.iter().any(|g| g.name == f.name) {
                format!("{other_prefix}.{}", f.name)
            } else {
                f.name.clone()
            };
            fields.push(Field::new(name, f.data_type));
        }
        Schema { fields }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::of(vec![
            Field::new("id", DataType::Int64),
            Field::new("price", DataType::Float64),
            Field::new("name", DataType::Utf8),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("price").unwrap(), 1);
        assert!(s.index_of("missing").is_err());
        assert_eq!(s.arity(), 3);
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Utf8),
        ]);
        assert!(r.is_err());
    }

    #[test]
    fn projection_keeps_order() {
        let s = sample().project(&[2, 0]);
        assert_eq!(s.field(0).name, "name");
        assert_eq!(s.field(1).name, "id");
    }

    #[test]
    fn join_disambiguates_collisions() {
        let left = sample();
        let right = Schema::of(vec![
            Field::new("id", DataType::Int64),
            Field::new("qty", DataType::Int64),
        ]);
        let joined = left.join(&right, "r");
        assert_eq!(joined.arity(), 5);
        assert_eq!(joined.field(3).name, "r.id");
        assert_eq!(joined.field(4).name, "qty");
    }

    #[test]
    fn row_width() {
        assert_eq!(sample().row_width_estimate(), 8 + 8 + 16);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(sample().to_string(), "(id INT, price DOUBLE, name VARCHAR)");
    }
}
