//! Record batches: the unit of data flowing between operators.

use std::sync::Arc;

use ci_types::{CiError, Result};

use crate::column::ColumnData;
use crate::schema::SchemaRef;
use crate::value::Value;

/// A horizontal chunk of a table: one [`ColumnData`] per schema field, all
/// the same length. Morsels handed to the execution engine are `RecordBatch`
/// slices.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    schema: SchemaRef,
    columns: Vec<ColumnData>,
    rows: usize,
}

impl RecordBatch {
    /// Builds a batch, validating column count, types, and equal lengths.
    pub fn new(schema: SchemaRef, columns: Vec<ColumnData>) -> Result<RecordBatch> {
        if columns.len() != schema.arity() {
            return Err(CiError::Exec(format!(
                "batch has {} columns, schema expects {}",
                columns.len(),
                schema.arity()
            )));
        }
        let rows = columns.first().map_or(0, ColumnData::len);
        for (i, c) in columns.iter().enumerate() {
            if c.len() != rows {
                return Err(CiError::Exec(format!(
                    "column {i} has {} rows, expected {rows}",
                    c.len()
                )));
            }
            if c.data_type() != schema.field(i).data_type {
                return Err(CiError::Exec(format!(
                    "column {i} is {}, schema field '{}' is {}",
                    c.data_type(),
                    schema.field(i).name,
                    schema.field(i).data_type
                )));
            }
        }
        Ok(RecordBatch {
            schema,
            columns,
            rows,
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: SchemaRef) -> RecordBatch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnData::empty(f.data_type))
            .collect();
        RecordBatch {
            schema,
            columns,
            rows: 0,
        }
    }

    /// The batch's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// `true` when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The columns in schema order.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// One column by index.
    pub fn column(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    /// One full row as values (clones strings); for tests and result display.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Exact encoded payload size in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(ColumnData::byte_size).sum()
    }

    /// New batch keeping rows where `keep` is true.
    pub fn filter(&self, keep: &[bool]) -> Result<RecordBatch> {
        if keep.len() != self.rows {
            return Err(CiError::Exec(format!(
                "filter mask has {} entries for {} rows",
                keep.len(),
                self.rows
            )));
        }
        let columns: Vec<ColumnData> = self.columns.iter().map(|c| c.filter(keep)).collect();
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// New batch gathering the given row indices.
    pub fn take(&self, indices: &[usize]) -> Result<RecordBatch> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.rows) {
            return Err(CiError::Exec(format!(
                "take index {bad} out of bounds for {} rows",
                self.rows
            )));
        }
        let columns: Vec<ColumnData> = self.columns.iter().map(|c| c.take(indices)).collect();
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// New batch projecting columns by index; schema is re-derived.
    pub fn project(&self, indices: &[usize]) -> Result<RecordBatch> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.columns.len()) {
            return Err(CiError::Exec(format!(
                "project index {bad} out of bounds for {} columns",
                self.columns.len()
            )));
        }
        let schema = Arc::new(self.schema.project(indices));
        let columns: Vec<ColumnData> = indices.iter().map(|&i| self.columns[i].clone()).collect();
        RecordBatch::new(schema, columns)
    }

    /// Contiguous row slice `[offset, offset+len)`.
    pub fn slice(&self, offset: usize, len: usize) -> Result<RecordBatch> {
        if offset + len > self.rows {
            return Err(CiError::Exec(format!(
                "slice [{offset}, {}) out of bounds for {} rows",
                offset + len,
                self.rows
            )));
        }
        let columns: Vec<ColumnData> = self.columns.iter().map(|c| c.slice(offset, len)).collect();
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// Concatenates batches sharing one schema. Errors on empty input or
    /// schema mismatch.
    pub fn concat(batches: &[RecordBatch]) -> Result<RecordBatch> {
        let first = batches
            .first()
            .ok_or_else(|| CiError::Exec("concat of zero batches".into()))?;
        let mut columns: Vec<ColumnData> = first
            .schema
            .fields()
            .iter()
            .map(|f| ColumnData::empty(f.data_type))
            .collect();
        for b in batches {
            if b.schema.as_ref() != first.schema.as_ref() {
                return Err(CiError::Exec("concat schema mismatch".into()));
            }
            for (dst, src) in columns.iter_mut().zip(&b.columns) {
                dst.extend_from(src)?;
            }
        }
        RecordBatch::new(first.schema.clone(), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn schema() -> SchemaRef {
        Arc::new(Schema::of(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]))
    }

    fn sample() -> RecordBatch {
        RecordBatch::new(
            schema(),
            vec![
                ColumnData::Int64(vec![1, 2, 3]),
                ColumnData::Utf8(vec!["a".into(), "b".into(), "c".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        // Wrong arity.
        assert!(RecordBatch::new(schema(), vec![ColumnData::Int64(vec![1])]).is_err());
        // Ragged lengths.
        assert!(RecordBatch::new(
            schema(),
            vec![
                ColumnData::Int64(vec![1, 2]),
                ColumnData::Utf8(vec!["a".into()])
            ]
        )
        .is_err());
        // Type mismatch.
        assert!(RecordBatch::new(
            schema(),
            vec![
                ColumnData::Bool(vec![true]),
                ColumnData::Utf8(vec!["a".into()])
            ]
        )
        .is_err());
    }

    #[test]
    fn filter_take_slice() {
        let b = sample();
        let f = b.filter(&[true, false, true]).unwrap();
        assert_eq!(f.rows(), 2);
        assert_eq!(f.row(1), vec![Value::Int(3), Value::from("c")]);

        let t = b.take(&[2, 2, 0]).unwrap();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.row(0), vec![Value::Int(3), Value::from("c")]);
        assert!(b.take(&[9]).is_err());

        let s = b.slice(1, 2).unwrap();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), vec![Value::Int(2), Value::from("b")]);
        assert!(b.slice(2, 5).is_err());
    }

    #[test]
    fn filter_mask_length_checked() {
        assert!(sample().filter(&[true]).is_err());
    }

    #[test]
    fn project_rederives_schema() {
        let p = sample().project(&[1]).unwrap();
        assert_eq!(p.schema().arity(), 1);
        assert_eq!(p.schema().field(0).name, "name");
        assert!(sample().project(&[5]).is_err());
    }

    #[test]
    fn concat_appends_rows() {
        let b = sample();
        let c = RecordBatch::concat(&[b.clone(), b.clone()]).unwrap();
        assert_eq!(c.rows(), 6);
        assert_eq!(c.row(3), vec![Value::Int(1), Value::from("a")]);
        assert!(RecordBatch::concat(&[]).is_err());
    }

    #[test]
    fn empty_batch() {
        let e = RecordBatch::empty(schema());
        assert!(e.is_empty());
        assert_eq!(e.byte_size(), 0);
    }

    #[test]
    fn byte_size_counts_payload() {
        // ids: 3*8 = 24; names: (1+4)*3 = 15.
        assert_eq!(sample().byte_size(), 24 + 15);
    }
}
