//! Record batches: the unit of data flowing between operators.

use std::sync::Arc;

use ci_types::{CiError, Result};

use crate::column::ColumnData;
use crate::schema::SchemaRef;
use crate::selection::SelectionVector;
use crate::value::Value;

/// When a filter leaves fewer than this fraction of the physical rows
/// selected, [`RecordBatch::filter`] compacts eagerly instead of carrying
/// the sparse selection further: a near-empty selection would otherwise pin
/// large physical columns (and pay selection-iteration overhead) through the
/// rest of a long pipeline for a handful of rows.
pub const COMPACT_DENSITY: f64 = 1.0 / 16.0;

/// A horizontal chunk of a table: one [`ColumnData`] per schema field, all
/// the same length. Columns are `Arc`-shared, so cloning a batch, projecting
/// columns, or re-schematizing a partition's payload never copies data.
///
/// Filtering is **late-materializing**: [`RecordBatch::filter`] attaches a
/// [`SelectionVector`] naming the surviving physical rows and shares every
/// column untouched, and filtering an already-selected batch just composes
/// selections — O(selected), no per-row column copies. All logical accessors
/// ([`RecordBatch::rows`], [`RecordBatch::row`], [`RecordBatch::byte_size`],
/// equality) read through the selection, so a selected batch is
/// indistinguishable from its eagerly-filtered equivalent. Rows are
/// physically moved only by [`RecordBatch::compacted`] (pipeline sinks:
/// hash-table build, sort buffer, exchange, final results), by
/// [`RecordBatch::take`], or when density drops below [`COMPACT_DENSITY`].
#[derive(Debug, Clone)]
pub struct RecordBatch {
    schema: SchemaRef,
    columns: Vec<Arc<ColumnData>>,
    /// Physical rows held by each column.
    rows: usize,
    /// Deferred filter: the logical view is the selected subsequence.
    selection: Option<Arc<SelectionVector>>,
}

impl RecordBatch {
    /// Builds a batch, validating column count, types, and equal lengths.
    pub fn new(schema: SchemaRef, columns: Vec<ColumnData>) -> Result<RecordBatch> {
        RecordBatch::from_arcs(schema, columns.into_iter().map(Arc::new).collect())
    }

    /// Builds a batch from already-shared columns (zero-copy: the batch
    /// holds references, not clones). Validation is identical to
    /// [`RecordBatch::new`].
    pub fn from_arcs(schema: SchemaRef, columns: Vec<Arc<ColumnData>>) -> Result<RecordBatch> {
        if columns.len() != schema.arity() {
            return Err(CiError::Exec(format!(
                "batch has {} columns, schema expects {}",
                columns.len(),
                schema.arity()
            )));
        }
        let rows = columns.first().map_or(0, |c| c.len());
        for (i, c) in columns.iter().enumerate() {
            if c.len() != rows {
                return Err(CiError::Exec(format!(
                    "column {i} has {} rows, expected {rows}",
                    c.len()
                )));
            }
            if c.data_type() != schema.field(i).data_type {
                return Err(CiError::Exec(format!(
                    "column {i} is {}, schema field '{}' is {}",
                    c.data_type(),
                    schema.field(i).name,
                    schema.field(i).data_type
                )));
            }
        }
        Ok(RecordBatch {
            schema,
            columns,
            rows,
            selection: None,
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: SchemaRef) -> RecordBatch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Arc::new(ColumnData::empty(f.data_type)))
            .collect();
        RecordBatch {
            schema,
            columns,
            rows: 0,
            selection: None,
        }
    }

    /// The batch's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of *logical* rows: the selected count when a selection is
    /// attached, the physical count otherwise.
    pub fn rows(&self) -> usize {
        self.selection.as_ref().map_or(self.rows, |s| s.len())
    }

    /// Number of physical rows each column holds (`>= rows()`).
    pub fn physical_rows(&self) -> usize {
        self.rows
    }

    /// The deferred filter, when one is attached.
    pub fn selection(&self) -> Option<&SelectionVector> {
        self.selection.as_deref()
    }

    /// `true` when the batch holds no logical rows.
    pub fn is_empty(&self) -> bool {
        self.rows() == 0
    }

    /// The shared *physical* columns in schema order; when a selection is
    /// attached, readers must go through it (or [`RecordBatch::compacted`]).
    pub fn columns(&self) -> &[Arc<ColumnData>] {
        &self.columns
    }

    /// One physical column by index.
    pub fn column(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    /// One column's shared handle by index (cheap to clone).
    pub fn column_arc(&self, i: usize) -> &Arc<ColumnData> {
        &self.columns[i]
    }

    /// One full logical row as values (clones strings); for tests and
    /// result display.
    pub fn row(&self, i: usize) -> Vec<Value> {
        let phys = self.selection.as_ref().map_or(i, |s| s.physical(i));
        self.columns.iter().map(|c| c.value(phys)).collect()
    }

    /// Exact encoded payload size in bytes of the *logical* rows, so cost
    /// and billing accounting are identical whether a filter was
    /// materialized eagerly or deferred behind a selection.
    pub fn byte_size(&self) -> usize {
        match &self.selection {
            None => self.columns.iter().map(|c| c.byte_size()).sum(),
            Some(sel) => self.columns.iter().map(|c| c.byte_size_selected(sel)).sum(),
        }
    }

    /// The physical view: every column shared, no selection. Operators that
    /// iterate rows through [`RecordBatch::selection`] themselves (key
    /// encoders, accumulators) evaluate over this view to avoid gathers.
    pub fn unselected(&self) -> RecordBatch {
        RecordBatch {
            schema: self.schema.clone(),
            columns: self.columns.clone(),
            rows: self.rows,
            selection: None,
        }
    }

    /// Materializes the selection (if any) into dense columns. This is the
    /// single point where deferred filters physically move rows; pipeline
    /// sinks call it (directly or via [`RecordBatch::concat`] /
    /// [`RecordBatch::take`]). Dense batches return a zero-copy clone.
    pub fn compacted(&self) -> RecordBatch {
        let Some(sel) = &self.selection else {
            return self.clone();
        };
        let columns: Vec<Arc<ColumnData>> = self
            .columns
            .iter()
            .map(|c| Arc::new(c.gather(sel)))
            .collect();
        RecordBatch {
            schema: self.schema.clone(),
            columns,
            rows: sel.len(),
            selection: None,
        }
    }

    /// Attaches a selection over the current *logical* view (composing with
    /// any existing selection). Errors unless `sel.total()` equals
    /// [`RecordBatch::rows`]. Shares every column; applies the
    /// [`COMPACT_DENSITY`] heuristic like [`RecordBatch::filter`].
    pub fn select(&self, sel: SelectionVector) -> Result<RecordBatch> {
        if sel.total() != self.rows() {
            return Err(CiError::Exec(format!(
                "selection covers {} rows, batch has {}",
                sel.total(),
                self.rows()
            )));
        }
        let composed = match &self.selection {
            None => sel,
            Some(cur) => cur.compose(&sel)?,
        };
        Ok(self.with_composed_selection(composed))
    }

    /// Wraps a selection already expressed over *physical* rows, dropping it
    /// when full and compacting when sparse.
    fn with_composed_selection(&self, sel: SelectionVector) -> RecordBatch {
        if sel.is_full() {
            return self.unselected();
        }
        let out = RecordBatch {
            schema: self.schema.clone(),
            columns: self.columns.clone(),
            rows: self.rows,
            selection: Some(Arc::new(sel)),
        };
        if out.selection.as_ref().expect("just set").density() < COMPACT_DENSITY {
            out.compacted()
        } else {
            out
        }
    }

    /// New batch keeping logical rows where `keep` is true. Zero column
    /// copies: composes the mask into the batch's selection (O(selected)),
    /// unless density falls below [`COMPACT_DENSITY`], in which case the
    /// survivors are compacted immediately.
    pub fn filter(&self, keep: &[bool]) -> Result<RecordBatch> {
        if keep.len() != self.rows() {
            return Err(CiError::Exec(format!(
                "filter mask has {} entries for {} rows",
                keep.len(),
                self.rows()
            )));
        }
        let sel = match &self.selection {
            None => SelectionVector::from_mask(keep),
            Some(cur) => cur.refine(keep)?,
        };
        Ok(self.with_composed_selection(sel))
    }

    /// New batch gathering the given *logical* row indices (indices may
    /// repeat and reorder, so the output is always dense). On a dense batch,
    /// bounds are validated inline during the first column's gather (single
    /// pass, erroring on the first bad index) and the remaining columns
    /// gather unchecked; on a selected batch, the indices are validated and
    /// mapped to physical rows up front, then every column gathers
    /// unchecked.
    pub fn take(&self, indices: &[usize]) -> Result<RecordBatch> {
        let rows = self.rows();
        if let Some(sel) = &self.selection {
            // Map logical indices to physical rows, then gather densely.
            if let Some(&bad) = indices.iter().find(|&&i| i >= rows) {
                return Err(CiError::Exec(format!(
                    "take index {bad} out of bounds for {rows} rows"
                )));
            }
            let phys: Vec<usize> = indices.iter().map(|&i| sel.physical(i)).collect();
            let columns: Vec<ColumnData> = self.columns.iter().map(|c| c.take(&phys)).collect();
            return RecordBatch::new(self.schema.clone(), columns);
        }
        let Some((first, rest)) = self.columns.split_first() else {
            // Zero-column batch: nothing to gather, but still validate.
            if let Some(&bad) = indices.iter().find(|&&i| i >= rows) {
                return Err(CiError::Exec(format!(
                    "take index {bad} out of bounds for {rows} rows"
                )));
            }
            return RecordBatch::new(self.schema.clone(), Vec::new());
        };
        let mut columns = Vec::with_capacity(self.columns.len());
        columns.push(first.try_take(indices)?);
        columns.extend(rest.iter().map(|c| c.take(indices)));
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// New batch projecting columns by index; schema is re-derived, columns
    /// are shared, and any selection is carried over — projection never
    /// copies or compacts.
    pub fn project(&self, indices: &[usize]) -> Result<RecordBatch> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.columns.len()) {
            return Err(CiError::Exec(format!(
                "project index {bad} out of bounds for {} columns",
                self.columns.len()
            )));
        }
        let schema = Arc::new(self.schema.project(indices));
        let columns: Vec<Arc<ColumnData>> =
            indices.iter().map(|&i| self.columns[i].clone()).collect();
        Ok(RecordBatch {
            schema,
            columns,
            rows: self.rows,
            selection: self.selection.clone(),
        })
    }

    /// Contiguous *logical* row slice `[offset, offset+len)`. A full-range
    /// slice is zero-copy (shares every column); on a selected batch every
    /// sub-range is also zero-copy (the selection is sliced instead);
    /// dense sub-ranges copy fixed-width payloads and dict ids only.
    pub fn slice(&self, offset: usize, len: usize) -> Result<RecordBatch> {
        let rows = self.rows();
        if offset + len > rows {
            return Err(CiError::Exec(format!(
                "slice [{offset}, {}) out of bounds for {rows} rows",
                offset + len
            )));
        }
        if offset == 0 && len == rows {
            return Ok(self.clone());
        }
        if let Some(sel) = &self.selection {
            return Ok(RecordBatch {
                schema: self.schema.clone(),
                columns: self.columns.clone(),
                rows: self.rows,
                selection: Some(Arc::new(sel.slice(offset, len))),
            });
        }
        let columns: Vec<ColumnData> = self.columns.iter().map(|c| c.slice(offset, len)).collect();
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// Re-labels the batch under a new schema of identical arity and types
    /// (e.g. table schema → engine slot schema) without touching column data
    /// or the selection.
    pub fn with_schema(&self, schema: SchemaRef) -> Result<RecordBatch> {
        let relabeled = RecordBatch::from_arcs(schema, self.columns.clone())?;
        Ok(RecordBatch {
            selection: self.selection.clone(),
            ..relabeled
        })
    }

    /// Concatenates batches sharing one schema, compacting any deferred
    /// selections (concat feeds pipeline breakers — a materialization
    /// point). Errors on empty input or schema mismatch.
    pub fn concat(batches: &[RecordBatch]) -> Result<RecordBatch> {
        let first = batches
            .first()
            .ok_or_else(|| CiError::Exec("concat of zero batches".into()))?;
        if batches.len() == 1 {
            return Ok(first.compacted());
        }
        // Seed with empty slices of the first batch's columns so dict
        // encodings (and their shared dictionary) survive concatenation.
        let mut columns: Vec<ColumnData> = first.columns.iter().map(|c| c.slice(0, 0)).collect();
        for b in batches {
            if b.schema.as_ref() != first.schema.as_ref() {
                return Err(CiError::Exec("concat schema mismatch".into()));
            }
            let dense = b.compacted();
            for (dst, src) in columns.iter_mut().zip(&dense.columns) {
                dst.extend_from(src)?;
            }
        }
        RecordBatch::new(first.schema.clone(), columns)
    }
}

/// Equality over the *logical* rows: a batch carrying a selection equals the
/// dense batch holding the rows the selection names. Keeps result comparison
/// (tests, the determinism oracle) independent of whether a plan path
/// materialized its filters eagerly or lazily.
impl PartialEq for RecordBatch {
    fn eq(&self, other: &Self) -> bool {
        if self.schema != other.schema {
            return false;
        }
        match (&self.selection, &other.selection) {
            (None, None) => self.rows == other.rows && self.columns == other.columns,
            _ => {
                self.rows() == other.rows() && self.compacted().columns == other.compacted().columns
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn schema() -> SchemaRef {
        Arc::new(Schema::of(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]))
    }

    fn sample() -> RecordBatch {
        RecordBatch::new(
            schema(),
            vec![
                ColumnData::Int64(vec![1, 2, 3]),
                ColumnData::Utf8(vec!["a".into(), "b".into(), "c".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        // Wrong arity.
        assert!(RecordBatch::new(schema(), vec![ColumnData::Int64(vec![1])]).is_err());
        // Ragged lengths.
        assert!(RecordBatch::new(
            schema(),
            vec![
                ColumnData::Int64(vec![1, 2]),
                ColumnData::Utf8(vec!["a".into()])
            ]
        )
        .is_err());
        // Type mismatch.
        assert!(RecordBatch::new(
            schema(),
            vec![
                ColumnData::Bool(vec![true]),
                ColumnData::Utf8(vec!["a".into()])
            ]
        )
        .is_err());
    }

    #[test]
    fn filter_take_slice() {
        let b = sample();
        let f = b.filter(&[true, false, true]).unwrap();
        assert_eq!(f.rows(), 2);
        assert_eq!(f.row(1), vec![Value::Int(3), Value::from("c")]);

        let t = b.take(&[2, 2, 0]).unwrap();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.row(0), vec![Value::Int(3), Value::from("c")]);
        assert!(b.take(&[9]).is_err());

        let s = b.slice(1, 2).unwrap();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), vec![Value::Int(2), Value::from("b")]);
        assert!(b.slice(2, 5).is_err());
    }

    #[test]
    fn filter_defers_materialization() {
        let b = sample();
        let f = b.filter(&[true, false, true]).unwrap();
        // The logical view is filtered...
        assert_eq!(f.rows(), 2);
        assert_eq!(f.physical_rows(), 3);
        assert_eq!(
            f.selection().unwrap().iter().collect::<Vec<_>>(),
            vec![0, 2]
        );
        // ...but every column is still shared, untouched.
        for i in 0..2 {
            assert!(Arc::ptr_eq(f.column_arc(i), b.column_arc(i)));
        }
        // Compaction materializes the eager equivalent.
        let dense = f.compacted();
        assert!(dense.selection().is_none());
        assert_eq!(dense.column(0), &ColumnData::Int64(vec![1, 3]));
        assert_eq!(f, dense, "selected and dense views are logically equal");
    }

    #[test]
    fn filter_on_selected_batch_composes_without_copies() {
        let b = sample();
        let once = b.filter(&[true, true, false]).unwrap();
        // Mask is over the *logical* rows (1, 2).
        let twice = once.filter(&[false, true]).unwrap();
        assert_eq!(twice.rows(), 1);
        assert_eq!(twice.row(0), vec![Value::Int(2), Value::from("b")]);
        for i in 0..2 {
            assert!(
                Arc::ptr_eq(twice.column_arc(i), b.column_arc(i)),
                "composed filter must not copy columns"
            );
        }
        // Fully-true masks drop the selection on a dense batch.
        assert!(b.filter(&[true; 3]).unwrap().selection().is_none());
    }

    #[test]
    fn sparse_filters_compact_eagerly() {
        let n = 64;
        let wide = Arc::new(Schema::of(vec![Field::new("x", DataType::Int64)]));
        let b = RecordBatch::new(wide, vec![ColumnData::Int64((0..n).collect())]).unwrap();
        // 2/64 survivors: below COMPACT_DENSITY, so the result is dense.
        let mut keep = vec![false; n as usize];
        keep[3] = true;
        keep[7] = true;
        let f = b.filter(&keep).unwrap();
        assert!(f.selection().is_none(), "sparse filter compacts");
        assert_eq!(f.column(0), &ColumnData::Int64(vec![3, 7]));
        // An all-false mask compacts to an empty dense batch.
        let none = b.filter(&vec![false; n as usize]).unwrap();
        assert!(none.is_empty() && none.selection().is_none());
    }

    #[test]
    fn selected_batch_accessors_read_through_selection() {
        let b = sample();
        let f = b.filter(&[false, true, true]).unwrap();
        assert_eq!(f.byte_size(), 16 + (1 + 4) * 2);
        assert_eq!(f.take(&[1, 0]).unwrap().row(0), b.row(2));
        assert!(f.take(&[2]).is_err(), "take bounds are logical");
        let s = f.slice(1, 1).unwrap();
        assert_eq!(s.rows(), 1);
        assert_eq!(s.row(0), vec![Value::Int(3), Value::from("c")]);
        assert!(
            Arc::ptr_eq(s.column_arc(0), b.column_arc(0)),
            "slicing a selected batch is zero-copy"
        );
        // Unselected view exposes the physical rows again.
        assert_eq!(f.unselected().rows(), 3);
    }

    #[test]
    fn select_composes_and_validates() {
        let b = sample();
        let f = b
            .select(SelectionVector::from_mask(&[true, false, true]))
            .unwrap();
        assert_eq!(f.rows(), 2);
        // A further selection is expressed over the logical view.
        let g = f
            .select(SelectionVector::from_mask(&[false, true]))
            .unwrap();
        assert_eq!(g.rows(), 1);
        assert_eq!(g.row(0), vec![Value::Int(3), Value::from("c")]);
        // Wrong cardinality is rejected.
        assert!(f.select(SelectionVector::from_mask(&[true])).is_err());
    }

    #[test]
    fn take_error_names_first_bad_index() {
        let err = sample().take(&[1, 5, 9]).unwrap_err().to_string();
        assert!(
            err.contains("take index 5 out of bounds for 3 rows"),
            "{err}"
        );
    }

    #[test]
    fn filter_mask_length_checked() {
        assert!(sample().filter(&[true]).is_err());
    }

    #[test]
    fn project_rederives_schema_and_shares_columns() {
        let b = sample();
        let p = b.project(&[1]).unwrap();
        assert_eq!(p.schema().arity(), 1);
        assert_eq!(p.schema().field(0).name, "name");
        assert!(Arc::ptr_eq(p.column_arc(0), b.column_arc(1)));
        assert!(sample().project(&[5]).is_err());
        // Projection carries the selection along, still zero-copy.
        let f = b.filter(&[true, false, true]).unwrap();
        let fp = f.project(&[0]).unwrap();
        assert_eq!(fp.rows(), 2);
        assert_eq!(fp.row(1), vec![Value::Int(3)]);
        assert!(Arc::ptr_eq(fp.column_arc(0), b.column_arc(0)));
    }

    #[test]
    fn full_slice_is_zero_copy() {
        let b = sample();
        let s = b.slice(0, 3).unwrap();
        assert!(Arc::ptr_eq(s.column_arc(0), b.column_arc(0)));
        assert!(Arc::ptr_eq(s.column_arc(1), b.column_arc(1)));
    }

    #[test]
    fn with_schema_relabels_without_copy() {
        let b = sample();
        let renamed = Arc::new(Schema::of(vec![
            Field::new("s0", DataType::Int64),
            Field::new("s1", DataType::Utf8),
        ]));
        let r = b.with_schema(renamed.clone()).unwrap();
        assert!(Arc::ptr_eq(r.column_arc(0), b.column_arc(0)));
        assert_eq!(r.schema().field(0).name, "s0");
        // Arity mismatch is rejected.
        let bad = Arc::new(Schema::of(vec![Field::new("x", DataType::Int64)]));
        assert!(b.with_schema(bad).is_err());
        // Selections survive relabeling.
        let f = b.filter(&[true, false, true]).unwrap();
        assert_eq!(f.with_schema(renamed).unwrap().rows(), 2);
    }

    #[test]
    fn concat_appends_rows() {
        let b = sample();
        let c = RecordBatch::concat(&[b.clone(), b.clone()]).unwrap();
        assert_eq!(c.rows(), 6);
        assert_eq!(c.row(3), vec![Value::Int(1), Value::from("a")]);
        assert!(RecordBatch::concat(&[]).is_err());
        // Selected inputs are compacted, not concatenated physically.
        let f = b.filter(&[true, false, true]).unwrap();
        let fc = RecordBatch::concat(&[f.clone(), f]).unwrap();
        assert_eq!(fc.rows(), 4);
        assert_eq!(fc.column(0), &ColumnData::Int64(vec![1, 3, 1, 3]));
        assert!(fc.selection().is_none());
    }

    #[test]
    fn concat_preserves_dict_encoding() {
        let dicted = RecordBatch::new(
            schema(),
            vec![
                ColumnData::Int64(vec![1, 2, 3]),
                ColumnData::Utf8(vec!["a".into(), "b".into(), "a".into()]).dict_encoded(),
            ],
        )
        .unwrap();
        let left = dicted.slice(0, 2).unwrap();
        let right = dicted.slice(2, 1).unwrap();
        let joined = RecordBatch::concat(&[left, right]).unwrap();
        let (ids, dict) = joined.column(1).as_dict().expect("still dict-encoded");
        assert_eq!(ids, &[0, 1, 0]);
        assert!(Arc::ptr_eq(dict, dicted.column(1).as_dict().unwrap().1));
    }

    #[test]
    fn empty_batch() {
        let e = RecordBatch::empty(schema());
        assert!(e.is_empty());
        assert_eq!(e.byte_size(), 0);
    }

    #[test]
    fn byte_size_counts_payload() {
        // ids: 3*8 = 24; names: (1+4)*3 = 15.
        assert_eq!(sample().byte_size(), 24 + 15);
    }
}
