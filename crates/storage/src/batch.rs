//! Record batches: the unit of data flowing between operators.

use std::sync::Arc;

use ci_types::{CiError, Result};

use crate::column::ColumnData;
use crate::schema::SchemaRef;
use crate::value::Value;

/// A horizontal chunk of a table: one [`ColumnData`] per schema field, all
/// the same length. Columns are `Arc`-shared, so cloning a batch, projecting
/// columns, or re-schematizing a partition's payload never copies data —
/// only filter/take/slice materialize new column payloads (and for
/// dict-encoded strings those move 4-byte ids, not heap strings). Morsels
/// handed to the execution engine are `RecordBatch` slices.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    schema: SchemaRef,
    columns: Vec<Arc<ColumnData>>,
    rows: usize,
}

impl RecordBatch {
    /// Builds a batch, validating column count, types, and equal lengths.
    pub fn new(schema: SchemaRef, columns: Vec<ColumnData>) -> Result<RecordBatch> {
        RecordBatch::from_arcs(schema, columns.into_iter().map(Arc::new).collect())
    }

    /// Builds a batch from already-shared columns (zero-copy: the batch
    /// holds references, not clones). Validation is identical to
    /// [`RecordBatch::new`].
    pub fn from_arcs(schema: SchemaRef, columns: Vec<Arc<ColumnData>>) -> Result<RecordBatch> {
        if columns.len() != schema.arity() {
            return Err(CiError::Exec(format!(
                "batch has {} columns, schema expects {}",
                columns.len(),
                schema.arity()
            )));
        }
        let rows = columns.first().map_or(0, |c| c.len());
        for (i, c) in columns.iter().enumerate() {
            if c.len() != rows {
                return Err(CiError::Exec(format!(
                    "column {i} has {} rows, expected {rows}",
                    c.len()
                )));
            }
            if c.data_type() != schema.field(i).data_type {
                return Err(CiError::Exec(format!(
                    "column {i} is {}, schema field '{}' is {}",
                    c.data_type(),
                    schema.field(i).name,
                    schema.field(i).data_type
                )));
            }
        }
        Ok(RecordBatch {
            schema,
            columns,
            rows,
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: SchemaRef) -> RecordBatch {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Arc::new(ColumnData::empty(f.data_type)))
            .collect();
        RecordBatch {
            schema,
            columns,
            rows: 0,
        }
    }

    /// The batch's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// `true` when the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The shared columns in schema order.
    pub fn columns(&self) -> &[Arc<ColumnData>] {
        &self.columns
    }

    /// One column by index.
    pub fn column(&self, i: usize) -> &ColumnData {
        &self.columns[i]
    }

    /// One column's shared handle by index (cheap to clone).
    pub fn column_arc(&self, i: usize) -> &Arc<ColumnData> {
        &self.columns[i]
    }

    /// One full row as values (clones strings); for tests and result display.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Exact encoded payload size in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// New batch keeping rows where `keep` is true.
    pub fn filter(&self, keep: &[bool]) -> Result<RecordBatch> {
        if keep.len() != self.rows {
            return Err(CiError::Exec(format!(
                "filter mask has {} entries for {} rows",
                keep.len(),
                self.rows
            )));
        }
        let columns: Vec<ColumnData> = self.columns.iter().map(|c| c.filter(keep)).collect();
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// New batch gathering the given row indices. Bounds are validated
    /// inline during the first column's gather (single pass, erroring on the
    /// first bad index); the remaining columns gather unchecked.
    pub fn take(&self, indices: &[usize]) -> Result<RecordBatch> {
        let Some((first, rest)) = self.columns.split_first() else {
            // Zero-column batch: nothing to gather, but still validate.
            if let Some(&bad) = indices.iter().find(|&&i| i >= self.rows) {
                return Err(CiError::Exec(format!(
                    "take index {bad} out of bounds for {} rows",
                    self.rows
                )));
            }
            return RecordBatch::new(self.schema.clone(), Vec::new());
        };
        let mut columns = Vec::with_capacity(self.columns.len());
        columns.push(first.try_take(indices)?);
        columns.extend(rest.iter().map(|c| c.take(indices)));
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// New batch projecting columns by index; schema is re-derived and
    /// columns are shared, not copied.
    pub fn project(&self, indices: &[usize]) -> Result<RecordBatch> {
        if let Some(&bad) = indices.iter().find(|&&i| i >= self.columns.len()) {
            return Err(CiError::Exec(format!(
                "project index {bad} out of bounds for {} columns",
                self.columns.len()
            )));
        }
        let schema = Arc::new(self.schema.project(indices));
        let columns: Vec<Arc<ColumnData>> =
            indices.iter().map(|&i| self.columns[i].clone()).collect();
        RecordBatch::from_arcs(schema, columns)
    }

    /// Contiguous row slice `[offset, offset+len)`. A full-range slice is
    /// zero-copy (shares every column); sub-ranges copy fixed-width payloads
    /// and dict ids only.
    pub fn slice(&self, offset: usize, len: usize) -> Result<RecordBatch> {
        if offset + len > self.rows {
            return Err(CiError::Exec(format!(
                "slice [{offset}, {}) out of bounds for {} rows",
                offset + len,
                self.rows
            )));
        }
        if offset == 0 && len == self.rows {
            return Ok(self.clone());
        }
        let columns: Vec<ColumnData> = self.columns.iter().map(|c| c.slice(offset, len)).collect();
        RecordBatch::new(self.schema.clone(), columns)
    }

    /// Re-labels the batch under a new schema of identical arity and types
    /// (e.g. table schema → engine slot schema) without touching column data.
    pub fn with_schema(&self, schema: SchemaRef) -> Result<RecordBatch> {
        RecordBatch::from_arcs(schema, self.columns.clone())
    }

    /// Concatenates batches sharing one schema. Errors on empty input or
    /// schema mismatch.
    pub fn concat(batches: &[RecordBatch]) -> Result<RecordBatch> {
        let first = batches
            .first()
            .ok_or_else(|| CiError::Exec("concat of zero batches".into()))?;
        if batches.len() == 1 {
            return Ok(first.clone());
        }
        // Seed with empty slices of the first batch's columns so dict
        // encodings (and their shared dictionary) survive concatenation.
        let mut columns: Vec<ColumnData> = first.columns.iter().map(|c| c.slice(0, 0)).collect();
        for b in batches {
            if b.schema.as_ref() != first.schema.as_ref() {
                return Err(CiError::Exec("concat schema mismatch".into()));
            }
            for (dst, src) in columns.iter_mut().zip(&b.columns) {
                dst.extend_from(src)?;
            }
        }
        RecordBatch::new(first.schema.clone(), columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn schema() -> SchemaRef {
        Arc::new(Schema::of(vec![
            Field::new("id", DataType::Int64),
            Field::new("name", DataType::Utf8),
        ]))
    }

    fn sample() -> RecordBatch {
        RecordBatch::new(
            schema(),
            vec![
                ColumnData::Int64(vec![1, 2, 3]),
                ColumnData::Utf8(vec!["a".into(), "b".into(), "c".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        // Wrong arity.
        assert!(RecordBatch::new(schema(), vec![ColumnData::Int64(vec![1])]).is_err());
        // Ragged lengths.
        assert!(RecordBatch::new(
            schema(),
            vec![
                ColumnData::Int64(vec![1, 2]),
                ColumnData::Utf8(vec!["a".into()])
            ]
        )
        .is_err());
        // Type mismatch.
        assert!(RecordBatch::new(
            schema(),
            vec![
                ColumnData::Bool(vec![true]),
                ColumnData::Utf8(vec!["a".into()])
            ]
        )
        .is_err());
    }

    #[test]
    fn filter_take_slice() {
        let b = sample();
        let f = b.filter(&[true, false, true]).unwrap();
        assert_eq!(f.rows(), 2);
        assert_eq!(f.row(1), vec![Value::Int(3), Value::from("c")]);

        let t = b.take(&[2, 2, 0]).unwrap();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.row(0), vec![Value::Int(3), Value::from("c")]);
        assert!(b.take(&[9]).is_err());

        let s = b.slice(1, 2).unwrap();
        assert_eq!(s.rows(), 2);
        assert_eq!(s.row(0), vec![Value::Int(2), Value::from("b")]);
        assert!(b.slice(2, 5).is_err());
    }

    #[test]
    fn take_error_names_first_bad_index() {
        let err = sample().take(&[1, 5, 9]).unwrap_err().to_string();
        assert!(
            err.contains("take index 5 out of bounds for 3 rows"),
            "{err}"
        );
    }

    #[test]
    fn filter_mask_length_checked() {
        assert!(sample().filter(&[true]).is_err());
    }

    #[test]
    fn project_rederives_schema_and_shares_columns() {
        let b = sample();
        let p = b.project(&[1]).unwrap();
        assert_eq!(p.schema().arity(), 1);
        assert_eq!(p.schema().field(0).name, "name");
        assert!(Arc::ptr_eq(p.column_arc(0), b.column_arc(1)));
        assert!(sample().project(&[5]).is_err());
    }

    #[test]
    fn full_slice_is_zero_copy() {
        let b = sample();
        let s = b.slice(0, 3).unwrap();
        assert!(Arc::ptr_eq(s.column_arc(0), b.column_arc(0)));
        assert!(Arc::ptr_eq(s.column_arc(1), b.column_arc(1)));
    }

    #[test]
    fn with_schema_relabels_without_copy() {
        let b = sample();
        let renamed = Arc::new(Schema::of(vec![
            Field::new("s0", DataType::Int64),
            Field::new("s1", DataType::Utf8),
        ]));
        let r = b.with_schema(renamed).unwrap();
        assert!(Arc::ptr_eq(r.column_arc(0), b.column_arc(0)));
        assert_eq!(r.schema().field(0).name, "s0");
        // Arity mismatch is rejected.
        let bad = Arc::new(Schema::of(vec![Field::new("x", DataType::Int64)]));
        assert!(b.with_schema(bad).is_err());
    }

    #[test]
    fn concat_appends_rows() {
        let b = sample();
        let c = RecordBatch::concat(&[b.clone(), b.clone()]).unwrap();
        assert_eq!(c.rows(), 6);
        assert_eq!(c.row(3), vec![Value::Int(1), Value::from("a")]);
        assert!(RecordBatch::concat(&[]).is_err());
    }

    #[test]
    fn concat_preserves_dict_encoding() {
        let dicted = RecordBatch::new(
            schema(),
            vec![
                ColumnData::Int64(vec![1, 2, 3]),
                ColumnData::Utf8(vec!["a".into(), "b".into(), "a".into()]).dict_encoded(),
            ],
        )
        .unwrap();
        let left = dicted.slice(0, 2).unwrap();
        let right = dicted.slice(2, 1).unwrap();
        let joined = RecordBatch::concat(&[left, right]).unwrap();
        let (ids, dict) = joined.column(1).as_dict().expect("still dict-encoded");
        assert_eq!(ids, &[0, 1, 0]);
        assert!(Arc::ptr_eq(dict, dicted.column(1).as_dict().unwrap().1));
    }

    #[test]
    fn empty_batch() {
        let e = RecordBatch::empty(schema());
        assert!(e.is_empty());
        assert_eq!(e.byte_size(), 0);
    }

    #[test]
    fn byte_size_counts_payload() {
        // ids: 3*8 = 24; names: (1+4)*3 = 15.
        assert_eq!(sample().byte_size(), 24 + 15);
    }
}
