//! Selection vectors: deferred row filtering.
//!
//! A [`SelectionVector`] names the surviving rows of a batch without moving
//! any column data. It has a dual interface — a **bool mask** over physical
//! rows (the form predicates produce) and **sorted physical indices** (the
//! form gathers consume) — and, internally, a dual *representation*: the
//! common "every survivor in one contiguous range" case (range predicates
//! over clustered data, morsel sub-slicing, all-pass filters) is stored as a
//! `[start, start + len)` **range run** with no index vector at all, while
//! scattered survivors store sorted indices. Every constructor canonicalizes
//! (contiguous index sets collapse to the range form), so composition,
//! slicing, and gathers hit the O(1)-metadata / memcpy fast paths whenever
//! the shape allows and fall back to O(selected) otherwise.
//!
//! Batches carry a selection through filter → project chains so each
//! operator composes masks instead of copying columns; materialization
//! happens once, at the pipeline sink (see [`crate::batch::RecordBatch`]).

use ci_types::{CiError, Result};

/// Internal storage: a contiguous range run or explicit sorted indices.
#[derive(Debug, Clone)]
enum Repr {
    /// Rows `[start, start + len)` — no materialized indices.
    Range { start: u32, len: u32 },
    /// Strictly increasing, non-contiguous physical rows.
    Indices(Vec<u32>),
}

/// Sorted physical row indices selected from a batch of `total` rows.
///
/// Invariants (enforced by construction): indices are strictly increasing
/// and every index is `< total`. Selections therefore preserve row order —
/// a batch read through its selection yields the exact subsequence the
/// eager filter would have materialized.
#[derive(Debug, Clone)]
pub struct SelectionVector {
    repr: Repr,
    /// Physical row count of the underlying batch.
    total: usize,
}

impl SelectionVector {
    /// Canonical constructor over validated sorted indices: collapses a
    /// contiguous run (including the empty set) into the range form.
    fn from_sorted(indices: Vec<u32>, total: usize) -> SelectionVector {
        let repr = match (indices.first(), indices.last()) {
            (None, _) => Repr::Range { start: 0, len: 0 },
            (Some(&first), Some(&last)) if (last - first) as usize + 1 == indices.len() => {
                Repr::Range {
                    start: first,
                    len: indices.len() as u32,
                }
            }
            _ => Repr::Indices(indices),
        };
        SelectionVector { repr, total }
    }

    /// Selection of every row where `mask` is true (the bool-mask
    /// constructor; `mask.len()` is the physical row count).
    pub fn from_mask(mask: &[bool]) -> SelectionVector {
        let indices = mask
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k)
            .map(|(i, _)| i as u32)
            .collect();
        SelectionVector::from_sorted(indices, mask.len())
    }

    /// The contiguous-run selection `[start, start + len)` — the fast path
    /// for range survivors; errors when the run exceeds `total`.
    pub fn from_range(start: usize, len: usize, total: usize) -> Result<SelectionVector> {
        if start + len > total {
            return Err(CiError::Exec(format!(
                "selection range [{start}, {}) out of bounds for {total} rows",
                start + len
            )));
        }
        Ok(SelectionVector {
            repr: Repr::Range {
                // Canonical empty form is [0, 0) so empty selections compare
                // equal regardless of how they were built.
                start: if len == 0 { 0 } else { start as u32 },
                len: len as u32,
            },
            total,
        })
    }

    /// Selection from explicit physical indices; errors unless they are
    /// strictly increasing and in bounds (the invariants every consumer
    /// relies on for panic-free gathers).
    pub fn from_indices(indices: Vec<u32>, total: usize) -> Result<SelectionVector> {
        for pair in indices.windows(2) {
            if pair[0] >= pair[1] {
                return Err(CiError::Exec(format!(
                    "selection indices must be strictly increasing, got {} then {}",
                    pair[0], pair[1]
                )));
            }
        }
        if let Some(&last) = indices.last() {
            if last as usize >= total {
                return Err(CiError::Exec(format!(
                    "selection index {last} out of bounds for {total} rows"
                )));
            }
        }
        Ok(SelectionVector::from_sorted(indices, total))
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Range { len, .. } => *len as usize,
            Repr::Indices(v) => v.len(),
        }
    }

    /// `true` when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical row count of the underlying batch.
    pub fn total(&self) -> usize {
        self.total
    }

    /// `true` when every physical row is selected.
    pub fn is_full(&self) -> bool {
        self.len() == self.total
    }

    /// The `(start, len)` of the contiguous run when the selection is one —
    /// consumers turn gathers into slices (a memcpy, or zero-copy for dict
    /// ids) on this fast path.
    pub fn as_range(&self) -> Option<(usize, usize)> {
        match &self.repr {
            Repr::Range { start, len } => Some((*start as usize, *len as usize)),
            Repr::Indices(_) => None,
        }
    }

    /// Selected fraction in `[0, 1]` (an empty batch counts as dense).
    pub fn density(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.len() as f64 / self.total as f64
        }
    }

    /// Physical row of logical row `i`. Panics if `i >= len()`.
    pub fn physical(&self, i: usize) -> usize {
        match &self.repr {
            Repr::Range { start, len } => {
                assert!(i < *len as usize, "selection row {i} out of {len}");
                *start as usize + i
            }
            Repr::Indices(v) => v[i] as usize,
        }
    }

    /// Iterates the selected physical rows in ascending order.
    pub fn iter(&self) -> SelectionIter<'_> {
        match &self.repr {
            Repr::Range { start, len } => SelectionIter::Range(*start..(*start + *len)),
            Repr::Indices(v) => SelectionIter::Indices(v.iter()),
        }
    }

    /// The bool-mask view over physical rows.
    pub fn to_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.total];
        for i in self.iter() {
            mask[i] = true;
        }
        mask
    }

    /// Composes a further filter: `keep[j]` is the verdict for the `j`-th
    /// *selected* row. O(selected) — this is what makes a filter over an
    /// already-selected batch free of column copies.
    pub fn refine(&self, keep: &[bool]) -> Result<SelectionVector> {
        if keep.len() != self.len() {
            return Err(CiError::Exec(format!(
                "selection refine mask has {} entries for {} selected rows",
                keep.len(),
                self.len()
            )));
        }
        let indices = self
            .iter()
            .zip(keep)
            .filter(|&(_, &k)| k)
            .map(|(i, _)| i as u32)
            .collect();
        Ok(SelectionVector::from_sorted(indices, self.total))
    }

    /// Composes `next` (a selection over this selection's *logical* rows)
    /// into one selection over physical rows. Two range runs compose in
    /// O(1); mixed shapes fall back to O(selected) index mapping.
    pub fn compose(&self, next: &SelectionVector) -> Result<SelectionVector> {
        if next.total() != self.len() {
            return Err(CiError::Exec(format!(
                "composed selection covers {} rows, outer selects {}",
                next.total(),
                self.len()
            )));
        }
        if let (Some((outer_start, _)), Some((inner_start, inner_len))) =
            (self.as_range(), next.as_range())
        {
            return SelectionVector::from_range(outer_start + inner_start, inner_len, self.total);
        }
        let indices = next.iter().map(|i| self.physical(i) as u32).collect();
        Ok(SelectionVector::from_sorted(indices, self.total))
    }

    /// Sub-range `[offset, offset + len)` of the *selected* rows (logical
    /// slicing, e.g. morsel splitting); shares no column data, and slicing a
    /// range run stays a range run. Panics if `offset + len > self.len()` —
    /// callers validate against the logical row count first (as
    /// [`crate::batch::RecordBatch::slice`] does).
    pub fn slice(&self, offset: usize, len: usize) -> SelectionVector {
        assert!(
            offset + len <= self.len(),
            "selection slice [{offset}, {}) out of bounds for {} selected rows",
            offset + len,
            self.len()
        );
        match &self.repr {
            Repr::Range { start, .. } => SelectionVector {
                repr: Repr::Range {
                    // Same canonical empty form as `from_range`.
                    start: if len == 0 { 0 } else { start + offset as u32 },
                    len: len as u32,
                },
                total: self.total,
            },
            Repr::Indices(v) => {
                SelectionVector::from_sorted(v[offset..offset + len].to_vec(), self.total)
            }
        }
    }
}

/// Equality over the selected physical rows (and the physical total); the
/// range and index forms of the same row set compare equal, though canonical
/// construction means both sides normally share a form.
impl PartialEq for SelectionVector {
    fn eq(&self, other: &Self) -> bool {
        if self.total != other.total || self.len() != other.len() {
            return false;
        }
        match (&self.repr, &other.repr) {
            (Repr::Range { start: a, .. }, Repr::Range { start: b, .. }) => a == b,
            _ => self.iter().eq(other.iter()),
        }
    }
}

/// Iterator over selected physical rows (range runs iterate without any
/// backing index storage).
#[derive(Debug, Clone)]
pub enum SelectionIter<'a> {
    /// Contiguous run.
    Range(std::ops::Range<u32>),
    /// Explicit indices.
    Indices(std::slice::Iter<'a, u32>),
}

impl Iterator for SelectionIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            SelectionIter::Range(r) => r.next().map(|i| i as usize),
            SelectionIter::Indices(it) => it.next().map(|&i| i as usize),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            SelectionIter::Range(r) => r.size_hint(),
            SelectionIter::Indices(it) => it.size_hint(),
        }
    }
}

impl ExactSizeIterator for SelectionIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_round_trips_through_indices() {
        let mask = vec![true, false, false, true, true];
        let sel = SelectionVector::from_mask(&mask);
        assert_eq!(sel.len(), 3);
        assert_eq!(sel.total(), 5);
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![0, 3, 4]);
        assert_eq!(sel.to_mask(), mask);
        assert_eq!(sel.physical(1), 3);
        assert!(sel.as_range().is_none(), "scattered rows stay indices");
    }

    #[test]
    fn contiguous_masks_collapse_to_range_runs() {
        let sel = SelectionVector::from_mask(&[false, true, true, true, false]);
        assert_eq!(sel.as_range(), Some((1, 3)));
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(sel.physical(2), 3);
        assert_eq!(sel.to_mask(), vec![false, true, true, true, false]);
        // The same rows via from_indices normalize identically.
        let via_indices = SelectionVector::from_indices(vec![1, 2, 3], 5).unwrap();
        assert_eq!(sel, via_indices);
        assert_eq!(via_indices.as_range(), Some((1, 3)));
    }

    #[test]
    fn from_range_validates_bounds() {
        let r = SelectionVector::from_range(2, 3, 5).unwrap();
        assert_eq!(r.len(), 3);
        assert!(!r.is_full());
        assert!(SelectionVector::from_range(3, 3, 5).is_err());
        let full = SelectionVector::from_range(0, 4, 4).unwrap();
        assert!(full.is_full());
    }

    #[test]
    fn empty_selections_are_canonical() {
        // However an empty selection is built, it compares equal.
        let a = SelectionVector::from_range(3, 0, 5).unwrap();
        let b = SelectionVector::from_mask(&[false; 5]);
        let c = SelectionVector::from_range(1, 2, 5).unwrap().slice(1, 0);
        let d = SelectionVector::from_indices(vec![], 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, d);
        assert_eq!(a.as_range(), Some((0, 0)));
        assert_eq!(c.as_range(), Some((0, 0)));
    }

    #[test]
    fn from_indices_validates() {
        assert!(SelectionVector::from_indices(vec![0, 2, 4], 5).is_ok());
        let unsorted = SelectionVector::from_indices(vec![2, 1], 5);
        assert!(unsorted.is_err());
        let dup = SelectionVector::from_indices(vec![1, 1], 5);
        assert!(dup.is_err());
        let oob = SelectionVector::from_indices(vec![1, 5], 5);
        assert!(oob.is_err());
    }

    #[test]
    fn refine_composes_over_selected_rows() {
        let sel = SelectionVector::from_mask(&[true, false, true, true, false]);
        // Verdicts for physical rows 0, 2, 3.
        let refined = sel.refine(&[false, true, true]).unwrap();
        assert_eq!(refined.iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(refined.total(), 5);
        assert_eq!(refined.as_range(), Some((2, 2)), "survivors re-collapse");
        assert!(sel.refine(&[true]).is_err(), "mask length checked");
        // Refining a range run works over its virtual rows.
        let run = SelectionVector::from_range(1, 3, 6).unwrap();
        let r = run.refine(&[true, false, true]).unwrap();
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn compose_stacks_selections() {
        // Range ∘ range stays a range without touching indices.
        let outer = SelectionVector::from_range(10, 20, 100).unwrap();
        let inner = SelectionVector::from_range(5, 4, 20).unwrap();
        let c = outer.compose(&inner).unwrap();
        assert_eq!(c.as_range(), Some((15, 4)));
        assert_eq!(c.total(), 100);
        // Mixed shapes map index by index.
        let scattered = SelectionVector::from_indices(vec![0, 2, 19], 20).unwrap();
        let m = outer.compose(&scattered).unwrap();
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![10, 12, 29]);
        // Cardinality mismatch is rejected.
        assert!(outer
            .compose(&SelectionVector::from_range(0, 1, 3).unwrap())
            .is_err());
    }

    #[test]
    fn density_full_and_empty() {
        let full = SelectionVector::from_mask(&[true, true]);
        assert!(full.is_full());
        assert_eq!(full.density(), 1.0);
        assert_eq!(full.as_range(), Some((0, 2)));
        let none = SelectionVector::from_mask(&[false, false]);
        assert!(none.is_empty());
        assert_eq!(none.density(), 0.0);
        let empty_batch = SelectionVector::from_mask(&[]);
        assert_eq!(empty_batch.density(), 1.0, "empty batches count as dense");
        assert!(empty_batch.is_full());
    }

    #[test]
    fn slice_is_logical() {
        let sel = SelectionVector::from_mask(&[true, false, true, true, true]);
        let s = sel.slice(1, 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(s.total(), 5);
        assert_eq!(s.as_range(), Some((2, 2)), "contiguous tail collapses");
        // Slicing a range run never materializes indices.
        let run = SelectionVector::from_range(4, 8, 20).unwrap();
        assert_eq!(run.slice(2, 3).as_range(), Some((6, 3)));
    }
}
