//! Selection vectors: deferred row filtering.
//!
//! A [`SelectionVector`] names the surviving rows of a batch without moving
//! any column data. It has a dual interface — a **bool mask** over physical
//! rows (the form predicates produce) and **sorted physical indices** (the
//! form gathers consume) — with the index form as the canonical storage:
//! composition, iteration, and random access are all O(selected), and a mask
//! view can be rebuilt on demand with [`SelectionVector::to_mask`].
//!
//! Batches carry a selection through filter → project chains so each
//! operator composes masks instead of copying columns; materialization
//! happens once, at the pipeline sink (see [`crate::batch::RecordBatch`]).

use ci_types::{CiError, Result};

/// Sorted physical row indices selected from a batch of `total` rows.
///
/// Invariants (enforced by construction): indices are strictly increasing
/// and every index is `< total`. Selections therefore preserve row order —
/// a batch read through its selection yields the exact subsequence the
/// eager filter would have materialized.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionVector {
    /// Selected physical rows, strictly increasing.
    indices: Vec<u32>,
    /// Physical row count of the underlying batch.
    total: usize,
}

impl SelectionVector {
    /// Selection of every row where `mask` is true (the bool-mask
    /// constructor; `mask.len()` is the physical row count).
    pub fn from_mask(mask: &[bool]) -> SelectionVector {
        let indices = mask
            .iter()
            .enumerate()
            .filter(|&(_, &k)| k)
            .map(|(i, _)| i as u32)
            .collect();
        SelectionVector {
            indices,
            total: mask.len(),
        }
    }

    /// Selection from explicit physical indices; errors unless they are
    /// strictly increasing and in bounds (the invariants every consumer
    /// relies on for panic-free gathers).
    pub fn from_indices(indices: Vec<u32>, total: usize) -> Result<SelectionVector> {
        for pair in indices.windows(2) {
            if pair[0] >= pair[1] {
                return Err(CiError::Exec(format!(
                    "selection indices must be strictly increasing, got {} then {}",
                    pair[0], pair[1]
                )));
            }
        }
        if let Some(&last) = indices.last() {
            if last as usize >= total {
                return Err(CiError::Exec(format!(
                    "selection index {last} out of bounds for {total} rows"
                )));
            }
        }
        Ok(SelectionVector { indices, total })
    }

    /// Number of selected rows.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// `true` when no rows are selected.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Physical row count of the underlying batch.
    pub fn total(&self) -> usize {
        self.total
    }

    /// `true` when every physical row is selected.
    pub fn is_full(&self) -> bool {
        self.indices.len() == self.total
    }

    /// Selected fraction in `[0, 1]` (an empty batch counts as dense).
    pub fn density(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.indices.len() as f64 / self.total as f64
        }
    }

    /// Physical row of logical row `i`. Panics if `i >= len()`.
    pub fn physical(&self, i: usize) -> usize {
        self.indices[i] as usize
    }

    /// The selected physical rows, in order.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Iterates the selected physical rows in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.indices.iter().map(|&i| i as usize)
    }

    /// The bool-mask view over physical rows.
    pub fn to_mask(&self) -> Vec<bool> {
        let mut mask = vec![false; self.total];
        for &i in &self.indices {
            mask[i as usize] = true;
        }
        mask
    }

    /// Composes a further filter: `keep[j]` is the verdict for the `j`-th
    /// *selected* row. O(selected) — this is what makes a filter over an
    /// already-selected batch free of column copies.
    pub fn refine(&self, keep: &[bool]) -> Result<SelectionVector> {
        if keep.len() != self.indices.len() {
            return Err(CiError::Exec(format!(
                "selection refine mask has {} entries for {} selected rows",
                keep.len(),
                self.indices.len()
            )));
        }
        let indices = self
            .indices
            .iter()
            .zip(keep)
            .filter(|&(_, &k)| k)
            .map(|(&i, _)| i)
            .collect();
        Ok(SelectionVector {
            indices,
            total: self.total,
        })
    }

    /// Sub-range `[offset, offset + len)` of the *selected* rows (logical
    /// slicing, e.g. morsel splitting); shares no column data. Panics if
    /// `offset + len > self.len()` — callers validate against the logical
    /// row count first (as [`crate::batch::RecordBatch::slice`] does).
    pub fn slice(&self, offset: usize, len: usize) -> SelectionVector {
        assert!(
            offset + len <= self.indices.len(),
            "selection slice [{offset}, {}) out of bounds for {} selected rows",
            offset + len,
            self.indices.len()
        );
        SelectionVector {
            indices: self.indices[offset..offset + len].to_vec(),
            total: self.total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_round_trips_through_indices() {
        let mask = vec![true, false, false, true, true];
        let sel = SelectionVector::from_mask(&mask);
        assert_eq!(sel.len(), 3);
        assert_eq!(sel.total(), 5);
        assert_eq!(sel.indices(), &[0, 3, 4]);
        assert_eq!(sel.to_mask(), mask);
        assert_eq!(sel.iter().collect::<Vec<_>>(), vec![0, 3, 4]);
        assert_eq!(sel.physical(1), 3);
    }

    #[test]
    fn from_indices_validates() {
        assert!(SelectionVector::from_indices(vec![0, 2, 4], 5).is_ok());
        let unsorted = SelectionVector::from_indices(vec![2, 1], 5);
        assert!(unsorted.is_err());
        let dup = SelectionVector::from_indices(vec![1, 1], 5);
        assert!(dup.is_err());
        let oob = SelectionVector::from_indices(vec![1, 5], 5);
        assert!(oob.is_err());
    }

    #[test]
    fn refine_composes_over_selected_rows() {
        let sel = SelectionVector::from_mask(&[true, false, true, true, false]);
        // Verdicts for physical rows 0, 2, 3.
        let refined = sel.refine(&[false, true, true]).unwrap();
        assert_eq!(refined.indices(), &[2, 3]);
        assert_eq!(refined.total(), 5);
        assert!(sel.refine(&[true]).is_err(), "mask length checked");
    }

    #[test]
    fn density_full_and_empty() {
        let full = SelectionVector::from_mask(&[true, true]);
        assert!(full.is_full());
        assert_eq!(full.density(), 1.0);
        let none = SelectionVector::from_mask(&[false, false]);
        assert!(none.is_empty());
        assert_eq!(none.density(), 0.0);
        let empty_batch = SelectionVector::from_mask(&[]);
        assert_eq!(empty_batch.density(), 1.0, "empty batches count as dense");
        assert!(empty_batch.is_full());
    }

    #[test]
    fn slice_is_logical() {
        let sel = SelectionVector::from_mask(&[true, false, true, true, true]);
        let s = sel.slice(1, 2);
        assert_eq!(s.indices(), &[2, 3]);
        assert_eq!(s.total(), 5);
    }
}
