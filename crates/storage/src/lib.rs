//! Hybrid-columnar storage over the simulated object store.
//!
//! Figure 3's bottom layer: "the storage layer, hosted by cloud object
//! storage services ... keeps the user data in hybrid-columnar formats such
//! as Parquet and ORC". This crate implements the equivalent:
//!
//! * typed [`column::ColumnData`] vectors and [`batch::RecordBatch`]es with
//!   `Arc`-shared columns, per-table [`dict::Dictionary`] string interning,
//!   and late-materializing filters via [`selection::SelectionVector`]
//!   (the zero-copy data path),
//! * self-describing encoded [`pages`] (plain / dict / run-length codecs
//!   with a size-based picker) and the exchange [`pages::WireEncoder`] —
//!   the byte format that lets scans, exchanges, and bills charge *encoded*
//!   sizes instead of decoded ones,
//! * [`partition::MicroPartition`]s — the unit of object-store I/O — carrying
//!   zone maps (per-column min/max) and size metadata,
//! * [`table::Table`]s assembled from micro-partitions, with partition
//!   pruning against predicate ranges ([`pruning`]).
//!
//! Design decision: columns are **non-nullable**. The paper's arguments are
//! about cost and parallelism, not SQL edge semantics; omitting null bitmaps
//! keeps every operator and model in the workspace materially simpler
//! without affecting any experiment's shape.

pub mod batch;
pub mod column;
pub mod dict;
pub mod pages;
pub mod partition;
pub mod pruning;
pub mod schema;
pub mod selection;
pub mod table;
pub mod tiers;
pub mod value;

pub use batch::RecordBatch;
pub use column::ColumnData;
pub use dict::Dictionary;
pub use pages::{EncodedPage, PageCodec, WireEncoder};
pub use partition::MicroPartition;
pub use pruning::ColumnBound;
pub use schema::{Field, Schema};
pub use selection::SelectionVector;
pub use table::{Table, TableBuilder};
pub use tiers::{
    DiskSource, MemSource, ObjectStoreDir, PageSource, PageSourceMode, ServedFrom, StoredDict,
    StoredTable, TierStore, TieredSource,
};
pub use value::{DataType, Value};
