//! Micro-partitions: the unit of object-store storage and I/O.
//!
//! Mirrors Snowflake's micro-partitions / Parquet row groups: a horizontal
//! slice of a table stored as one object, carrying a zone map (per-column
//! min/max) used for pruning. In this reproduction the payload lives in
//! memory, but every byte is accounted for so the object-store model can
//! charge realistic fetch times.

use crate::batch::RecordBatch;
use crate::pruning::ColumnBound;
use crate::value::Value;

/// Per-column [min, max] of one micro-partition.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    /// `(min, max)` per column, in schema order.
    pub ranges: Vec<(Value, Value)>,
}

impl ZoneMap {
    /// Computes the zone map of a batch. Empty batches get an empty map.
    pub fn of(batch: &RecordBatch) -> ZoneMap {
        let ranges = batch.columns().iter().filter_map(|c| c.min_max()).collect();
        ZoneMap { ranges }
    }

    /// Could a row satisfying all `bounds` exist in this partition?
    pub fn may_contain(&self, bounds: &[ColumnBound]) -> bool {
        bounds.iter().all(|b| {
            match self.ranges.get(b.column) {
                // No zone info for that column (empty partition): keep.
                None => true,
                Some((zmin, zmax)) => b.may_overlap(zmin, zmax),
            }
        })
    }
}

/// One stored micro-partition.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroPartition {
    /// The data (in-memory stand-in for the object payload).
    pub batch: RecordBatch,
    /// Zone map over `batch`.
    pub zone_map: ZoneMap,
    /// Encoded object size in bytes (what a fetch transfers).
    pub stored_bytes: u64,
}

impl MicroPartition {
    /// Wraps a batch into a partition, computing its metadata.
    pub fn from_batch(batch: RecordBatch) -> MicroPartition {
        let zone_map = ZoneMap::of(&batch);
        let stored_bytes = batch.byte_size() as u64;
        MicroPartition {
            batch,
            zone_map,
            stored_bytes,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.batch.rows()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::column::ColumnData;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn part(ids: Vec<i64>) -> MicroPartition {
        let schema = Arc::new(Schema::of(vec![Field::new("id", DataType::Int64)]));
        MicroPartition::from_batch(RecordBatch::new(schema, vec![ColumnData::Int64(ids)]).unwrap())
    }

    #[test]
    fn zone_map_is_min_max() {
        let p = part(vec![5, 1, 9]);
        assert_eq!(p.zone_map.ranges, vec![(Value::Int(1), Value::Int(9))]);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.stored_bytes, 24);
    }

    #[test]
    fn pruning_respects_bounds() {
        let p = part(vec![10, 20, 30]);
        assert!(p
            .zone_map
            .may_contain(&[ColumnBound::eq(0, Value::Int(20))]));
        assert!(!p
            .zone_map
            .may_contain(&[ColumnBound::eq(0, Value::Int(31))]));
        // Conjunction: any failing bound prunes.
        assert!(!p.zone_map.may_contain(&[
            ColumnBound::eq(0, Value::Int(20)),
            ColumnBound::eq(0, Value::Int(99)),
        ]));
        // No bounds: always kept.
        assert!(p.zone_map.may_contain(&[]));
    }

    #[test]
    fn empty_partition_is_conservative() {
        let p = part(vec![]);
        assert!(p.zone_map.may_contain(&[ColumnBound::eq(0, Value::Int(1))]));
    }
}
