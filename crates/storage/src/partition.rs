//! Micro-partitions: the unit of object-store storage and I/O.
//!
//! Mirrors Snowflake's micro-partitions / Parquet row groups: a horizontal
//! slice of a table stored as one object, carrying a zone map (per-column
//! min/max) used for pruning. In this reproduction the payload lives in
//! memory, but every byte is accounted for so the object-store model can
//! charge realistic fetch times.
//!
//! Two byte figures describe one partition, and they answer different
//! questions:
//!
//! * [`MicroPartition::stored_bytes`] — the **logical (decoded)** payload
//!   size, [`RecordBatch::byte_size`]. This is what decode produces, what
//!   flows through operators, and the size statistics/row-width estimates
//!   are defined over. It is encoding-invariant by construction.
//! * [`MicroPartition::encoded_bytes`] — the **billed (encoded)** object
//!   size: each column compressed under its size-picked page codec
//!   ([`crate::pages::best_page`]), summed. This is what a GET transfers,
//!   what scan-time and storage bills charge, and what pruning reports as
//!   saved I/O.
//!
//! The gap between the two is exactly the compression the cost model can
//! now reward.

use crate::batch::RecordBatch;
use crate::pages::{self, EncodedPage};
use crate::pruning::ColumnBound;
use crate::value::Value;

/// Per-column [min, max] of one micro-partition.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    /// `(min, max)` per column, in schema order.
    pub ranges: Vec<(Value, Value)>,
}

impl ZoneMap {
    /// Computes the zone map of a batch. Empty batches get an empty map.
    pub fn of(batch: &RecordBatch) -> ZoneMap {
        let ranges = batch.columns().iter().filter_map(|c| c.min_max()).collect();
        ZoneMap { ranges }
    }

    /// Could a row satisfying all `bounds` exist in this partition?
    pub fn may_contain(&self, bounds: &[ColumnBound]) -> bool {
        bounds.iter().all(|b| {
            match self.ranges.get(b.column) {
                // No zone info for that column (empty partition): keep.
                None => true,
                Some((zmin, zmax)) => b.may_overlap(zmin, zmax),
            }
        })
    }
}

/// One stored micro-partition.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroPartition {
    /// The data (in-memory stand-in for the object payload).
    pub batch: RecordBatch,
    /// Zone map over `batch`.
    pub zone_map: ZoneMap,
    /// Logical (decoded) payload size in bytes. **Not** what a fetch
    /// transfers — see [`MicroPartition::encoded_bytes`] and the module docs
    /// for the distinction.
    pub stored_bytes: u64,
    /// Encoded object size in bytes (what a GET transfers and scans bill):
    /// the sum of [`MicroPartition::pages`] sizes.
    pub encoded_bytes: u64,
    /// Per-column encoded-page metadata under the size-based codec picker,
    /// in schema order. Value-level (encoding-invariant) like the zone map:
    /// a dict-encoded and a plain column holding the same strings produce
    /// identical page accounting.
    pub pages: Vec<EncodedPage>,
}

impl MicroPartition {
    /// Wraps a batch into a partition, computing its metadata (zone map,
    /// decoded size, and per-column best-codec page sizes). Selected batches
    /// are compacted first — stored objects are dense.
    pub fn from_batch(batch: RecordBatch) -> MicroPartition {
        let batch = if batch.selection().is_some() {
            batch.compacted()
        } else {
            batch
        };
        let zone_map = ZoneMap::of(&batch);
        let stored_bytes = batch.byte_size() as u64;
        let pages: Vec<EncodedPage> = batch
            .columns()
            .iter()
            .map(|c| pages::best_page(c))
            .collect();
        let encoded_bytes = pages.iter().map(|p| p.encoded_bytes).sum();
        MicroPartition {
            batch,
            zone_map,
            stored_bytes,
            encoded_bytes,
            pages,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.batch.rows()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::column::ColumnData;
    use crate::pages::PageCodec;
    use crate::schema::{Field, Schema};
    use crate::value::DataType;

    fn part(ids: Vec<i64>) -> MicroPartition {
        let schema = Arc::new(Schema::of(vec![Field::new("id", DataType::Int64)]));
        MicroPartition::from_batch(RecordBatch::new(schema, vec![ColumnData::Int64(ids)]).unwrap())
    }

    #[test]
    fn zone_map_is_min_max() {
        let p = part(vec![5, 1, 9]);
        assert_eq!(p.zone_map.ranges, vec![(Value::Int(1), Value::Int(9))]);
        assert_eq!(p.rows(), 3);
        assert_eq!(p.stored_bytes, 24);
    }

    #[test]
    fn stored_is_logical_encoded_is_billed() {
        // A constant column: decoded size is rows × 8, encoded collapses to
        // a width-0 frame-of-reference page.
        let p = part(vec![42; 1024]);
        assert_eq!(p.stored_bytes, 1024 * 8, "stored_bytes stays logical");
        assert!(
            p.encoded_bytes < p.stored_bytes / 10,
            "encoded {} vs stored {}",
            p.encoded_bytes,
            p.stored_bytes
        );
        assert_eq!(p.pages.len(), 1);
        assert_eq!(p.pages[0].codec, PageCodec::For);
        assert_eq!(p.pages[0].decoded_bytes, p.stored_bytes);
        assert_eq!(p.pages[0].rows, 1024);
        assert_eq!(p.encoded_bytes, p.pages[0].encoded_bytes);
    }

    #[test]
    fn sorted_int_partitions_bill_delta_pages() {
        // A clustered (sorted) id column: the Delta codec collapses it far
        // below Plain, so the billed fetch sees the recluster win.
        let p = part((0..4096).collect());
        assert_eq!(p.pages[0].codec, PageCodec::Delta);
        assert!(
            p.encoded_bytes * 4 < p.stored_bytes,
            "sorted ints must encode >= 4x smaller: {} vs {}",
            p.encoded_bytes,
            p.stored_bytes
        );
    }

    #[test]
    fn page_accounting_is_encoding_invariant() {
        let schema = Arc::new(Schema::of(vec![Field::new("s", DataType::Utf8)]));
        let vals: Vec<String> = (0..100).map(|i| format!("grp{}", i % 4)).collect();
        let plain = MicroPartition::from_batch(
            RecordBatch::new(schema.clone(), vec![ColumnData::Utf8(vals.clone())]).unwrap(),
        );
        let dicted = MicroPartition::from_batch(
            RecordBatch::new(schema, vec![ColumnData::Utf8(vals).dict_encoded()]).unwrap(),
        );
        assert_eq!(plain.encoded_bytes, dicted.encoded_bytes);
        assert_eq!(plain.pages, dicted.pages);
        assert_eq!(plain.pages[0].codec, PageCodec::Dict);
        assert!(plain.encoded_bytes < plain.stored_bytes);
    }

    #[test]
    fn pruning_respects_bounds() {
        let p = part(vec![10, 20, 30]);
        assert!(p
            .zone_map
            .may_contain(&[ColumnBound::eq(0, Value::Int(20))]));
        assert!(!p
            .zone_map
            .may_contain(&[ColumnBound::eq(0, Value::Int(31))]));
        // Conjunction: any failing bound prunes.
        assert!(!p.zone_map.may_contain(&[
            ColumnBound::eq(0, Value::Int(20)),
            ColumnBound::eq(0, Value::Int(99)),
        ]));
        // No bounds: always kept.
        assert!(p.zone_map.may_contain(&[]));
    }

    #[test]
    fn empty_partition_is_conservative() {
        let p = part(vec![]);
        assert!(p.zone_map.may_contain(&[ColumnBound::eq(0, Value::Int(1))]));
    }
}
