//! Tables: named collections of micro-partitions.

use std::sync::Arc;

use ci_types::{CiError, Result, TableId};

use crate::batch::RecordBatch;
use crate::column::ColumnData;
use crate::dict::{Dictionary, IntDict};
use crate::partition::MicroPartition;
use crate::pruning::ColumnBound;
use crate::schema::SchemaRef;
use crate::value::DataType;

/// A stored table.
#[derive(Debug, Clone)]
pub struct Table {
    /// Catalog id.
    pub id: TableId,
    /// Table name.
    pub name: String,
    /// Schema shared by all partitions.
    pub schema: SchemaRef,
    /// The micro-partitions, in storage order.
    pub partitions: Vec<MicroPartition>,
    /// Column index the table is physically clustered (sorted) by, if any.
    /// Reclustering (§4's example tuning action) sets this and tightens
    /// zone maps.
    pub clustered_by: Option<usize>,
}

/// Result of partition pruning: which partitions survive and how much was
/// skipped, stated in both byte currencies — logical bytes for data-volume
/// intuition, encoded bytes for what the skipped GETs would actually have
/// transferred (the billed savings).
#[derive(Debug, Clone, PartialEq)]
pub struct PruneOutcome {
    /// Indices of surviving partitions.
    pub kept: Vec<usize>,
    /// Partitions skipped thanks to zone maps.
    pub pruned_partitions: usize,
    /// Logical (decoded) bytes that did not need decoding.
    pub pruned_bytes: u64,
    /// Encoded bytes that did not need fetching — pruning savings in billed
    /// bytes.
    pub pruned_encoded_bytes: u64,
}

impl Table {
    /// Total row count.
    pub fn row_count(&self) -> u64 {
        self.partitions.iter().map(|p| p.rows() as u64).sum()
    }

    /// Total logical (decoded) bytes across partitions.
    pub fn total_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.stored_bytes).sum()
    }

    /// Total encoded bytes across partitions — the object-store footprint
    /// that storage bills and full-table I/O (recluster, MV builds) pay.
    pub fn total_encoded_bytes(&self) -> u64 {
        self.partitions.iter().map(|p| p.encoded_bytes).sum()
    }

    /// Number of micro-partitions.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Applies zone-map pruning for a conjunction of column bounds.
    pub fn prune(&self, bounds: &[ColumnBound]) -> PruneOutcome {
        let mut kept = Vec::new();
        let mut pruned_partitions = 0usize;
        let mut pruned_bytes = 0u64;
        let mut pruned_encoded_bytes = 0u64;
        for (i, p) in self.partitions.iter().enumerate() {
            if p.zone_map.may_contain(bounds) {
                kept.push(i);
            } else {
                pruned_partitions += 1;
                pruned_bytes += p.stored_bytes;
                pruned_encoded_bytes += p.encoded_bytes;
            }
        }
        PruneOutcome {
            kept,
            pruned_partitions,
            pruned_bytes,
            pruned_encoded_bytes,
        }
    }

    /// Materializes the whole table as one batch (tests / oracle execution).
    pub fn to_batch(&self) -> Result<RecordBatch> {
        if self.partitions.is_empty() {
            return Ok(RecordBatch::empty(self.schema.clone()));
        }
        let batches: Vec<RecordBatch> = self.partitions.iter().map(|p| p.batch.clone()).collect();
        RecordBatch::concat(&batches)
    }

    /// Dictionary-encodes every `Utf8` column: one [`Dictionary`] per column
    /// is interned across all partitions (in storage order, so the encoding
    /// is deterministic) and shared by every partition's batch via `Arc`.
    /// Values, zone maps, and `stored_bytes` are unchanged — only the
    /// in-memory representation gets cheaper to filter/take/slice. Called by
    /// the catalog at registration ("interned per table at load"); idempotent.
    pub fn dict_encoded(mut self) -> Table {
        let string_cols: Vec<usize> = (0..self.schema.arity())
            .filter(|&i| self.schema.field(i).data_type == DataType::Utf8)
            .filter(|&i| {
                self.partitions
                    .iter()
                    .any(|p| matches!(p.batch.column(i), ColumnData::Utf8(_)))
            })
            .collect();
        if string_cols.is_empty() {
            return self;
        }
        // Intern each string column across partitions, top to bottom.
        let mut encoded: Vec<Vec<Arc<ColumnData>>> = Vec::with_capacity(string_cols.len());
        for &ci in &string_cols {
            let mut dict = Dictionary::new();
            let mut per_part: Vec<Vec<u32>> = Vec::with_capacity(self.partitions.len());
            for p in &self.partitions {
                let ids = match p.batch.column(ci) {
                    ColumnData::Utf8(v) => v.iter().map(|s| dict.intern(s)).collect(),
                    ColumnData::Dict { ids, dict: d } => {
                        ids.iter().map(|&id| dict.intern(d.get(id))).collect()
                    }
                    other => unreachable!("Utf8 schema field holds {}", other.data_type()),
                };
                per_part.push(ids);
            }
            let dict = Arc::new(dict);
            encoded.push(
                per_part
                    .into_iter()
                    .map(|ids| {
                        Arc::new(ColumnData::Dict {
                            ids,
                            dict: dict.clone(),
                        })
                    })
                    .collect(),
            );
        }
        // Rebuild partitions with the encoded columns swapped in. Zone maps,
        // stored_bytes, and page accounting are value-level quantities (the
        // page codec picker sees through string encodings), so they are
        // preserved verbatim rather than recomputed.
        for (pi, part) in self.partitions.iter_mut().enumerate() {
            let mut columns: Vec<Arc<ColumnData>> = part.batch.columns().to_vec();
            for (k, &ci) in string_cols.iter().enumerate() {
                columns[ci] = encoded[k][pi].clone();
            }
            let batch = RecordBatch::from_arcs(part.batch.schema().clone(), columns)
                .expect("dict encoding preserves shape");
            part.batch = batch;
        }
        self
    }

    /// Dictionary-encodes every `Int64` column whose exact NDV is at most
    /// `max_ndv`: one [`IntDict`] per qualifying column is interned across
    /// all partitions (in storage order, so the encoding is deterministic)
    /// and shared by every partition's batch via `Arc` — the integer twin of
    /// [`Table::dict_encoded`], for dates and enum codes. Values, zone maps,
    /// `stored_bytes`, and page accounting are unchanged (the page codec
    /// picker sees through int encodings exactly as it does string ones).
    /// Opt-in rather than applied at catalog registration; idempotent.
    pub fn dict_encoded_ints(mut self, max_ndv: usize) -> Table {
        let int_cols: Vec<usize> = (0..self.schema.arity())
            .filter(|&i| self.schema.field(i).data_type == DataType::Int64)
            .filter(|&i| {
                self.partitions
                    .iter()
                    .any(|p| matches!(p.batch.column(i), ColumnData::Int64(_)))
            })
            .collect();
        if int_cols.is_empty() {
            return self;
        }
        for ci in int_cols {
            let mut dict = IntDict::new();
            let mut per_part: Vec<Vec<u32>> = Vec::with_capacity(self.partitions.len());
            for p in &self.partitions {
                let ids: Vec<u32> = match p.batch.column(ci) {
                    ColumnData::Int64(v) => v.iter().map(|&x| dict.intern(x)).collect(),
                    ColumnData::DictInt { ids, dict: d } => {
                        ids.iter().map(|&id| dict.intern(d.get(id))).collect()
                    }
                    other => unreachable!("Int64 schema field holds {}", other.data_type()),
                };
                per_part.push(ids);
            }
            if dict.len() > max_ndv {
                continue;
            }
            let dict = Arc::new(dict);
            for (pi, part) in self.partitions.iter_mut().enumerate() {
                let mut columns: Vec<Arc<ColumnData>> = part.batch.columns().to_vec();
                columns[ci] = Arc::new(ColumnData::DictInt {
                    ids: std::mem::take(&mut per_part[pi]),
                    dict: dict.clone(),
                });
                part.batch = RecordBatch::from_arcs(part.batch.schema().clone(), columns)
                    .expect("dict encoding preserves shape");
            }
        }
        self
    }

    /// The shared int dictionary of column `i`, when every partition holds
    /// the same dict encoding for it (the invariant
    /// [`Table::dict_encoded_ints`] establishes).
    pub fn column_int_dictionary(&self, i: usize) -> Option<&Arc<IntDict>> {
        let mut parts = self.partitions.iter();
        let (_, first) = parts.next()?.batch.column(i).as_int_dict()?;
        for p in parts {
            let (_, d) = p.batch.column(i).as_int_dict()?;
            if !Arc::ptr_eq(first, d) {
                return None;
            }
        }
        Some(first)
    }

    /// The shared dictionary of column `i`, when every partition holds the
    /// same dict encoding for it (the invariant [`Table::dict_encoded`]
    /// establishes).
    pub fn column_dictionary(&self, i: usize) -> Option<&Arc<Dictionary>> {
        let mut parts = self.partitions.iter();
        let (_, first) = parts.next()?.batch.column(i).as_dict()?;
        for p in parts {
            let (_, d) = p.batch.column(i).as_dict()?;
            if !Arc::ptr_eq(first, d) {
                return None;
            }
        }
        Some(first)
    }

    /// Rebuilds the table physically sorted by `column`, re-chunked into
    /// partitions of `rows_per_partition`. This is the §4 "recluster" tuning
    /// action: the data is identical, but zone maps on the cluster column
    /// become tight, so selective scans prune far more.
    pub fn reclustered_by(&self, column: usize, rows_per_partition: usize) -> Result<Table> {
        if column >= self.schema.arity() {
            return Err(CiError::Catalog(format!(
                "recluster column {column} out of range"
            )));
        }
        if rows_per_partition == 0 {
            return Err(CiError::Config("rows_per_partition must be > 0".into()));
        }
        let all = self.to_batch()?;
        let mut indices: Vec<usize> = (0..all.rows()).collect();
        let key = all.column(column);
        indices.sort_by(|&a, &b| {
            key.value(a)
                .partial_cmp_sql(&key.value(b))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let sorted = all.take(&indices)?;
        let mut partitions = Vec::new();
        let mut offset = 0;
        while offset < sorted.rows() {
            let len = rows_per_partition.min(sorted.rows() - offset);
            partitions.push(MicroPartition::from_batch(sorted.slice(offset, len)?));
            offset += len;
        }
        Ok(Table {
            id: self.id,
            name: self.name.clone(),
            schema: self.schema.clone(),
            partitions,
            clustered_by: Some(column),
        })
    }
}

/// Builds a table by appending batches, chunking into micro-partitions.
#[derive(Debug)]
pub struct TableBuilder {
    id: TableId,
    name: String,
    schema: SchemaRef,
    rows_per_partition: usize,
    pending: Vec<RecordBatch>,
    pending_rows: usize,
    partitions: Vec<MicroPartition>,
}

impl TableBuilder {
    /// Starts a builder. `rows_per_partition` controls micro-partition size
    /// (object granularity for I/O models and pruning resolution).
    pub fn new(
        id: TableId,
        name: impl Into<String>,
        schema: SchemaRef,
        rows_per_partition: usize,
    ) -> Result<TableBuilder> {
        if rows_per_partition == 0 {
            return Err(CiError::Config("rows_per_partition must be > 0".into()));
        }
        Ok(TableBuilder {
            id,
            name: name.into(),
            schema,
            rows_per_partition,
            pending: Vec::new(),
            pending_rows: 0,
            partitions: Vec::new(),
        })
    }

    /// Appends a batch (schema must match).
    pub fn append(&mut self, batch: RecordBatch) -> Result<()> {
        if batch.schema().as_ref() != self.schema.as_ref() {
            return Err(CiError::Catalog(format!(
                "append schema mismatch for table '{}'",
                self.name
            )));
        }
        self.pending_rows += batch.rows();
        self.pending.push(batch);
        while self.pending_rows >= self.rows_per_partition {
            self.flush_one()?;
        }
        Ok(())
    }

    /// Flushes exactly one full partition from the pending buffer.
    fn flush_one(&mut self) -> Result<()> {
        let combined = RecordBatch::concat(&self.pending)?;
        let part = combined.slice(0, self.rows_per_partition)?;
        let rest_len = combined.rows() - self.rows_per_partition;
        let rest = combined.slice(self.rows_per_partition, rest_len)?;
        self.partitions.push(MicroPartition::from_batch(part));
        self.pending_rows = rest.rows();
        self.pending = if rest.is_empty() {
            Vec::new()
        } else {
            vec![rest]
        };
        Ok(())
    }

    /// Finishes the table, flushing any remainder as a final short partition.
    pub fn finish(mut self) -> Result<Table> {
        if self.pending_rows > 0 {
            let combined = RecordBatch::concat(&self.pending)?;
            self.partitions.push(MicroPartition::from_batch(combined));
        }
        Ok(Table {
            id: self.id,
            name: self.name,
            schema: self.schema,
            partitions: self.partitions,
            clustered_by: None,
        })
    }
}

/// Builds a single-partition table directly from a batch (test fixtures).
pub fn table_from_batch(id: TableId, name: &str, batch: RecordBatch) -> Table {
    Table {
        id,
        name: name.to_owned(),
        schema: batch.schema().clone(),
        partitions: vec![MicroPartition::from_batch(batch)],
        clustered_by: None,
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;
    use crate::column::ColumnData;
    use crate::schema::{Field, Schema};
    use crate::value::{DataType, Value};

    fn schema() -> SchemaRef {
        Arc::new(Schema::of(vec![Field::new("id", DataType::Int64)]))
    }

    fn batch(ids: Vec<i64>) -> RecordBatch {
        RecordBatch::new(schema(), vec![ColumnData::Int64(ids)]).unwrap()
    }

    #[test]
    fn builder_chunks_into_partitions() {
        let mut b = TableBuilder::new(TableId::new(0), "t", schema(), 3).unwrap();
        b.append(batch(vec![1, 2])).unwrap();
        b.append(batch(vec![3, 4, 5, 6, 7])).unwrap();
        let t = b.finish().unwrap();
        assert_eq!(t.partition_count(), 3); // 3 + 3 + 1
        assert_eq!(t.row_count(), 7);
        assert_eq!(t.partitions[0].rows(), 3);
        assert_eq!(t.partitions[2].rows(), 1);
        // Order preserved end-to-end.
        let all = t.to_batch().unwrap();
        assert_eq!(all.column(0), &ColumnData::Int64(vec![1, 2, 3, 4, 5, 6, 7]));
    }

    #[test]
    fn builder_rejects_schema_mismatch() {
        let other = Arc::new(Schema::of(vec![Field::new("x", DataType::Float64)]));
        let mut b = TableBuilder::new(TableId::new(0), "t", schema(), 3).unwrap();
        let bad = RecordBatch::new(other, vec![ColumnData::Float64(vec![1.0])]).unwrap();
        assert!(b.append(bad).is_err());
    }

    #[test]
    fn pruning_on_unsorted_data_is_weak() {
        // Interleaved values: every partition spans the full range -> no pruning.
        let mut b = TableBuilder::new(TableId::new(0), "t", schema(), 2).unwrap();
        b.append(batch(vec![1, 100, 2, 99, 3, 98])).unwrap();
        let t = b.finish().unwrap();
        // 50 sits inside every partition's [min, max] span: nothing prunes.
        let out = t.prune(&[ColumnBound::eq(0, Value::Int(50))]);
        assert_eq!(out.pruned_partitions, 0, "zone maps all span [low, high]");
    }

    #[test]
    fn recluster_tightens_zone_maps() {
        let mut b = TableBuilder::new(TableId::new(0), "t", schema(), 2).unwrap();
        b.append(batch(vec![1, 100, 2, 99, 3, 98])).unwrap();
        let t = b.finish().unwrap().reclustered_by(0, 2).unwrap();
        assert_eq!(t.clustered_by, Some(0));
        assert_eq!(t.partition_count(), 3);
        let out = t.prune(&[ColumnBound::eq(0, Value::Int(1))]);
        assert_eq!(out.kept, vec![0], "only the first partition can hold 1");
        assert_eq!(out.pruned_partitions, 2);
        assert!(out.pruned_bytes > 0);
        // Billed savings are reported alongside logical ones (tiny pages can
        // exceed their logical size by the fixed page header).
        let expected: u64 = t.partitions[1..].iter().map(|p| p.encoded_bytes).sum();
        assert_eq!(out.pruned_encoded_bytes, expected);
        // Reclustering preserves the multiset of rows.
        let mut vals = t.to_batch().unwrap().column(0).as_i64().unwrap().to_vec();
        vals.sort_unstable();
        assert_eq!(vals, vec![1, 2, 3, 98, 99, 100]);
    }

    #[test]
    fn recluster_validates_inputs() {
        let t = table_from_batch(TableId::new(0), "t", batch(vec![1]));
        assert!(t.reclustered_by(9, 2).is_err());
        assert!(t.reclustered_by(0, 0).is_err());
    }

    #[test]
    fn dict_encoding_shares_one_dictionary_across_partitions() {
        let schema = Arc::new(Schema::of(vec![
            Field::new("id", DataType::Int64),
            Field::new("grp", DataType::Utf8),
        ]));
        let mut b = TableBuilder::new(TableId::new(0), "t", schema.clone(), 2).unwrap();
        b.append(
            RecordBatch::new(
                schema,
                vec![
                    ColumnData::Int64(vec![1, 2, 3, 4, 5]),
                    ColumnData::Utf8(vec![
                        "b".into(),
                        "a".into(),
                        "b".into(),
                        "c".into(),
                        "a".into(),
                    ]),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        let plain = b.finish().unwrap();
        let plain_bytes = plain.total_bytes();
        let plain_encoded = plain.total_encoded_bytes();
        let plain_rows = plain.to_batch().unwrap();

        let t = plain.dict_encoded();
        assert_eq!(t.partition_count(), 3);
        let dict = t.column_dictionary(1).expect("shared dict").clone();
        assert_eq!(dict.len(), 3, "b, a, c interned once each");
        for p in &t.partitions {
            let (_, d) = p.batch.column(1).as_dict().expect("dict-encoded");
            assert!(Arc::ptr_eq(d, &dict));
        }
        // Values, byte accounting (both currencies), and zone maps are
        // unchanged.
        assert_eq!(t.total_bytes(), plain_bytes);
        assert_eq!(t.total_encoded_bytes(), plain_encoded);
        assert_eq!(t.to_batch().unwrap(), plain_rows);
        assert_eq!(
            t.partitions[0].zone_map.ranges[1],
            (Value::from("a"), Value::from("b"))
        );
        // Idempotent, and the int column is untouched.
        let again = t.clone().dict_encoded();
        assert!(Arc::ptr_eq(
            again.column_dictionary(1).unwrap(),
            t.column_dictionary(1).unwrap()
        ));
        assert!(t.column_dictionary(0).is_none());
        // Reclustering preserves the shared dictionary.
        let re = t.reclustered_by(1, 2).unwrap();
        assert!(Arc::ptr_eq(re.column_dictionary(1).unwrap(), &dict));
    }

    #[test]
    fn empty_table_materializes_empty() {
        let t = TableBuilder::new(TableId::new(0), "t", schema(), 4)
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(t.row_count(), 0);
        assert!(t.to_batch().unwrap().is_empty());
        assert_eq!(t.prune(&[]).kept.len(), 0);
    }
}
