//! Zone-map pruning predicates.
//!
//! A [`ColumnBound`] is the planner's distilled view of a conjunctive filter
//! on one column: an optional lower and upper bound. Micro-partitions whose
//! zone map ([min, max] per column) cannot intersect the bound are skipped
//! without fetching them from the object store — the standard trick that
//! makes reclustering (§4's example tuning action) valuable: sorting a table
//! by an attribute tightens zone maps and multiplies pruning power.

use crate::value::Value;

/// Inclusive-or-exclusive endpoint of a bound.
#[derive(Debug, Clone, PartialEq)]
pub enum Endpoint {
    /// No bound on this side.
    Unbounded,
    /// Bound including the value (`>=` / `<=`).
    Inclusive(Value),
    /// Bound excluding the value (`>` / `<`).
    Exclusive(Value),
}

/// A per-column range constraint extracted from a predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnBound {
    /// Index of the constrained column in the table schema.
    pub column: usize,
    /// Lower endpoint.
    pub lower: Endpoint,
    /// Upper endpoint.
    pub upper: Endpoint,
}

impl ColumnBound {
    /// An equality constraint `col = v`.
    pub fn eq(column: usize, v: Value) -> ColumnBound {
        ColumnBound {
            column,
            lower: Endpoint::Inclusive(v.clone()),
            upper: Endpoint::Inclusive(v),
        }
    }

    /// A range constraint; `None` endpoints are unbounded, the `bool`
    /// flags inclusivity.
    pub fn range(
        column: usize,
        lower: Option<(Value, bool)>,
        upper: Option<(Value, bool)>,
    ) -> ColumnBound {
        let mk = |e: Option<(Value, bool)>| match e {
            None => Endpoint::Unbounded,
            Some((v, true)) => Endpoint::Inclusive(v),
            Some((v, false)) => Endpoint::Exclusive(v),
        };
        ColumnBound {
            column,
            lower: mk(lower),
            upper: mk(upper),
        }
    }

    /// Can a partition with zone map `[zmin, zmax]` on this column contain a
    /// qualifying row? Conservative: returns `true` when values are
    /// incomparable (never prunes what it cannot prove out).
    pub fn may_overlap(&self, zmin: &Value, zmax: &Value) -> bool {
        // Fail the partition only if zmax < lower or zmin > upper.
        let below = match &self.lower {
            Endpoint::Unbounded => false,
            Endpoint::Inclusive(lo) => {
                matches!(zmax.partial_cmp_sql(lo), Some(std::cmp::Ordering::Less))
            }
            Endpoint::Exclusive(lo) => matches!(
                zmax.partial_cmp_sql(lo),
                Some(std::cmp::Ordering::Less) | Some(std::cmp::Ordering::Equal)
            ),
        };
        if below {
            return false;
        }
        let above = match &self.upper {
            Endpoint::Unbounded => false,
            Endpoint::Inclusive(hi) => {
                matches!(zmin.partial_cmp_sql(hi), Some(std::cmp::Ordering::Greater))
            }
            Endpoint::Exclusive(hi) => matches!(
                zmin.partial_cmp_sql(hi),
                Some(std::cmp::Ordering::Greater) | Some(std::cmp::Ordering::Equal)
            ),
        };
        !above
    }

    /// Does a single value satisfy this bound? Used by tests to cross-check
    /// pruning against row-level evaluation.
    pub fn contains(&self, v: &Value) -> bool {
        use std::cmp::Ordering::*;
        let lower_ok = match &self.lower {
            Endpoint::Unbounded => true,
            Endpoint::Inclusive(lo) => {
                matches!(v.partial_cmp_sql(lo), Some(Greater) | Some(Equal))
            }
            Endpoint::Exclusive(lo) => matches!(v.partial_cmp_sql(lo), Some(Greater)),
        };
        let upper_ok = match &self.upper {
            Endpoint::Unbounded => true,
            Endpoint::Inclusive(hi) => {
                matches!(v.partial_cmp_sql(hi), Some(Less) | Some(Equal))
            }
            Endpoint::Exclusive(hi) => matches!(v.partial_cmp_sql(hi), Some(Less)),
        };
        lower_ok && upper_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_bound_overlap() {
        let b = ColumnBound::eq(0, Value::Int(50));
        assert!(b.may_overlap(&Value::Int(0), &Value::Int(100)));
        assert!(b.may_overlap(&Value::Int(50), &Value::Int(50)));
        assert!(!b.may_overlap(&Value::Int(51), &Value::Int(90)));
        assert!(!b.may_overlap(&Value::Int(0), &Value::Int(49)));
    }

    #[test]
    fn exclusive_endpoints_prune_boundary() {
        // col > 10: a zone ending exactly at 10 has no qualifying row.
        let b = ColumnBound::range(0, Some((Value::Int(10), false)), None);
        assert!(!b.may_overlap(&Value::Int(0), &Value::Int(10)));
        assert!(b.may_overlap(&Value::Int(0), &Value::Int(11)));
        // col < 10 mirrored.
        let c = ColumnBound::range(0, None, Some((Value::Int(10), false)));
        assert!(!c.may_overlap(&Value::Int(10), &Value::Int(20)));
        assert!(c.may_overlap(&Value::Int(9), &Value::Int(20)));
    }

    #[test]
    fn unbounded_never_prunes() {
        let b = ColumnBound::range(3, None, None);
        assert!(b.may_overlap(&Value::Int(i64::MIN), &Value::Int(i64::MAX)));
    }

    #[test]
    fn incomparable_types_are_conservative() {
        let b = ColumnBound::eq(0, Value::from("abc"));
        // Int zone map vs string bound: cannot prove disjoint, keep it.
        assert!(b.may_overlap(&Value::Int(0), &Value::Int(5)));
    }

    #[test]
    fn contains_matches_overlap_semantics() {
        let b = ColumnBound::range(0, Some((Value::Int(5), true)), Some((Value::Int(8), false)));
        assert!(!b.contains(&Value::Int(4)));
        assert!(b.contains(&Value::Int(5)));
        assert!(b.contains(&Value::Int(7)));
        assert!(!b.contains(&Value::Int(8)));
    }

    #[test]
    fn string_ranges() {
        let b = ColumnBound::range(1, Some((Value::from("m"), true)), None);
        assert!(!b.may_overlap(&Value::from("a"), &Value::from("c")));
        assert!(b.may_overlap(&Value::from("a"), &Value::from("z")));
    }
}
