//! Scalar values and data types.

use std::cmp::Ordering;
use std::fmt;

/// Column data types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE float.
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Estimated encoded width in bytes of one value of this type, used for
    /// data-volume accounting in the cost models. Strings use an assumed
    /// average payload; exact string bytes are tracked where data exists.
    pub fn width_estimate(self) -> usize {
        match self {
            DataType::Int64 | DataType::Float64 => 8,
            DataType::Utf8 => 16,
            DataType::Bool => 1,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "INT",
            DataType::Float64 => "DOUBLE",
            DataType::Utf8 => "VARCHAR",
            DataType::Bool => "BOOLEAN",
        };
        f.write_str(s)
    }
}

/// A single scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int64,
            Value::Float(_) => DataType::Float64,
            Value::Str(_) => DataType::Utf8,
            Value::Bool(_) => DataType::Bool,
        }
    }

    /// Encoded width in bytes (strings use their actual length).
    pub fn width(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len(),
            Value::Bool(_) => 1,
        }
    }

    /// Total order within a type; `Int` and `Float` compare numerically with
    /// each other (SQL numeric coercion). Cross-type comparisons otherwise
    /// return `None`.
    pub fn partial_cmp_sql(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => a.partial_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).partial_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.partial_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Numeric view (ints coerce to float), `None` for strings/bools.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Integer view, `None` unless the value is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The smaller of two comparable values (self if incomparable).
    pub fn min_sql(self, other: Value) -> Value {
        match self.partial_cmp_sql(&other) {
            Some(Ordering::Greater) => other,
            _ => self,
        }
    }

    /// The larger of two comparable values (self if incomparable).
    pub fn max_sql(self, other: Value) -> Value {
        match self.partial_cmp_sql(&other) {
            Some(Ordering::Less) => other,
            _ => self,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "'{v}'"),
            Value::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_of_value() {
        assert_eq!(Value::Int(1).data_type(), DataType::Int64);
        assert_eq!(Value::Float(1.0).data_type(), DataType::Float64);
        assert_eq!(Value::from("x").data_type(), DataType::Utf8);
        assert_eq!(Value::Bool(true).data_type(), DataType::Bool);
    }

    #[test]
    fn sql_comparison_coerces_numerics() {
        assert_eq!(
            Value::Int(2).partial_cmp_sql(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).partial_cmp_sql(&Value::Int(3)),
            Some(Ordering::Equal)
        );
        assert_eq!(Value::Int(1).partial_cmp_sql(&Value::from("a")), None);
    }

    #[test]
    fn min_max_sql() {
        assert_eq!(Value::Int(3).min_sql(Value::Int(5)), Value::Int(3));
        assert_eq!(Value::Int(3).max_sql(Value::Int(5)), Value::Int(5));
        assert_eq!(Value::from("b").max_sql(Value::from("a")), Value::from("b"));
    }

    #[test]
    fn widths() {
        assert_eq!(Value::Int(1).width(), 8);
        assert_eq!(Value::from("hello").width(), 5);
        assert_eq!(Value::Bool(true).width(), 1);
        assert_eq!(DataType::Utf8.width_estimate(), 16);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::from("abc").to_string(), "'abc'");
    }
}
