//! Encoded column pages and the exchange wire format.
//!
//! Until this subsystem existed, every byte the cost model saw was a
//! *decoded* byte: partitions billed `RecordBatch::byte_size`, scans fetched
//! decoded payloads, and exchanges charged decoded row widths — so the
//! optimizer could never reward compression, the dominant lever of real
//! cloud scan economics. A page is the self-describing encoded form of one
//! column chunk:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "CIPG"
//! 4       1     format version (1)
//! 5       1     codec tag   (0 = Plain, 1 = Dict, 2 = Rle)
//! 6       1     dtype tag   (0 = Int64, 1 = Float64, 2 = Utf8, 3 = Bool)
//! 7       1     flags (bit 0 = dictionary-by-reference, wire streams only)
//! 8       4     row count (u32 LE)
//! 12      ..    codec-specific payload
//! ```
//!
//! Payloads (all integers little-endian):
//!
//! * **Plain** — raw values: 8 bytes per `Int64`/`Float64` (floats as IEEE
//!   bits), 1 byte per `Bool`, and `u32` length + UTF-8 bytes per string.
//! * **Dict** — `u32` entry count, the distinct strings (`u32` length +
//!   bytes each, in first-appearance order), a `u8` bit width, then the
//!   per-row ids bit-packed LSB-first at that width. Encoding a column that
//!   is already dict-encoded writes only the entries its rows reference,
//!   remapped to dense local ids, so a partition page never ships the
//!   unreferenced tail of a table-wide dictionary.
//! * **Rle** — `u32` run count, then `u32` run length + one value encoding
//!   (as in Plain) per run. Wins on sorted / low-cardinality runs, e.g.
//!   cluster columns after a recluster tuning action.
//!
//! [`decode_column`] inverts [`encode_column`] for every codec and
//! [`ColumnData`] variant: values round-trip exactly (Dict pages decode back
//! to dict-encoded columns; Rle/Plain string pages decode to owned strings —
//! equal under the workspace's decoded-value column equality). Malformed
//! bytes are rejected with `Err`, never a panic.
//!
//! [`best_page`] is the size-based codec picker partitions use to account
//! `encoded_bytes`, and [`WireEncoder`] is the exchange wire format: dict
//! columns ship bit-packed ids plus their dictionary **once** per encoder
//! (one-time per (table, column) dictionary transfer), which is what lets
//! `exchange_wire_secs` see the shrunken payload.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ci_types::{CiError, Result};

use crate::batch::RecordBatch;
use crate::column::ColumnData;
use crate::dict::Dictionary;
use crate::value::DataType;

/// Magic bytes opening every encoded page.
pub const PAGE_MAGIC: [u8; 4] = *b"CIPG";
/// Current page format version.
pub const PAGE_VERSION: u8 = 1;
/// Fixed header size preceding every codec payload.
pub const PAGE_HEADER_BYTES: usize = 12;

/// The column encodings a page can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageCodec {
    /// Raw decoded values.
    Plain,
    /// Distinct-string dictionary + bit-packed per-row ids (strings only).
    Dict,
    /// Run-length encoded values.
    Rle,
}

impl PageCodec {
    fn tag(self) -> u8 {
        match self {
            PageCodec::Plain => 0,
            PageCodec::Dict => 1,
            PageCodec::Rle => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<PageCodec> {
        match tag {
            0 => Ok(PageCodec::Plain),
            1 => Ok(PageCodec::Dict),
            2 => Ok(PageCodec::Rle),
            other => Err(err(format!("unknown codec tag {other}"))),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PageCodec::Plain => "plain",
            PageCodec::Dict => "dict",
            PageCodec::Rle => "rle",
        }
    }

    /// The codecs applicable to a column of logical type `dt`, in the
    /// deterministic tie-break order the picker uses.
    pub fn candidates(dt: DataType) -> &'static [PageCodec] {
        match dt {
            DataType::Utf8 => &[PageCodec::Plain, PageCodec::Dict, PageCodec::Rle],
            _ => &[PageCodec::Plain, PageCodec::Rle],
        }
    }
}

/// Metadata of one encoded page: what a partition or catalog keeps to
/// account billed bytes without holding the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedPage {
    /// Codec the page is encoded with.
    pub codec: PageCodec,
    /// Total page size in bytes (header + payload) — what a fetch transfers.
    pub encoded_bytes: u64,
    /// Decoded payload size ([`ColumnData::byte_size`]) — what decode yields.
    pub decoded_bytes: u64,
    /// Rows in the page.
    pub rows: usize,
    /// Bytes of the inline dictionary section (0 for non-Dict codecs). The
    /// per-row wire width of a dict column is
    /// `(encoded_bytes - dict_bytes) / rows`.
    pub dict_bytes: u64,
}

fn err(msg: String) -> CiError {
    CiError::Storage(msg)
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    match tag {
        0 => Ok(DataType::Int64),
        1 => Ok(DataType::Float64),
        2 => Ok(DataType::Utf8),
        3 => Ok(DataType::Bool),
        other => Err(err(format!("unknown dtype tag {other}"))),
    }
}

/// Bits needed per id for a dictionary of `entries` distinct values.
pub fn id_bit_width(entries: usize) -> u32 {
    if entries <= 1 {
        0
    } else {
        usize::BITS - (entries - 1).leading_zeros()
    }
}

/// Bytes occupied by `rows` ids bit-packed at `width` bits.
pub fn packed_id_bytes(rows: usize, width: u32) -> u64 {
    (rows as u64 * width as u64).div_ceil(8)
}

/// Size in bytes of a serialized dictionary section (`u32` entry count plus
/// `u32` length + payload per entry) — the one-time transfer a wire exchange
/// of a dict column pays per (table, column).
pub fn dictionary_page_bytes(dict: &Dictionary) -> u64 {
    4 + dict
        .values()
        .iter()
        .map(|s| 4 + s.len() as u64)
        .sum::<u64>()
}

/// The distinct entries a column's rows reference, with their total
/// serialized entry bytes: `(entry_count, entry_bytes)`.
fn referenced_entries(col: &ColumnData) -> (usize, u64) {
    match col {
        ColumnData::Utf8(v) => {
            let mut seen: HashSet<&str> = HashSet::new();
            let mut bytes = 0u64;
            for s in v {
                if seen.insert(s) {
                    bytes += 4 + s.len() as u64;
                }
            }
            (seen.len(), bytes)
        }
        ColumnData::Dict { ids, dict } => {
            let mut seen = vec![false; dict.len()];
            let mut count = 0usize;
            let mut bytes = 0u64;
            for &id in ids {
                if !seen[id as usize] {
                    seen[id as usize] = true;
                    count += 1;
                    bytes += dict.value_bytes(id) as u64;
                }
            }
            (count, bytes)
        }
        _ => (0, 0),
    }
}

/// Number of equal-value runs in the column (1 run minimum when non-empty),
/// plus the total serialized bytes of one value per run.
fn rle_runs(col: &ColumnData) -> (u64, u64) {
    fn runs_by<T, K: PartialEq>(
        v: &[T],
        key: impl Fn(&T) -> K,
        width: impl Fn(&T) -> u64,
    ) -> (u64, u64) {
        let mut runs = 0u64;
        let mut bytes = 0u64;
        let mut prev: Option<K> = None;
        for x in v {
            let k = key(x);
            if prev.as_ref() != Some(&k) {
                runs += 1;
                bytes += width(x);
                prev = Some(k);
            }
        }
        (runs, bytes)
    }
    match col {
        ColumnData::Int64(v) => runs_by(v, |&x| x, |_| 8),
        ColumnData::Float64(v) => runs_by(v, |x| x.to_bits(), |_| 8),
        ColumnData::Bool(v) => runs_by(v, |&b| b, |_| 1),
        ColumnData::Utf8(v) => {
            // Adjacent &str comparison — this runs for every string column
            // of every partition build, so no per-row clones.
            let mut runs = 0u64;
            let mut bytes = 0u64;
            for (i, s) in v.iter().enumerate() {
                if i == 0 || v[i - 1] != *s {
                    runs += 1;
                    bytes += 4 + s.len() as u64;
                }
            }
            (runs, bytes)
        }
        ColumnData::Dict { ids, dict } => {
            let mut runs = 0u64;
            let mut bytes = 0u64;
            let mut prev: Option<u32> = None;
            for &id in ids {
                // Distinct ids always hold distinct strings (interning), so
                // id equality is value equality here.
                if prev != Some(id) {
                    runs += 1;
                    bytes += dict.value_bytes(id) as u64;
                    prev = Some(id);
                }
            }
            (runs, bytes)
        }
    }
}

/// Exact size in bytes of `encode_column(col, codec)` without materializing
/// the page (partitions account every column of every partition, so the
/// picker must not allocate payloads).
pub fn encoded_size(col: &ColumnData, codec: PageCodec) -> Result<u64> {
    let header = PAGE_HEADER_BYTES as u64;
    let rows = col.len() as u64;
    Ok(match codec {
        PageCodec::Plain => match col {
            ColumnData::Int64(_) | ColumnData::Float64(_) => header + rows * 8,
            ColumnData::Bool(_) => header + rows,
            // `byte_size` is exactly Σ (4 + len) for both string encodings.
            ColumnData::Utf8(_) | ColumnData::Dict { .. } => header + col.byte_size() as u64,
        },
        PageCodec::Dict => {
            if col.data_type() != DataType::Utf8 {
                return Err(err(format!(
                    "dict codec applies to strings, not {}",
                    col.data_type()
                )));
            }
            let (entries, entry_bytes) = referenced_entries(col);
            header + 4 + entry_bytes + 1 + packed_id_bytes(col.len(), id_bit_width(entries))
        }
        PageCodec::Rle => {
            let (runs, value_bytes) = rle_runs(col);
            header + 4 + runs * 4 + value_bytes
        }
    })
}

/// The smallest-page codec for this column (ties break toward the earlier
/// candidate, so the choice is deterministic).
pub fn pick_codec(col: &ColumnData) -> PageCodec {
    let mut best = PageCodec::Plain;
    let mut best_size = u64::MAX;
    for &c in PageCodec::candidates(col.data_type()) {
        let size = encoded_size(col, c).expect("candidate codecs always apply");
        if size < best_size {
            best = c;
            best_size = size;
        }
    }
    best
}

/// Page metadata under the size-based codec picker — what
/// [`crate::partition::MicroPartition`] stores per column.
pub fn best_page(col: &ColumnData) -> EncodedPage {
    let codec = pick_codec(col);
    let encoded_bytes = encoded_size(col, codec).expect("picked codec applies");
    let dict_bytes = if codec == PageCodec::Dict {
        let (_, entry_bytes) = referenced_entries(col);
        4 + entry_bytes
    } else {
        0
    };
    EncodedPage {
        codec,
        encoded_bytes,
        decoded_bytes: col.byte_size() as u64,
        rows: col.len(),
        dict_bytes,
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn push_header(out: &mut Vec<u8>, codec: PageCodec, dt: DataType, rows: u32) {
    push_header_flags(out, codec, dt, rows, 0);
}

fn push_header_flags(out: &mut Vec<u8>, codec: PageCodec, dt: DataType, rows: u32, flags: u8) {
    out.extend_from_slice(&PAGE_MAGIC);
    out.push(PAGE_VERSION);
    out.push(codec.tag());
    out.push(dtype_tag(dt));
    out.push(flags);
    push_u32(out, rows);
}

/// Header flag bit marking a wire-stream dict page that references an
/// already-shipped dictionary instead of inlining one (ids section only).
pub const PAGE_FLAG_DICT_REF: u8 = 1;

/// Bit-packs `ids` at `width` bits each, LSB-first.
fn pack_ids(out: &mut Vec<u8>, ids: impl Iterator<Item = u32>, width: u32) {
    if width == 0 {
        return;
    }
    let mut buf: u64 = 0;
    let mut bits: u32 = 0;
    for id in ids {
        buf |= (id as u64) << bits;
        bits += width;
        while bits >= 8 {
            out.push((buf & 0xff) as u8);
            buf >>= 8;
            bits -= 8;
        }
    }
    if bits > 0 {
        out.push((buf & 0xff) as u8);
    }
}

/// Encodes a column as one self-contained page under the given codec.
/// Returns the page metadata and the bytes; `decode_column` inverts it.
pub fn encode_column(col: &ColumnData, codec: PageCodec) -> Result<(EncodedPage, Vec<u8>)> {
    let rows =
        u32::try_from(col.len()).map_err(|_| err(format!("page overflow: {} rows", col.len())))?;
    let mut out = Vec::with_capacity(PAGE_HEADER_BYTES + 16);
    push_header(&mut out, codec, col.data_type(), rows);
    let mut dict_bytes = 0u64;
    match codec {
        PageCodec::Plain => match col {
            ColumnData::Int64(v) => v
                .iter()
                .for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
            ColumnData::Float64(v) => v
                .iter()
                .for_each(|x| out.extend_from_slice(&x.to_bits().to_le_bytes())),
            ColumnData::Bool(v) => v.iter().for_each(|&b| out.push(b as u8)),
            ColumnData::Utf8(v) => v.iter().for_each(|s| push_str(&mut out, s)),
            ColumnData::Dict { ids, dict } => {
                ids.iter().for_each(|&id| push_str(&mut out, dict.get(id)))
            }
        },
        PageCodec::Dict => {
            // Local dictionary in first-appearance order over this page's
            // rows only (a table-wide dictionary's unreferenced tail is not
            // shipped), then bit-packed local ids.
            let (local, local_ids): (Dictionary, Vec<u32>) = match col {
                ColumnData::Utf8(v) => Dictionary::encode(v.iter().map(String::as_str)),
                ColumnData::Dict { ids, dict } => {
                    let mut remap: Vec<u32> = vec![u32::MAX; dict.len()];
                    let mut local = Dictionary::new();
                    let local_ids = ids
                        .iter()
                        .map(|&id| {
                            if remap[id as usize] == u32::MAX {
                                remap[id as usize] = local.intern(dict.get(id));
                            }
                            remap[id as usize]
                        })
                        .collect();
                    (local, local_ids)
                }
                other => {
                    return Err(err(format!(
                        "dict codec applies to strings, not {}",
                        other.data_type()
                    )))
                }
            };
            let section_start = out.len();
            push_u32(&mut out, local.len() as u32);
            for entry in local.values() {
                push_str(&mut out, entry);
            }
            dict_bytes = (out.len() - section_start) as u64;
            let width = id_bit_width(local.len());
            out.push(width as u8);
            pack_ids(&mut out, local_ids.into_iter(), width);
        }
        PageCodec::Rle => {
            let run_count_at = out.len();
            push_u32(&mut out, 0); // patched below
            let mut runs = 0u32;
            macro_rules! rle {
                ($vals:expr, $key:expr, $emit:expr) => {{
                    let mut iter = $vals;
                    if let Some(first) = iter.next() {
                        let mut cur = first;
                        let mut len = 1u32;
                        for x in iter {
                            if $key(&x) == $key(&cur) {
                                len += 1;
                            } else {
                                runs += 1;
                                push_u32(&mut out, len);
                                $emit(&mut out, &cur);
                                cur = x;
                                len = 1;
                            }
                        }
                        runs += 1;
                        push_u32(&mut out, len);
                        $emit(&mut out, &cur);
                    }
                }};
            }
            match col {
                ColumnData::Int64(v) => rle!(
                    v.iter().copied(),
                    |x: &i64| *x,
                    |out: &mut Vec<u8>, x: &i64| out.extend_from_slice(&x.to_le_bytes())
                ),
                ColumnData::Float64(v) => rle!(
                    v.iter().copied(),
                    |x: &f64| x.to_bits(),
                    |out: &mut Vec<u8>, x: &f64| out.extend_from_slice(&x.to_bits().to_le_bytes())
                ),
                ColumnData::Bool(v) => rle!(
                    v.iter().copied(),
                    |b: &bool| *b,
                    |out: &mut Vec<u8>, b: &bool| out.push(*b as u8)
                ),
                ColumnData::Utf8(v) => {
                    let mut i = 0;
                    while i < v.len() {
                        let mut end = i + 1;
                        while end < v.len() && v[end] == v[i] {
                            end += 1;
                        }
                        runs += 1;
                        push_u32(&mut out, (end - i) as u32);
                        push_str(&mut out, &v[i]);
                        i = end;
                    }
                }
                ColumnData::Dict { ids, dict } => rle!(
                    // Id equality is value equality under interning.
                    ids.iter().copied(),
                    |id: &u32| *id,
                    |out: &mut Vec<u8>, id: &u32| push_str(out, dict.get(*id))
                ),
            }
            out[run_count_at..run_count_at + 4].copy_from_slice(&runs.to_le_bytes());
        }
    }
    let meta = EncodedPage {
        codec,
        encoded_bytes: out.len() as u64,
        decoded_bytes: col.byte_size() as u64,
        rows: col.len(),
        dict_bytes,
    };
    debug_assert_eq!(
        meta.encoded_bytes,
        encoded_size(col, codec).expect("sized codec"),
        "size-only accounting must match the real encoder"
    );
    Ok((meta, out))
}

/// Encodes under the size-picked codec.
pub fn encode_best(col: &ColumnData) -> Result<(EncodedPage, Vec<u8>)> {
    encode_column(col, pick_codec(col))
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over page bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                err(format!(
                    "truncated page: need {n} bytes at offset {}, have {}",
                    self.at,
                    self.bytes.len().saturating_sub(self.at)
                ))
            })?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| err(format!("invalid UTF-8 in page: {e}")))
    }

    fn done(&self) -> Result<()> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(err(format!(
                "{} trailing bytes after page payload",
                self.bytes.len() - self.at
            )))
        }
    }
}

/// Decodes a self-contained page back into a column. Every malformed input
/// (bad magic/version/tags, truncated payload, invalid UTF-8, out-of-range
/// ids, run/row count mismatch, trailing bytes) is an `Err`, never a panic.
pub fn decode_column(bytes: &[u8]) -> Result<ColumnData> {
    let mut c = Cursor { bytes, at: 0 };
    let magic = c.take(4)?;
    if magic != PAGE_MAGIC {
        return Err(err(format!("bad page magic {magic:02x?}")));
    }
    let version = c.u8()?;
    if version != PAGE_VERSION {
        return Err(err(format!("unsupported page version {version}")));
    }
    let codec = PageCodec::from_tag(c.u8()?)?;
    let dt = dtype_from_tag(c.u8()?)?;
    let flags = c.u8()?;
    if flags == PAGE_FLAG_DICT_REF {
        return Err(err(
            "dictionary-by-reference wire page needs the stream's dictionary cache".into(),
        ));
    }
    if flags != 0 {
        return Err(err(format!("unknown page flags {flags:#04x}")));
    }
    let rows = c.u32()? as usize;
    let col = match codec {
        PageCodec::Plain => match dt {
            DataType::Int64 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(c.u64()? as i64);
                }
                ColumnData::Int64(v)
            }
            DataType::Float64 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(f64::from_bits(c.u64()?));
                }
                ColumnData::Float64(v)
            }
            DataType::Bool => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(decode_bool(c.u8()?)?);
                }
                ColumnData::Bool(v)
            }
            DataType::Utf8 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(c.str()?);
                }
                ColumnData::Utf8(v)
            }
        },
        PageCodec::Dict => {
            if dt != DataType::Utf8 {
                return Err(err(format!("dict page with non-string dtype {dt}")));
            }
            let entries = c.u32()? as usize;
            let mut dict = Dictionary::new();
            for _ in 0..entries {
                let s = c.str()?;
                dict.intern(&s);
            }
            if dict.len() != entries {
                return Err(err(format!(
                    "dict page holds duplicate entries ({} distinct of {entries})",
                    dict.len()
                )));
            }
            let width = c.u8()? as u32;
            if width > 32 || (entries > 1 && width < id_bit_width(entries)) {
                return Err(err(format!(
                    "dict page bit width {width} invalid for {entries} entries"
                )));
            }
            let packed = c.take(packed_id_bytes(rows, width) as usize)?;
            let ids = unpack_ids(packed, rows, width)?;
            if let Some(&bad) = ids.iter().find(|&&id| id as usize >= entries.max(1)) {
                return Err(err(format!(
                    "dict page id {bad} out of range for {entries} entries"
                )));
            }
            if rows > 0 && entries == 0 {
                return Err(err(format!("dict page has {rows} rows but no entries")));
            }
            ColumnData::Dict {
                ids,
                dict: Arc::new(dict),
            }
        }
        PageCodec::Rle => {
            let runs = c.u32()?;
            let mut col = ColumnData::with_capacity(dt, rows);
            let mut decoded = 0usize;
            for _ in 0..runs {
                let len = c.u32()? as usize;
                decoded = decoded
                    .checked_add(len)
                    .filter(|&d| d <= rows)
                    .ok_or_else(|| err(format!("rle runs exceed declared {rows} rows")))?;
                match (&mut col, dt) {
                    (ColumnData::Int64(v), _) => {
                        let x = c.u64()? as i64;
                        v.extend(std::iter::repeat_n(x, len));
                    }
                    (ColumnData::Float64(v), _) => {
                        let x = f64::from_bits(c.u64()?);
                        v.extend(std::iter::repeat_n(x, len));
                    }
                    (ColumnData::Bool(v), _) => {
                        let b = decode_bool(c.u8()?)?;
                        v.extend(std::iter::repeat_n(b, len));
                    }
                    (ColumnData::Utf8(v), _) => {
                        let s = c.str()?;
                        v.extend(std::iter::repeat_n(s, len));
                    }
                    (other, _) => {
                        return Err(err(format!(
                            "rle decode into unexpected column {}",
                            other.data_type()
                        )))
                    }
                }
            }
            if decoded != rows {
                return Err(err(format!(
                    "rle page decodes {decoded} rows, header declares {rows}"
                )));
            }
            col
        }
    };
    if col.len() != rows {
        return Err(err(format!(
            "page declares {rows} rows but decoded {}",
            col.len()
        )));
    }
    c.done()?;
    Ok(col)
}

fn decode_bool(b: u8) -> Result<bool> {
    match b {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(err(format!("invalid bool byte {other}"))),
    }
}

fn unpack_ids(packed: &[u8], rows: usize, width: u32) -> Result<Vec<u32>> {
    if width == 0 {
        return Ok(vec![0; rows]);
    }
    let mut ids = Vec::with_capacity(rows);
    let mut buf: u64 = 0;
    let mut bits: u32 = 0;
    let mut next = packed.iter();
    let mask = if width == 32 {
        u32::MAX
    } else {
        (1u32 << width) - 1
    };
    for _ in 0..rows {
        while bits < width {
            let byte = next
                .next()
                .ok_or_else(|| err("truncated bit-packed id section".into()))?;
            buf |= (*byte as u64) << bits;
            bits += 8;
        }
        ids.push((buf as u32) & mask);
        buf >>= width;
        bits -= width;
    }
    Ok(ids)
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

/// Serializes batches for exchange / gather transfers with one-time
/// dictionary shipping: the first batch referencing a shared dictionary pays
/// [`dictionary_page_bytes`] for it, later batches ship only bit-packed ids
/// (at the *table* dictionary's bit width, since the receiver already holds
/// every entry). Non-dict columns travel as their best self-contained page.
///
/// One encoder models one transfer stream (the engine keeps one per pipeline
/// execution), so dictionary dedup is scoped exactly like the paper's
/// per-(table, column) one-time transfer. Dictionary identity is `Arc`
/// pointer identity — the invariant the catalog establishes by interning one
/// dictionary per table column at load; the encoder holds a reference to
/// every dictionary it marks shipped, so a freed-and-reallocated address can
/// never alias an earlier entry and silently skip a transfer.
#[derive(Debug, Default)]
pub struct WireEncoder {
    shipped: HashMap<usize, Arc<Dictionary>>,
}

impl WireEncoder {
    /// A fresh stream: no dictionaries shipped yet.
    pub fn new() -> WireEncoder {
        WireEncoder::default()
    }

    /// `true` if the next dict column sharing `dict` rides for ids only.
    pub fn has_shipped(&self, dict: &Arc<Dictionary>) -> bool {
        self.shipped.contains_key(&(Arc::as_ptr(dict) as usize))
    }

    /// Marks `dict` shipped (pinning it alive for the encoder's lifetime);
    /// returns `true` on the first sighting.
    fn ship(&mut self, dict: &Arc<Dictionary>) -> bool {
        self.shipped
            .insert(Arc::as_ptr(dict) as usize, dict.clone())
            .is_none()
    }

    /// Wire bytes for one column, updating the shipped-dictionary set.
    /// Size-only: the engine charges virtual wire seconds from this without
    /// materializing payloads.
    pub fn column_wire_bytes(&mut self, col: &ColumnData) -> u64 {
        match col {
            ColumnData::Dict { ids, dict } => {
                let first = self.ship(dict);
                let width = id_bit_width(dict.len());
                let mut bytes = PAGE_HEADER_BYTES as u64 + 1 + packed_id_bytes(ids.len(), width);
                if first {
                    bytes += dictionary_page_bytes(dict);
                }
                bytes
            }
            other => best_page(other).encoded_bytes,
        }
    }

    /// Wire bytes for a whole batch (sum over columns). Selected batches are
    /// measured over their logical rows, as the exchange materialization
    /// point would ship them.
    pub fn batch_wire_bytes(&mut self, batch: &RecordBatch) -> u64 {
        let dense;
        let b = if batch.selection().is_some() {
            dense = batch.compacted();
            &dense
        } else {
            batch
        };
        b.columns().iter().map(|c| self.column_wire_bytes(c)).sum()
    }

    /// Actually serializes one column for the wire (benchmarks measure this;
    /// the simulation only needs [`WireEncoder::column_wire_bytes`]). Every
    /// emitted blob is self-describing — the "CIPG" header always comes
    /// first. A dict column's first transfer is a complete Dict page
    /// inlining the whole shared dictionary (decodable by [`decode_column`]
    /// like any storage page); later transfers carry the
    /// [`PAGE_FLAG_DICT_REF`] header flag and only the bit-packed ids, for
    /// a receiver holding the stream's dictionary cache. Other columns emit
    /// their best self-contained page. The byte count always equals
    /// `column_wire_bytes`.
    pub fn encode_column(&mut self, col: &ColumnData) -> Result<Vec<u8>> {
        match col {
            ColumnData::Dict { ids, dict } => {
                let first = self.ship(dict);
                let rows = u32::try_from(ids.len())
                    .map_err(|_| err(format!("wire overflow: {} rows", ids.len())))?;
                let mut out = Vec::new();
                let flags = if first { 0 } else { PAGE_FLAG_DICT_REF };
                push_header_flags(&mut out, PageCodec::Dict, DataType::Utf8, rows, flags);
                if first {
                    push_u32(&mut out, dict.len() as u32);
                    for entry in dict.values() {
                        push_str(&mut out, entry);
                    }
                }
                let width = id_bit_width(dict.len());
                out.push(width as u8);
                pack_ids(&mut out, ids.iter().copied(), width);
                Ok(out)
            }
            other => Ok(encode_best(other)?.1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict_col(vals: &[&str]) -> ColumnData {
        ColumnData::Utf8(vals.iter().map(|s| (*s).to_owned()).collect()).dict_encoded()
    }

    #[test]
    fn plain_round_trips_every_type() {
        let cols = [
            ColumnData::Int64(vec![-5, 0, 7, i64::MAX]),
            ColumnData::Float64(vec![0.5, -1.25, f64::MAX]),
            ColumnData::Bool(vec![true, false, true]),
            ColumnData::Utf8(vec!["a".into(), "".into(), "日本".into()]),
        ];
        for col in &cols {
            let (meta, bytes) = encode_column(col, PageCodec::Plain).unwrap();
            assert_eq!(meta.encoded_bytes as usize, bytes.len());
            assert_eq!(meta.rows, col.len());
            assert_eq!(&decode_column(&bytes).unwrap(), col);
        }
    }

    #[test]
    fn dict_page_round_trips_and_shrinks() {
        let col = dict_col(&[
            "aaaa", "bbbb", "aaaa", "bbbb", "aaaa", "aaaa", "bbbb", "aaaa",
        ]);
        let (meta, bytes) = encode_column(&col, PageCodec::Dict).unwrap();
        assert_eq!(meta.encoded_bytes as usize, bytes.len());
        assert!(meta.encoded_bytes < meta.decoded_bytes, "{meta:?}");
        assert!(meta.dict_bytes > 0);
        let decoded = decode_column(&bytes).unwrap();
        assert_eq!(decoded, col);
        assert!(decoded.as_dict().is_some(), "dict pages decode to dict");
    }

    #[test]
    fn dict_page_ships_only_referenced_entries() {
        // Table dictionary has 3 entries; this chunk references one.
        let table_col = dict_col(&["x", "y", "z"]);
        let chunk = table_col.slice(2, 1);
        let (_, bytes) = encode_column(&chunk, PageCodec::Dict).unwrap();
        let decoded = decode_column(&bytes).unwrap();
        let (ids, dict) = decoded.as_dict().unwrap();
        assert_eq!(ids, &[0], "remapped to dense local ids");
        assert_eq!(dict.len(), 1, "unreferenced entries not shipped");
        assert_eq!(decoded.str_at(0), Some("z"));
    }

    #[test]
    fn rle_round_trips_and_wins_on_runs() {
        let col = ColumnData::Int64(vec![7; 1000]);
        assert_eq!(pick_codec(&col), PageCodec::Rle);
        let (meta, bytes) = encode_best(&col).unwrap();
        assert!(meta.encoded_bytes < meta.decoded_bytes / 10);
        assert_eq!(&decode_column(&bytes).unwrap(), &col);

        let strs = ColumnData::Utf8(vec!["run".into(); 64]);
        let (_, bytes) = encode_column(&strs, PageCodec::Rle).unwrap();
        assert_eq!(&decode_column(&bytes).unwrap(), &strs);
    }

    #[test]
    fn plain_wins_on_incompressible_ints() {
        let col = ColumnData::Int64((0..100).map(|i| i * 7919 % 1000).collect());
        assert_eq!(pick_codec(&col), PageCodec::Plain);
    }

    #[test]
    fn empty_columns_round_trip() {
        for dt in [
            DataType::Int64,
            DataType::Float64,
            DataType::Utf8,
            DataType::Bool,
        ] {
            let col = ColumnData::empty(dt);
            let (meta, bytes) = encode_best(&col).unwrap();
            assert_eq!(meta.rows, 0);
            assert_eq!(&decode_column(&bytes).unwrap(), &col);
        }
    }

    #[test]
    fn size_only_matches_real_encoding() {
        let cols = [
            ColumnData::Int64(vec![1, 1, 1, 2, 3, 3]),
            ColumnData::Float64(vec![0.0, 0.0, 9.5]),
            ColumnData::Bool(vec![true; 9]),
            ColumnData::Utf8(vec!["aa".into(), "aa".into(), "b".into()]),
            dict_col(&["g1", "g2", "g1", "g1"]),
        ];
        for col in &cols {
            for &codec in PageCodec::candidates(col.data_type()) {
                let (meta, bytes) = encode_column(col, codec).unwrap();
                assert_eq!(
                    encoded_size(col, codec).unwrap(),
                    bytes.len() as u64,
                    "{codec:?} on {}",
                    col.data_type()
                );
                assert_eq!(meta.encoded_bytes, bytes.len() as u64);
            }
        }
    }

    #[test]
    fn malformed_pages_error_not_panic() {
        let (_, good) = encode_best(&dict_col(&["a", "b", "a"])).unwrap();
        // Truncations at every length.
        for n in 0..good.len() {
            assert!(decode_column(&good[..n]).is_err(), "truncated at {n}");
        }
        // Corrupt header fields.
        for (at, val) in [(0usize, 0xffu8), (4, 9), (5, 9), (6, 9), (7, 1)] {
            let mut bad = good.clone();
            bad[at] = val;
            assert!(decode_column(&bad).is_err(), "corrupt byte {at}");
        }
        // Trailing garbage.
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_column(&padded).is_err());
        // Declared rows beyond payload.
        let mut inflated = good.clone();
        inflated[8..12].copy_from_slice(&1000u32.to_le_bytes());
        assert!(decode_column(&inflated).is_err());
    }

    #[test]
    fn bit_widths() {
        assert_eq!(id_bit_width(0), 0);
        assert_eq!(id_bit_width(1), 0);
        assert_eq!(id_bit_width(2), 1);
        assert_eq!(id_bit_width(3), 2);
        assert_eq!(id_bit_width(256), 8);
        assert_eq!(id_bit_width(257), 9);
        assert_eq!(packed_id_bytes(8, 1), 1);
        assert_eq!(packed_id_bytes(9, 1), 2);
        assert_eq!(packed_id_bytes(3, 10), 4);
    }

    #[test]
    fn wire_ships_dictionary_once() {
        let col = dict_col(&["aaaaaaaa", "bbbbbbbb", "aaaaaaaa", "bbbbbbbb"]);
        let (_, dict) = col.as_dict().unwrap();
        let dict_bytes = dictionary_page_bytes(dict);
        let mut w = WireEncoder::new();
        let first = w.column_wire_bytes(&col);
        let second = w.column_wire_bytes(&col);
        assert_eq!(first, second + dict_bytes);
        assert!(w.has_shipped(&dict.clone()));
        // Real serialization agrees with the size-only accounting.
        let mut w2 = WireEncoder::new();
        let b1 = w2.encode_column(&col).unwrap();
        let b2 = w2.encode_column(&col).unwrap();
        assert_eq!(b1.len() as u64, first);
        assert_eq!(b2.len() as u64, second);
        // Every wire blob is self-describing, header first: the first
        // transfer is a complete Dict page any receiver can decode, the
        // follow-up is a flagged ids-only page that demands the cache.
        assert_eq!(decode_column(&b1).unwrap(), col);
        let e = decode_column(&b2).unwrap_err().to_string();
        assert!(e.contains("dictionary cache"), "{e}");
        // The ids-only payload beats the decoded width by a wide margin.
        assert!(second * 2 < col.byte_size() as u64);
    }

    #[test]
    fn wire_batch_reads_through_selections() {
        use crate::schema::{Field, Schema};
        let schema = Arc::new(Schema::of(vec![
            Field::new("s", DataType::Utf8),
            Field::new("i", DataType::Int64),
        ]));
        let batch = RecordBatch::new(
            schema,
            vec![
                dict_col(&["a", "b", "c", "d"]),
                ColumnData::Int64(vec![1, 2, 3, 4]),
            ],
        )
        .unwrap();
        let filtered = batch.filter(&[true, false, true, false]).unwrap();
        let mut a = WireEncoder::new();
        let mut b = WireEncoder::new();
        assert_eq!(
            a.batch_wire_bytes(&filtered),
            b.batch_wire_bytes(&filtered.compacted())
        );
    }
}
