//! Encoded column pages and the exchange wire format.
//!
//! Until this subsystem existed, every byte the cost model saw was a
//! *decoded* byte: partitions billed `RecordBatch::byte_size`, scans fetched
//! decoded payloads, and exchanges charged decoded row widths — so the
//! optimizer could never reward compression, the dominant lever of real
//! cloud scan economics. A page is the self-describing encoded form of one
//! column chunk:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "CIPG"
//! 4       1     format version (2)
//! 5       1     codec tag   (0 = Plain, 1 = Dict, 2 = Rle, 3 = For, 4 = Delta)
//! 6       1     dtype tag   (0 = Int64, 1 = Float64, 2 = Utf8, 3 = Bool)
//! 7       1     flags (wire streams only, see below)
//! 8       4     row count (u32 LE)
//! 12      ..    codec-specific payload
//! ```
//!
//! Payloads (all integers little-endian):
//!
//! * **Plain** — raw values: 8 bytes per `Int64`/`Float64` (floats as IEEE
//!   bits), 1 byte per `Bool`, and `u32` length + UTF-8 bytes per string.
//! * **Dict** — `u32` entry count, the distinct strings (`u32` length +
//!   bytes each, in first-appearance order), a `u8` bit width, then the
//!   per-row ids bit-packed LSB-first at that width. Encoding a column that
//!   is already dict-encoded writes only the entries its rows reference,
//!   remapped to dense local ids, so a partition page never ships the
//!   unreferenced tail of a table-wide dictionary.
//! * **Rle** — `u32` run count, then `u32` run length + one value encoding
//!   (as in Plain) per run. Wins on sorted / low-cardinality runs, e.g.
//!   cluster columns after a recluster tuning action.
//! * **For** — frame of reference (`Int64`/`Bool`): the `i64` minimum, a
//!   `u8` bit width, then every `value − min` bit-packed LSB-first at that
//!   width. Small-domain columns (dates, cluster keys) collapse to a few
//!   bits per row; a constant column needs width 0 and 9 payload bytes.
//!   Empty columns carry no payload.
//! * **Delta** — bit-packed deltas (`Int64`): the `i64` first value, the
//!   `i64` minimum consecutive delta, a `u8` bit width, then
//!   `delta − min_delta` for rows `1..n` bit-packed at that width. Sorted
//!   columns (ids, cluster keys after a recluster) have tiny non-negative
//!   deltas, so this is the codec that lets the cost model reward
//!   reclustering twice: pruning *and* compression. All delta arithmetic is
//!   wrapping, so the codec is exact for any `i64` input.
//!
//! [`decode_column`] inverts [`encode_column`] for every codec and
//! [`ColumnData`] variant: values round-trip exactly (Dict pages decode back
//! to dict-encoded columns; Rle/Plain string pages decode to owned strings —
//! equal under the workspace's decoded-value column equality). Malformed
//! bytes are rejected with `Err`, never a panic, and declared sizes are
//! validated against the actual payload *before* any row-proportional
//! allocation, so a forged header cannot over-allocate.
//!
//! [`best_page`] is the size-based codec picker partitions use to account
//! `encoded_bytes`. [`WireEncoder`] is the exchange wire format: dict
//! columns ship bit-packed ids plus their dictionary **once** per encoder
//! (one-time per (table, column) dictionary transfer), which is what lets
//! `exchange_wire_secs` see the shrunken payload. [`WireDecoder`] is the
//! receiver side: it maintains the stream's dictionary cache (keyed by the
//! `u32` stream dictionary id every wire dict page carries) and turns wire
//! blobs back into columns and [`RecordBatch`]es, so exchange streams
//! round-trip exactly like storage pages do.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use ci_types::{CiError, Result};

use crate::batch::RecordBatch;
use crate::column::ColumnData;
use crate::dict::{Dictionary, IntDict};
use crate::value::DataType;

/// Magic bytes opening every encoded page.
pub const PAGE_MAGIC: [u8; 4] = *b"CIPG";
/// Current page format version (2: For/Delta codec tags, wire dict pages
/// carry a stream dictionary id).
pub const PAGE_VERSION: u8 = 2;
/// Fixed header size preceding every codec payload.
pub const PAGE_HEADER_BYTES: usize = 12;

/// The column encodings a page can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageCodec {
    /// Raw decoded values.
    Plain,
    /// Distinct-value dictionary + bit-packed per-row ids (strings and
    /// low-cardinality ints).
    Dict,
    /// Run-length encoded values.
    Rle,
    /// Frame of reference: `i64` minimum + bit-packed offsets.
    For,
    /// Bit-packed consecutive deltas off an `i64` first value.
    Delta,
}

/// Every codec, in the deterministic tie-break order the picker uses
/// (earlier wins on equal size).
pub const ALL_CODECS: [PageCodec; 5] = [
    PageCodec::Plain,
    PageCodec::Dict,
    PageCodec::Rle,
    PageCodec::For,
    PageCodec::Delta,
];

impl PageCodec {
    fn tag(self) -> u8 {
        match self {
            PageCodec::Plain => 0,
            PageCodec::Dict => 1,
            PageCodec::Rle => 2,
            PageCodec::For => 3,
            PageCodec::Delta => 4,
        }
    }

    fn from_tag(tag: u8) -> Result<PageCodec> {
        match tag {
            0 => Ok(PageCodec::Plain),
            1 => Ok(PageCodec::Dict),
            2 => Ok(PageCodec::Rle),
            3 => Ok(PageCodec::For),
            4 => Ok(PageCodec::Delta),
            other => Err(err(format!("unknown codec tag {other}"))),
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PageCodec::Plain => "plain",
            PageCodec::Dict => "dict",
            PageCodec::Rle => "rle",
            PageCodec::For => "for",
            PageCodec::Delta => "delta",
        }
    }

    /// Whether this codec can encode a column of logical type `dt`. This is
    /// the single capability source [`PageCodec::candidates`] derives from,
    /// so adding a codec here automatically enrolls it with the picker for
    /// every type it supports.
    pub fn applies_to(self, dt: DataType) -> bool {
        match self {
            PageCodec::Plain | PageCodec::Rle => true,
            // Dictionaries pay off wherever distinct values are few relative
            // to rows: strings (entries dedup heap payloads) and ints
            // (dates/enums whose *range* defeats FoR but whose NDV is tiny).
            PageCodec::Dict => matches!(dt, DataType::Utf8 | DataType::Int64),
            // Frame of reference covers anything with an integer value
            // domain: Int64, and Bool as 0/1 (1 bit per row past the frame).
            PageCodec::For => matches!(dt, DataType::Int64 | DataType::Bool),
            // Deltas only pay off where consecutive differences carry
            // information — the 64-bit integer domain.
            PageCodec::Delta => dt == DataType::Int64,
        }
    }

    /// The codecs applicable to a column of logical type `dt`, in the
    /// deterministic tie-break order the picker uses. Capability-driven over
    /// [`ALL_CODECS`]: a codec that supports a type can never be silently
    /// skipped by a stale per-type list.
    pub fn candidates(dt: DataType) -> impl Iterator<Item = PageCodec> {
        ALL_CODECS.into_iter().filter(move |c| c.applies_to(dt))
    }
}

/// Metadata of one encoded page: what a partition or catalog keeps to
/// account billed bytes without holding the payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedPage {
    /// Codec the page is encoded with.
    pub codec: PageCodec,
    /// Total page size in bytes (header + payload) — what a fetch transfers.
    pub encoded_bytes: u64,
    /// Decoded payload size ([`ColumnData::byte_size`]) — what decode yields.
    pub decoded_bytes: u64,
    /// Rows in the page.
    pub rows: usize,
    /// Bytes of the inline dictionary section (0 for non-Dict codecs). The
    /// per-row wire width of a dict column is
    /// `(encoded_bytes - dict_bytes) / rows`.
    pub dict_bytes: u64,
}

fn err(msg: String) -> CiError {
    CiError::Storage(msg)
}

fn dtype_tag(dt: DataType) -> u8 {
    match dt {
        DataType::Int64 => 0,
        DataType::Float64 => 1,
        DataType::Utf8 => 2,
        DataType::Bool => 3,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DataType> {
    match tag {
        0 => Ok(DataType::Int64),
        1 => Ok(DataType::Float64),
        2 => Ok(DataType::Utf8),
        3 => Ok(DataType::Bool),
        other => Err(err(format!("unknown dtype tag {other}"))),
    }
}

/// Bits needed per id for a dictionary of `entries` distinct values.
pub fn id_bit_width(entries: usize) -> u32 {
    if entries <= 1 {
        0
    } else {
        usize::BITS - (entries - 1).leading_zeros()
    }
}

/// Bytes occupied by `rows` ids bit-packed at `width` bits.
pub fn packed_id_bytes(rows: usize, width: u32) -> u64 {
    (rows as u64 * width as u64).div_ceil(8)
}

/// Bits needed to represent every offset in `[0, range]` (0 for a
/// zero-range, i.e. constant, frame).
pub fn range_bit_width(range: u64) -> u32 {
    u64::BITS - range.leading_zeros()
}

/// The frame-of-reference parameters of an integer column: `(min, width)`
/// where `width` bits hold every `value − min`. `None` for empty columns
/// (a For page of zero rows has no payload). Offsets are exact for any
/// `i64` input: `max − min` always fits in a `u64`.
fn for_frame(col: &ColumnData) -> Result<Option<(i64, u32)>> {
    let (min, max) = match col {
        ColumnData::Int64(v) => match v.first() {
            None => return Ok(None),
            Some(&first) => v
                .iter()
                .fold((first, first), |(lo, hi), &x| (lo.min(x), hi.max(x))),
        },
        ColumnData::Bool(v) => {
            if v.is_empty() {
                return Ok(None);
            }
            let any_true = v.iter().any(|&b| b);
            let any_false = v.iter().any(|&b| !b);
            (i64::from(!any_false), i64::from(any_true))
        }
        ColumnData::DictInt { ids, dict } => match ids.first() {
            None => return Ok(None),
            Some(&first) => {
                // Min/max over *referenced* values only: a slice or filter
                // may reference a subset of the dictionary's entries.
                let first = dict.get(first);
                ids.iter().fold((first, first), |(lo, hi), &id| {
                    let x = dict.get(id);
                    (lo.min(x), hi.max(x))
                })
            }
        },
        other => {
            return Err(err(format!(
                "for codec applies to integer domains, not {}",
                other.data_type()
            )))
        }
    };
    Ok(Some((min, range_bit_width(max.wrapping_sub(min) as u64))))
}

/// The delta-frame parameters of an `Int64` column:
/// `(first, min_delta, width)` where `width` bits hold every
/// `delta − min_delta` over the `rows − 1` consecutive (wrapping) deltas.
/// `None` for empty columns.
fn delta_frame(col: &ColumnData) -> Result<Option<(i64, i64, u32)>> {
    let mut vals = int_values(col)?;
    let Some(first) = vals.next() else {
        return Ok(None);
    };
    let mut min_d = 0i64;
    let mut max_d = 0i64;
    let mut seen = false;
    let mut prev = first;
    for x in vals {
        let d = x.wrapping_sub(prev);
        if !seen {
            (min_d, max_d, seen) = (d, d, true);
        } else {
            min_d = min_d.min(d);
            max_d = max_d.max(d);
        }
        prev = x;
    }
    Ok(Some((
        first,
        min_d,
        range_bit_width(max_d.wrapping_sub(min_d) as u64),
    )))
}

/// Iterator over the decoded `i64` values of either int encoding; errors for
/// non-int columns.
fn int_values(col: &ColumnData) -> Result<impl Iterator<Item = i64> + '_> {
    match col {
        ColumnData::Int64(v) => Ok(IntValues::Plain(v.iter())),
        ColumnData::DictInt { ids, dict } => Ok(IntValues::Dict(ids.iter(), dict)),
        other => Err(err(format!(
            "int codec applies to INT columns, not {}",
            other.data_type()
        ))),
    }
}

enum IntValues<'a> {
    Plain(std::slice::Iter<'a, i64>),
    Dict(std::slice::Iter<'a, u32>, &'a crate::dict::IntDict),
}

impl Iterator for IntValues<'_> {
    type Item = i64;

    fn next(&mut self) -> Option<i64> {
        match self {
            IntValues::Plain(it) => it.next().copied(),
            IntValues::Dict(it, dict) => it.next().map(|&id| dict.get(id)),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            IntValues::Plain(it) => it.size_hint(),
            IntValues::Dict(it, _) => it.size_hint(),
        }
    }
}

/// Widths up to this bound take the `u64`-buffer packing fast path (the
/// flush loop keeps the buffer under 8 live bits, so `56 + 8 <= 64` bits
/// always fit); wider values fall back to a `u128` buffer.
const PACK_FAST_WIDTH: u32 = 56;

/// Bit-packs `values` at `width` bits each, LSB-first (`width <= 64`).
fn pack_bits(out: &mut Vec<u8>, values: impl Iterator<Item = u64>, width: u32) {
    if width == 0 {
        return;
    }
    let (lo, _) = values.size_hint();
    out.reserve((lo * width as usize).div_ceil(8));
    if width <= 32 {
        // Flush four bytes at a time: the buffer stays below 32 live bits
        // between values, so `32 + width <= 64` always fits the shift.
        let mut buf: u64 = 0;
        let mut bits: u32 = 0;
        for v in values {
            buf |= v << bits;
            bits += width;
            if bits >= 32 {
                out.extend_from_slice(&(buf as u32).to_le_bytes());
                buf >>= 32;
                bits -= 32;
            }
        }
        while bits >= 8 {
            out.push(buf as u8);
            buf >>= 8;
            bits -= 8;
        }
        if bits > 0 {
            out.push(buf as u8);
        }
        return;
    }
    if width <= PACK_FAST_WIDTH {
        let mut buf: u64 = 0;
        let mut bits: u32 = 0;
        for v in values {
            buf |= v << bits;
            bits += width;
            while bits >= 8 {
                out.push(buf as u8);
                buf >>= 8;
                bits -= 8;
            }
        }
        if bits > 0 {
            out.push(buf as u8);
        }
        return;
    }
    let mut buf: u128 = 0;
    let mut bits: u32 = 0;
    for v in values {
        buf |= (v as u128) << bits;
        bits += width;
        while bits >= 8 {
            out.push((buf & 0xff) as u8);
            buf >>= 8;
            bits -= 8;
        }
    }
    if bits > 0 {
        out.push((buf & 0xff) as u8);
    }
}

/// Unpacks `rows` values bit-packed at `width` bits (`width <= 64`),
/// feeding `emit` blocks of up to 8 values (every block but the last is
/// exactly 8). `packed` must hold exactly [`packed_id_bytes`]`(rows, width)`
/// bytes — callers bounds-check first.
///
/// The block API is the fast path's point: consumers bulk-append each slice
/// (one capacity check per 8 values instead of one per value), and at
/// widths <= 16 a whole block comes out of one or two unaligned `u64`
/// loads — 8 values span exactly `width` bytes, so blocks start
/// byte-aligned and every shift is a compile-time multiple of `width`.
fn unpack_bit_blocks(packed: &[u8], rows: usize, width: u32, mut emit: impl FnMut(&[u64])) {
    let mut blk = [0u64; 8];
    if width == 0 {
        let mut left = rows;
        while left >= 8 {
            emit(&blk);
            left -= 8;
        }
        if left > 0 {
            emit(&blk[..left]);
        }
        return;
    }
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let mut i = 0usize;
    if width <= 8 {
        // All 8 values fit one unaligned u64 (the last ends at bit
        // 7*width + width <= 64).
        while i + 8 <= rows {
            let base = i * width as usize / 8;
            let Some(window) = packed.get(base..base + 8) else {
                break;
            };
            let w = u64::from_le_bytes(window.try_into().expect("8 bytes"));
            for (k, b) in blk.iter_mut().enumerate() {
                *b = (w >> (k as u32 * width)) & mask;
            }
            emit(&blk);
            i += 8;
        }
    } else if width <= 16 {
        // Two unaligned u64 loads per block: values 0-3 from `base` (the
        // last ends at 4*width <= 64), values 4-7 from the byte where value
        // 4 starts, pre-shifted by its sub-byte bit offset (<= 4, and
        // 4 + 4*width <= 64 for width <= 15; width 16 is byte-aligned with
        // offset 0).
        while i + 8 <= rows {
            let base = i * width as usize / 8;
            let hi_at = base + (4 * width as usize) / 8;
            let Some(hw) = packed.get(hi_at..hi_at + 8) else {
                break;
            };
            let hi = u64::from_le_bytes(hw.try_into().expect("8 bytes"));
            let lo = u64::from_le_bytes(packed[base..base + 8].try_into().expect("8 bytes"));
            let hi_shift = (4 * width) % 8;
            let (low4, high4) = blk.split_at_mut(4);
            for (k, (l, h)) in low4.iter_mut().zip(high4).enumerate() {
                *l = (lo >> (k as u32 * width)) & mask;
                *h = (hi >> (hi_shift + k as u32 * width)) & mask;
            }
            emit(&blk);
            i += 8;
        }
    }
    let mut n = 0usize;
    if width <= PACK_FAST_WIDTH {
        // Positional path: value `i` spans bits `[i*width, i*width +
        // width)`, which sit inside the unaligned u64 starting at its byte
        // (shift <= 7, so width + shift <= 63). One load + shift + mask per
        // value while a full 8-byte window exists. Handles all widths the
        // block paths skip, plus each block path's last-window tail.
        while i < rows {
            let bitpos = i as u64 * width as u64;
            let at = (bitpos / 8) as usize;
            let Some(window) = packed.get(at..at + 8) else {
                break;
            };
            let w = u64::from_le_bytes(window.try_into().expect("8 bytes"));
            blk[n] = (w >> (bitpos % 8)) & mask;
            n += 1;
            if n == 8 {
                emit(&blk);
                n = 0;
            }
            i += 1;
        }
        // Tail: assemble the last few values byte by byte.
        for j in i..rows {
            let bitpos = j as u64 * width as u64;
            let mut at = (bitpos / 8) as usize;
            let mut shift = (bitpos % 8) as u32;
            let mut v: u64 = 0;
            let mut got = 0u32;
            while got < width {
                v |= ((packed[at] as u64) >> shift) << got;
                got += 8 - shift;
                at += 1;
                shift = 0;
            }
            blk[n] = v & mask;
            n += 1;
            if n == 8 {
                emit(&blk);
                n = 0;
            }
        }
        if n > 0 {
            emit(&blk[..n]);
        }
        return;
    }
    let mut next = packed.iter();
    let mut buf: u128 = 0;
    let mut bits: u32 = 0;
    for _ in 0..rows {
        while bits < width {
            let byte = next.next().expect("caller sized the packed section");
            buf |= (*byte as u128) << bits;
            bits += 8;
        }
        blk[n] = (buf as u64) & mask;
        n += 1;
        if n == 8 {
            emit(&blk);
            n = 0;
        }
        buf >>= width;
        bits -= width;
    }
    if n > 0 {
        emit(&blk[..n]);
    }
}

/// FoR `Int64` payload decode for widths 1..=16: unpacks straight into the
/// result vector (chunked index writes — no per-block staging buffer or
/// `Vec` capacity checks on the hot path). The vector comes from
/// `vec![0; rows]`, which large allocators satisfy with already-zeroed
/// pages, so the "extra" zeroing pass costs nothing the `with_capacity`
/// route wouldn't also pay in first-touch faults.
fn unpack_for_i64_small(packed: &[u8], rows: usize, width: u32, min: i64) -> Vec<i64> {
    debug_assert!((1..=16).contains(&width));
    let mask = (1u64 << width) - 1;
    let w = width as usize;
    let mut v = vec![0i64; rows];
    let mut done = 0usize;
    let mut chunks = v.chunks_exact_mut(8);
    for out8 in chunks.by_ref() {
        // 8 values span exactly `w` bytes, so block starts are
        // byte-aligned; a 16-byte window covers both loads below. Blocks
        // the window can't cover (at most the last two) fall to the
        // per-value tail.
        let base = done * w / 8;
        let Some(win) = packed.get(base..base + 16) else {
            break;
        };
        let lo = u64::from_le_bytes(win[..8].try_into().expect("8 bytes"));
        if width <= 8 {
            for (k, o) in out8.iter_mut().enumerate() {
                *o = min.wrapping_add(((lo >> (k as u32 * width)) & mask) as i64);
            }
        } else {
            let hi_off = (4 * w) / 8;
            let hi = u64::from_le_bytes(win[hi_off..hi_off + 8].try_into().expect("8 bytes"));
            let hi_shift = (4 * width as usize % 8) as u32;
            for k in 0..4u32 {
                out8[k as usize] = min.wrapping_add(((lo >> (k * width)) & mask) as i64);
                out8[k as usize + 4] =
                    min.wrapping_add(((hi >> (hi_shift + k * width)) & mask) as i64);
            }
        }
        done += 8;
    }
    drop(chunks);
    // Tail: positional per-value reads (at most 3 bytes per value at these
    // widths), never past the packed section's exact length.
    for (i, o) in v.iter_mut().enumerate().skip(done) {
        let bit = i * w;
        let shift = (bit % 8) as u32;
        let mut byte = bit / 8;
        let mut acc = 0u64;
        let mut got = 0u32;
        while got < shift + width {
            acc |= (packed[byte] as u64) << got;
            got += 8;
            byte += 1;
        }
        *o = min.wrapping_add(((acc >> shift) & mask) as i64);
    }
    v
}

/// Per-value adapter over [`unpack_bit_blocks`] for consumers whose work is
/// inherently per value (bool validation, RLE-style logic).
fn unpack_bits(packed: &[u8], rows: usize, width: u32, mut emit: impl FnMut(u64)) {
    unpack_bit_blocks(packed, rows, width, |blk| {
        for &v in blk {
            emit(v);
        }
    });
}

/// Size in bytes of a serialized dictionary section (`u32` entry count plus
/// `u32` length + payload per entry) — the one-time transfer a wire exchange
/// of a dict column pays per (table, column).
pub fn dictionary_page_bytes(dict: &Dictionary) -> u64 {
    4 + dict
        .values()
        .iter()
        .map(|s| 4 + s.len() as u64)
        .sum::<u64>()
}

/// The distinct entries a column's rows reference, with their total
/// serialized entry bytes: `(entry_count, entry_bytes)`.
fn referenced_entries(col: &ColumnData) -> (usize, u64) {
    match col {
        ColumnData::Utf8(v) => {
            let mut seen: HashSet<&str> = HashSet::new();
            let mut bytes = 0u64;
            for s in v {
                if seen.insert(s) {
                    bytes += 4 + s.len() as u64;
                }
            }
            (seen.len(), bytes)
        }
        ColumnData::Dict { ids, dict } => {
            let mut seen = vec![false; dict.len()];
            let mut count = 0usize;
            let mut bytes = 0u64;
            for &id in ids {
                if !seen[id as usize] {
                    seen[id as usize] = true;
                    count += 1;
                    bytes += dict.value_bytes(id) as u64;
                }
            }
            (count, bytes)
        }
        ColumnData::Int64(v) => {
            let mut seen: HashSet<i64> = HashSet::new();
            for &x in v {
                seen.insert(x);
            }
            (seen.len(), seen.len() as u64 * 8)
        }
        ColumnData::DictInt { ids, dict } => {
            let mut seen = vec![false; dict.len()];
            let mut count = 0usize;
            for &id in ids {
                if !seen[id as usize] {
                    seen[id as usize] = true;
                    count += 1;
                }
            }
            (count, count as u64 * 8)
        }
        _ => (0, 0),
    }
}

/// Number of equal-value runs in the column (1 run minimum when non-empty),
/// plus the total serialized bytes of one value per run.
fn rle_runs(col: &ColumnData) -> (u64, u64) {
    fn runs_by<T, K: PartialEq>(
        v: &[T],
        key: impl Fn(&T) -> K,
        width: impl Fn(&T) -> u64,
    ) -> (u64, u64) {
        let mut runs = 0u64;
        let mut bytes = 0u64;
        let mut prev: Option<K> = None;
        for x in v {
            let k = key(x);
            if prev.as_ref() != Some(&k) {
                runs += 1;
                bytes += width(x);
                prev = Some(k);
            }
        }
        (runs, bytes)
    }
    match col {
        ColumnData::Int64(v) => runs_by(v, |&x| x, |_| 8),
        ColumnData::Float64(v) => runs_by(v, |x| x.to_bits(), |_| 8),
        ColumnData::Bool(v) => runs_by(v, |&b| b, |_| 1),
        ColumnData::Utf8(v) => {
            // Adjacent &str comparison — this runs for every string column
            // of every partition build, so no per-row clones.
            let mut runs = 0u64;
            let mut bytes = 0u64;
            for (i, s) in v.iter().enumerate() {
                if i == 0 || v[i - 1] != *s {
                    runs += 1;
                    bytes += 4 + s.len() as u64;
                }
            }
            (runs, bytes)
        }
        ColumnData::Dict { ids, dict } => {
            let mut runs = 0u64;
            let mut bytes = 0u64;
            let mut prev: Option<u32> = None;
            for &id in ids {
                // Distinct ids always hold distinct strings (interning), so
                // id equality is value equality here.
                if prev != Some(id) {
                    runs += 1;
                    bytes += dict.value_bytes(id) as u64;
                    prev = Some(id);
                }
            }
            (runs, bytes)
        }
        // Id equality is value equality under interning, as for strings.
        ColumnData::DictInt { ids, .. } => runs_by(ids, |&id| id, |_| 8),
    }
}

/// Exact size in bytes of `encode_column(col, codec)` without materializing
/// the page (partitions account every column of every partition, so the
/// picker must not allocate payloads).
pub fn encoded_size(col: &ColumnData, codec: PageCodec) -> Result<u64> {
    let header = PAGE_HEADER_BYTES as u64;
    let rows = col.len() as u64;
    Ok(match codec {
        PageCodec::Plain => match col {
            ColumnData::Int64(_) | ColumnData::Float64(_) | ColumnData::DictInt { .. } => {
                header + rows * 8
            }
            ColumnData::Bool(_) => header + rows,
            // `byte_size` is exactly Σ (4 + len) for both string encodings.
            ColumnData::Utf8(_) | ColumnData::Dict { .. } => header + col.byte_size() as u64,
        },
        PageCodec::Dict => {
            if !codec.applies_to(col.data_type()) {
                return Err(err(format!(
                    "dict codec applies to strings and ints, not {}",
                    col.data_type()
                )));
            }
            let (entries, entry_bytes) = referenced_entries(col);
            header + 4 + entry_bytes + 1 + packed_id_bytes(col.len(), id_bit_width(entries))
        }
        PageCodec::Rle => {
            let (runs, value_bytes) = rle_runs(col);
            header + 4 + runs * 4 + value_bytes
        }
        PageCodec::For => match for_frame(col)? {
            None => header,
            Some((_, width)) => header + 8 + 1 + packed_id_bytes(col.len(), width),
        },
        PageCodec::Delta => match delta_frame(col)? {
            None => header,
            Some((_, _, width)) => header + 8 + 8 + 1 + packed_id_bytes(col.len() - 1, width),
        },
    })
}

/// The smallest-page codec for this column (ties break toward the earlier
/// candidate, so the choice is deterministic).
pub fn pick_codec(col: &ColumnData) -> PageCodec {
    // Int columns take a fused stats pass: the RLE run count, the FoR
    // min/max, and the Delta min/max-delta all fall out of one loop, where
    // the generic path below re-scans the column once per candidate.
    if let ColumnData::Int64(v) = col {
        return pick_int_codec(v);
    }
    let mut best = PageCodec::Plain;
    let mut best_size = u64::MAX;
    for c in PageCodec::candidates(col.data_type()) {
        let size = encoded_size(col, c).expect("candidate codecs always apply");
        if size < best_size {
            best = c;
            best_size = size;
        }
    }
    best
}

/// Hard cap on the distinct-value count an `Int64` column may have and
/// still be a `Dict` page candidate. The dict codec only pays when NDV is
/// tiny (enum codes, bucketed dates), and sizing the candidate costs a hash
/// insert per row in the fused stats pass — without a cap a 200k-row
/// high-NDV column spends more time hashing than encoding. Once tracking
/// passes the cap the set is dropped and `Dict` is disqualified outright;
/// the picker contract (and [`pick_codec`]'s parity with the generic
/// argmin) is defined over this capped candidate set.
pub const DICT_INT_MAX_ENTRIES: usize = 4096;

/// Single-pass `Int64` codec pick: identical sizes and tie-break order to
/// the generic [`encoded_size`]-per-candidate loop (`Plain`, `Dict`, `Rle`,
/// `For`, `Delta` — earlier wins on equal size), except that `Dict` is
/// disqualified past [`DICT_INT_MAX_ENTRIES`] distinct values so the stats
/// pass never hashes an unbounded domain.
fn pick_int_codec(v: &[i64]) -> PageCodec {
    let header = PAGE_HEADER_BYTES as u64;
    let Some(&first) = v.first() else {
        // Empty column: For ties Plain at a bare header and the tie-break
        // prefers the earlier candidate.
        return PageCodec::Plain;
    };
    let (mut min, mut max) = (first, first);
    let mut runs = 1u64;
    let mut prev = first;
    let mut deltas: Option<(i64, i64)> = None;
    let mut distinct: HashSet<i64> = HashSet::new();
    distinct.insert(first);
    let mut dict_viable = true;
    for &x in &v[1..] {
        min = min.min(x);
        max = max.max(x);
        runs += u64::from(x != prev);
        let d = x.wrapping_sub(prev);
        deltas = Some(match deltas {
            None => (d, d),
            Some((lo, hi)) => (lo.min(d), hi.max(d)),
        });
        if dict_viable && distinct.insert(x) && distinct.len() > DICT_INT_MAX_ENTRIES {
            // Over the cap: free the set so the rest of the scan is pure
            // min/max/run/delta arithmetic.
            dict_viable = false;
            distinct = HashSet::new();
        }
        prev = x;
    }
    let (min_d, max_d) = deltas.unwrap_or((0, 0));
    let for_width = range_bit_width(max.wrapping_sub(min) as u64);
    let delta_width = range_bit_width(max_d.wrapping_sub(min_d) as u64);
    let entries = distinct.len();
    let dict_size = if dict_viable {
        header + 4 + entries as u64 * 8 + 1 + packed_id_bytes(v.len(), id_bit_width(entries))
    } else {
        u64::MAX
    };
    let candidates = [
        (header + v.len() as u64 * 8, PageCodec::Plain),
        (dict_size, PageCodec::Dict),
        (header + 4 + runs * (4 + 8), PageCodec::Rle),
        (
            header + 8 + 1 + packed_id_bytes(v.len(), for_width),
            PageCodec::For,
        ),
        (
            header + 8 + 8 + 1 + packed_id_bytes(v.len() - 1, delta_width),
            PageCodec::Delta,
        ),
    ];
    let mut best = candidates[0];
    for &cand in &candidates[1..] {
        if cand.0 < best.0 {
            best = cand;
        }
    }
    best.1
}

/// Page metadata under the size-based codec picker — what
/// [`crate::partition::MicroPartition`] stores per column.
pub fn best_page(col: &ColumnData) -> EncodedPage {
    let codec = pick_codec(col);
    let encoded_bytes = encoded_size(col, codec).expect("picked codec applies");
    let dict_bytes = if codec == PageCodec::Dict {
        let (_, entry_bytes) = referenced_entries(col);
        4 + entry_bytes
    } else {
        0
    };
    EncodedPage {
        codec,
        encoded_bytes,
        decoded_bytes: col.byte_size() as u64,
        rows: col.len(),
        dict_bytes,
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn push_header(out: &mut Vec<u8>, codec: PageCodec, dt: DataType, rows: u32) {
    push_header_flags(out, codec, dt, rows, 0);
}

fn push_header_flags(out: &mut Vec<u8>, codec: PageCodec, dt: DataType, rows: u32, flags: u8) {
    out.extend_from_slice(&PAGE_MAGIC);
    out.push(PAGE_VERSION);
    out.push(codec.tag());
    out.push(dtype_tag(dt));
    out.push(flags);
    push_u32(out, rows);
}

/// Header flag bit marking a wire-stream page that *references* stream
/// state the receiver already holds instead of inlining it: a dict page
/// riding on an already-shipped dictionary (ids section only), or a
/// FoR/Delta page riding on an already-shipped int frame (packed offsets
/// only, no frame header).
pub const PAGE_FLAG_DICT_REF: u8 = 1;
/// Header flag bit marking a wire-stream page: a `u32` stream id follows
/// the header, naming the entry in the receiver's cache this page fills
/// (first transfer of a dictionary or int frame) or references
/// ([`PAGE_FLAG_DICT_REF`] also set).
pub const PAGE_FLAG_WIRE_STREAM: u8 = 2;

/// Bit-packs `ids` at `width` bits each, LSB-first.
pub(crate) fn pack_ids(out: &mut Vec<u8>, ids: impl Iterator<Item = u32>, width: u32) {
    pack_bits(out, ids.map(u64::from), width);
}

/// Encodes a column as one self-contained page under the given codec.
/// Returns the page metadata and the bytes; `decode_column` inverts it.
pub fn encode_column(col: &ColumnData, codec: PageCodec) -> Result<(EncodedPage, Vec<u8>)> {
    let rows = page_rows(col.len())?;
    let mut out = Vec::with_capacity(PAGE_HEADER_BYTES + 16);
    push_header(&mut out, codec, col.data_type(), rows);
    let mut dict_bytes = 0u64;
    match codec {
        PageCodec::Plain => match col {
            ColumnData::Int64(v) => v
                .iter()
                .for_each(|x| out.extend_from_slice(&x.to_le_bytes())),
            ColumnData::Float64(v) => v
                .iter()
                .for_each(|x| out.extend_from_slice(&x.to_bits().to_le_bytes())),
            ColumnData::Bool(v) => v.iter().for_each(|&b| out.push(b as u8)),
            ColumnData::Utf8(v) => v.iter().for_each(|s| push_str(&mut out, s)),
            ColumnData::Dict { ids, dict } => {
                ids.iter().for_each(|&id| push_str(&mut out, dict.get(id)))
            }
            ColumnData::DictInt { ids, dict } => ids
                .iter()
                .for_each(|&id| out.extend_from_slice(&dict.get(id).to_le_bytes())),
        },
        PageCodec::Dict if col.data_type() == DataType::Int64 => {
            // Int dictionary page: local dictionary in first-appearance
            // order (raw 8-byte entries), then bit-packed local ids — the
            // integer twin of the string layout below.
            let (local, local_ids): (IntDict, Vec<u32>) = match col {
                ColumnData::Int64(v) => IntDict::encode(v.iter().copied()),
                ColumnData::DictInt { ids, dict } => {
                    let mut remap: Vec<u32> = vec![u32::MAX; dict.len()];
                    let mut local = IntDict::new();
                    let local_ids = ids
                        .iter()
                        .map(|&id| {
                            if remap[id as usize] == u32::MAX {
                                remap[id as usize] = local.intern(dict.get(id));
                            }
                            remap[id as usize]
                        })
                        .collect();
                    (local, local_ids)
                }
                _ => unreachable!("int dtype guard matched a non-int column"),
            };
            let section_start = out.len();
            push_u32(&mut out, local.len() as u32);
            for &entry in local.values() {
                out.extend_from_slice(&entry.to_le_bytes());
            }
            dict_bytes = (out.len() - section_start) as u64;
            let width = id_bit_width(local.len());
            out.push(width as u8);
            pack_ids(&mut out, local_ids.into_iter(), width);
        }
        PageCodec::Dict => {
            // Local dictionary in first-appearance order over this page's
            // rows only (a table-wide dictionary's unreferenced tail is not
            // shipped), then bit-packed local ids.
            let (local, local_ids): (Dictionary, Vec<u32>) = match col {
                ColumnData::Utf8(v) => Dictionary::encode(v.iter().map(String::as_str)),
                ColumnData::Dict { ids, dict } => {
                    let mut remap: Vec<u32> = vec![u32::MAX; dict.len()];
                    let mut local = Dictionary::new();
                    let local_ids = ids
                        .iter()
                        .map(|&id| {
                            if remap[id as usize] == u32::MAX {
                                remap[id as usize] = local.intern(dict.get(id));
                            }
                            remap[id as usize]
                        })
                        .collect();
                    (local, local_ids)
                }
                other => {
                    return Err(err(format!(
                        "dict codec applies to strings and ints, not {}",
                        other.data_type()
                    )))
                }
            };
            let section_start = out.len();
            push_u32(&mut out, local.len() as u32);
            for entry in local.values() {
                push_str(&mut out, entry);
            }
            dict_bytes = (out.len() - section_start) as u64;
            let width = id_bit_width(local.len());
            out.push(width as u8);
            pack_ids(&mut out, local_ids.into_iter(), width);
        }
        PageCodec::Rle => {
            let run_count_at = out.len();
            push_u32(&mut out, 0); // patched below
            let mut runs = 0u32;
            macro_rules! rle {
                ($vals:expr, $key:expr, $emit:expr) => {{
                    let mut iter = $vals;
                    if let Some(first) = iter.next() {
                        let mut cur = first;
                        let mut len = 1u32;
                        for x in iter {
                            if $key(&x) == $key(&cur) {
                                len += 1;
                            } else {
                                runs += 1;
                                push_u32(&mut out, len);
                                $emit(&mut out, &cur);
                                cur = x;
                                len = 1;
                            }
                        }
                        runs += 1;
                        push_u32(&mut out, len);
                        $emit(&mut out, &cur);
                    }
                }};
            }
            match col {
                ColumnData::Int64(v) => rle!(
                    v.iter().copied(),
                    |x: &i64| *x,
                    |out: &mut Vec<u8>, x: &i64| out.extend_from_slice(&x.to_le_bytes())
                ),
                ColumnData::Float64(v) => rle!(
                    v.iter().copied(),
                    |x: &f64| x.to_bits(),
                    |out: &mut Vec<u8>, x: &f64| out.extend_from_slice(&x.to_bits().to_le_bytes())
                ),
                ColumnData::Bool(v) => rle!(
                    v.iter().copied(),
                    |b: &bool| *b,
                    |out: &mut Vec<u8>, b: &bool| out.push(*b as u8)
                ),
                ColumnData::Utf8(v) => {
                    let mut i = 0;
                    while i < v.len() {
                        let mut end = i + 1;
                        while end < v.len() && v[end] == v[i] {
                            end += 1;
                        }
                        runs += 1;
                        push_u32(&mut out, (end - i) as u32);
                        push_str(&mut out, &v[i]);
                        i = end;
                    }
                }
                ColumnData::Dict { ids, dict } => rle!(
                    // Id equality is value equality under interning.
                    ids.iter().copied(),
                    |id: &u32| *id,
                    |out: &mut Vec<u8>, id: &u32| push_str(out, dict.get(*id))
                ),
                ColumnData::DictInt { ids, dict } => rle!(
                    ids.iter().copied(),
                    |id: &u32| *id,
                    |out: &mut Vec<u8>, id: &u32| out
                        .extend_from_slice(&dict.get(*id).to_le_bytes())
                ),
            }
            out[run_count_at..run_count_at + 4].copy_from_slice(&runs.to_le_bytes());
        }
        PageCodec::For => {
            if let Some((min, width)) = for_frame(col)? {
                out.extend_from_slice(&min.to_le_bytes());
                out.push(width as u8);
                match col {
                    ColumnData::Int64(v) => pack_bits(
                        &mut out,
                        v.iter().map(|&x| x.wrapping_sub(min) as u64),
                        width,
                    ),
                    ColumnData::Bool(v) => pack_bits(
                        &mut out,
                        v.iter().map(|&b| (i64::from(b)).wrapping_sub(min) as u64),
                        width,
                    ),
                    ColumnData::DictInt { ids, dict } => pack_bits(
                        &mut out,
                        ids.iter().map(|&id| dict.get(id).wrapping_sub(min) as u64),
                        width,
                    ),
                    _ => unreachable!("for_frame rejected the type"),
                }
            }
        }
        PageCodec::Delta => {
            if let Some((first, min_d, width)) = delta_frame(col)? {
                out.extend_from_slice(&first.to_le_bytes());
                out.extend_from_slice(&min_d.to_le_bytes());
                out.push(width as u8);
                let mut vals = int_values(col).expect("delta_frame accepted the type");
                let mut prev = vals.next().expect("non-empty by the frame");
                pack_bits(
                    &mut out,
                    vals.map(|x| {
                        let d = x.wrapping_sub(prev).wrapping_sub(min_d) as u64;
                        prev = x;
                        d
                    }),
                    width,
                );
            }
        }
    }
    let meta = EncodedPage {
        codec,
        encoded_bytes: out.len() as u64,
        decoded_bytes: col.byte_size() as u64,
        rows: col.len(),
        dict_bytes,
    };
    debug_assert_eq!(
        meta.encoded_bytes,
        encoded_size(col, codec).expect("sized codec"),
        "size-only accounting must match the real encoder"
    );
    Ok((meta, out))
}

/// Encodes under the size-picked codec.
pub fn encode_best(col: &ColumnData) -> Result<(EncodedPage, Vec<u8>)> {
    encode_column(col, pick_codec(col))
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian reader over page bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| {
                err(format!(
                    "truncated page: need {n} bytes at offset {}, have {}",
                    self.at,
                    self.bytes.len().saturating_sub(self.at)
                ))
            })?;
        let s = &self.bytes[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| err(format!("invalid UTF-8 in page: {e}")))
    }

    /// Bytes left to read.
    fn remaining(&self) -> u64 {
        (self.bytes.len() - self.at) as u64
    }

    /// Errors unless at least `bytes` more payload bytes exist. Decoders
    /// call this with the *declared* payload size before any
    /// row-proportional allocation, so forged headers fail cheaply.
    fn need(&self, bytes: u64) -> Result<()> {
        if bytes <= self.remaining() {
            Ok(())
        } else {
            Err(err(format!(
                "truncated page: payload declares {bytes} bytes, {} remain",
                self.remaining()
            )))
        }
    }

    fn done(&self) -> Result<()> {
        if self.at == self.bytes.len() {
            Ok(())
        } else {
            Err(err(format!(
                "{} trailing bytes after page payload",
                self.bytes.len() - self.at
            )))
        }
    }
}

/// Decoder hardening bound on the declared row count of a single page.
///
/// Width-0 frames, empty-dictionary ids, and RLE runs legitimately encode
/// *constant* row ranges in O(1) payload bytes, so payload-size validation
/// alone cannot bound the decode allocation — a forged header could demand
/// a 32 GB materialization from a 21-byte page. Real pages are per-column
/// chunks of one micro-partition (thousands to at most a few hundred
/// thousand rows); this bound leaves ~80x headroom over the largest page
/// in the workspace while capping a forged constant page's decode at
/// 128 MB of i64s.
pub const MAX_DECODE_ROWS: usize = 1 << 24;

/// Validates a column length against the page row bound shared by encoder
/// and decoder, keeping `decode(encode(c)) == c` total: anything the
/// encoder accepts, [`parse_header`] accepts back.
fn page_rows(len: usize) -> Result<u32> {
    if len > MAX_DECODE_ROWS {
        return Err(err(format!(
            "page overflow: {len} rows exceeds the page bound of {MAX_DECODE_ROWS}"
        )));
    }
    Ok(len as u32)
}

/// [`packed_id_bytes`] with overflow-checked arithmetic, for decoders fed
/// untrusted row counts and widths.
fn packed_bytes_checked(rows: usize, width: u32) -> Result<u64> {
    (rows as u64)
        .checked_mul(width as u64)
        .map(|bits| bits.div_ceil(8))
        .ok_or_else(|| {
            err(format!(
                "bit-packed section overflows: {rows} rows at {width} bits"
            ))
        })
}

/// The parsed fixed header of one page.
struct PageHeader {
    codec: PageCodec,
    dt: DataType,
    flags: u8,
    rows: usize,
}

fn parse_header(c: &mut Cursor) -> Result<PageHeader> {
    let magic = c.take(4)?;
    if magic != PAGE_MAGIC {
        return Err(err(format!("bad page magic {magic:02x?}")));
    }
    let version = c.u8()?;
    if version != PAGE_VERSION {
        return Err(err(format!("unsupported page version {version}")));
    }
    let codec = PageCodec::from_tag(c.u8()?)?;
    let dt = dtype_from_tag(c.u8()?)?;
    let flags = c.u8()?;
    let rows = c.u32()? as usize;
    if rows > MAX_DECODE_ROWS {
        return Err(err(format!(
            "page declares {rows} rows, decoder bound is {MAX_DECODE_ROWS}"
        )));
    }
    Ok(PageHeader {
        codec,
        dt,
        flags,
        rows,
    })
}

/// Decodes a self-contained page back into a column. Every malformed input
/// (bad magic/version/tags, truncated payload, invalid UTF-8, out-of-range
/// ids, bit widths over 64, run/row count mismatch, trailing bytes) is an
/// `Err`, never a panic — and declared sizes are checked against the real
/// payload before any row-proportional allocation. Wire-stream pages
/// (flagged, dictionary-by-reference) need a [`WireDecoder`].
pub fn decode_column(bytes: &[u8]) -> Result<ColumnData> {
    let mut c = Cursor { bytes, at: 0 };
    let h = parse_header(&mut c)?;
    if h.flags & (PAGE_FLAG_WIRE_STREAM | PAGE_FLAG_DICT_REF) != 0 {
        return Err(err(
            "wire-stream page needs the stream's dictionary cache (WireDecoder)".into(),
        ));
    }
    if h.flags != 0 {
        return Err(err(format!("unknown page flags {:#04x}", h.flags)));
    }
    let col = decode_payload(&mut c, h.codec, h.dt, h.rows)?;
    c.done()?;
    Ok(col)
}

/// Decodes the codec payload of a self-contained page (everything after the
/// header) into a column of exactly `rows` values.
fn decode_payload(
    c: &mut Cursor,
    codec: PageCodec,
    dt: DataType,
    rows: usize,
) -> Result<ColumnData> {
    let col = match codec {
        PageCodec::Plain => match dt {
            DataType::Int64 => {
                c.need(rows as u64 * 8)?;
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(c.u64()? as i64);
                }
                ColumnData::Int64(v)
            }
            DataType::Float64 => {
                c.need(rows as u64 * 8)?;
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(f64::from_bits(c.u64()?));
                }
                ColumnData::Float64(v)
            }
            DataType::Bool => {
                c.need(rows as u64)?;
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(decode_bool(c.u8()?)?);
                }
                ColumnData::Bool(v)
            }
            DataType::Utf8 => {
                // Every string costs at least its 4-byte length header.
                c.need(rows as u64 * 4)?;
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(c.str()?);
                }
                ColumnData::Utf8(v)
            }
        },
        PageCodec::Dict => match dt {
            DataType::Utf8 => {
                let dict = read_dictionary_section(c)?;
                let ids = read_packed_ids(c, rows, dict.len())?;
                ColumnData::Dict {
                    ids,
                    dict: Arc::new(dict),
                }
            }
            DataType::Int64 => {
                let dict = read_int_dictionary_section(c)?;
                let ids = read_packed_ids(c, rows, dict.len())?;
                ColumnData::DictInt {
                    ids,
                    dict: Arc::new(dict),
                }
            }
            _ => return Err(err(format!("dict page with unsupported dtype {dt}"))),
        },
        PageCodec::Rle => {
            let runs = c.u32()?;
            // A run costs at least its 4-byte length plus a 1-byte value.
            c.need(runs as u64 * 5)?;
            let mut col = ColumnData::with_capacity(dt, rows);
            let mut decoded = 0usize;
            for _ in 0..runs {
                let len = c.u32()? as usize;
                decoded = decoded
                    .checked_add(len)
                    .filter(|&d| d <= rows)
                    .ok_or_else(|| err(format!("rle runs exceed declared {rows} rows")))?;
                match (&mut col, dt) {
                    (ColumnData::Int64(v), _) => {
                        let x = c.u64()? as i64;
                        v.extend(std::iter::repeat_n(x, len));
                    }
                    (ColumnData::Float64(v), _) => {
                        let x = f64::from_bits(c.u64()?);
                        v.extend(std::iter::repeat_n(x, len));
                    }
                    (ColumnData::Bool(v), _) => {
                        let b = decode_bool(c.u8()?)?;
                        v.extend(std::iter::repeat_n(b, len));
                    }
                    (ColumnData::Utf8(v), _) => {
                        let s = c.str()?;
                        v.extend(std::iter::repeat_n(s, len));
                    }
                    (other, _) => {
                        return Err(err(format!(
                            "rle decode into unexpected column {}",
                            other.data_type()
                        )))
                    }
                }
            }
            if decoded != rows {
                return Err(err(format!(
                    "rle page decodes {decoded} rows, header declares {rows}"
                )));
            }
            col
        }
        PageCodec::For => {
            if !codec.applies_to(dt) || dt == DataType::Utf8 {
                return Err(err(format!("for page with unsupported dtype {dt}")));
            }
            if rows == 0 {
                ColumnData::empty(dt)
            } else {
                let min = c.u64()? as i64;
                let width = c.u8()? as u32;
                if width > 64 {
                    return Err(err(format!("for page bit width {width} exceeds 64")));
                }
                let packed = c.take(packed_bytes_checked(rows, width)? as usize)?;
                match dt {
                    DataType::Int64 if width == 0 => ColumnData::Int64(vec![min; rows]),
                    DataType::Int64 if width <= 16 => {
                        ColumnData::Int64(unpack_for_i64_small(packed, rows, width, min))
                    }
                    DataType::Int64 => {
                        let mut v = Vec::with_capacity(rows);
                        let mut tmp = [0i64; 8];
                        unpack_bit_blocks(packed, rows, width, |blk| {
                            for (t, &off) in tmp.iter_mut().zip(blk) {
                                *t = min.wrapping_add(off as i64);
                            }
                            v.extend_from_slice(&tmp[..blk.len()]);
                        });
                        ColumnData::Int64(v)
                    }
                    DataType::Bool => {
                        if !matches!(min, 0 | 1) {
                            return Err(err(format!("bool for page with frame min {min}")));
                        }
                        let mut v = Vec::with_capacity(rows);
                        let mut bad = None;
                        unpack_bits(packed, rows, width, |off| {
                            match min.wrapping_add(off as i64) {
                                0 => v.push(false),
                                1 => v.push(true),
                                other => bad = Some(other),
                            }
                        });
                        if let Some(other) = bad {
                            return Err(err(format!("bool for page decodes value {other}")));
                        }
                        ColumnData::Bool(v)
                    }
                    _ => unreachable!("applies_to checked above"),
                }
            }
        }
        PageCodec::Delta => {
            if dt != DataType::Int64 {
                return Err(err(format!("delta page with non-INT dtype {dt}")));
            }
            if rows == 0 {
                ColumnData::empty(dt)
            } else {
                let first = c.u64()? as i64;
                let min_d = c.u64()? as i64;
                let width = c.u8()? as u32;
                if width > 64 {
                    return Err(err(format!("delta page bit width {width} exceeds 64")));
                }
                let packed = c.take(packed_bytes_checked(rows - 1, width)? as usize)?;
                if width == 0 {
                    // Every delta equals `min_d`: the column is an
                    // arithmetic sequence, materialized without touching
                    // the (empty) packed section or a running carry.
                    ColumnData::Int64(
                        (0..rows as i64)
                            .map(|k| first.wrapping_add(min_d.wrapping_mul(k)))
                            .collect(),
                    )
                } else {
                    let mut v = Vec::with_capacity(rows);
                    v.push(first);
                    let mut cur = first;
                    let mut tmp = [0i64; 8];
                    unpack_bit_blocks(packed, rows - 1, width, |blk| {
                        for (t, &off) in tmp.iter_mut().zip(blk) {
                            cur = cur.wrapping_add(min_d.wrapping_add(off as i64));
                            *t = cur;
                        }
                        v.extend_from_slice(&tmp[..blk.len()]);
                    });
                    ColumnData::Int64(v)
                }
            }
        }
    };
    if col.len() != rows {
        return Err(err(format!(
            "page declares {rows} rows but decoded {}",
            col.len()
        )));
    }
    Ok(col)
}

fn decode_bool(b: u8) -> Result<bool> {
    match b {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(err(format!("invalid bool byte {other}"))),
    }
}

/// Reads an inline dictionary section (`u32` entry count, then
/// length-prefixed entries), validating the declared count against the
/// remaining payload before interning and rejecting duplicate entries.
/// Shared by storage Dict pages and wire dictionary transfers so the two
/// decoders can never drift.
fn read_dictionary_section(c: &mut Cursor) -> Result<Dictionary> {
    let entries = c.u32()? as usize;
    c.need(entries as u64 * 4)?;
    let mut dict = Dictionary::new();
    for _ in 0..entries {
        let s = c.str()?;
        dict.intern(&s);
    }
    if dict.len() != entries {
        return Err(err(format!(
            "dictionary section holds duplicate entries ({} distinct of {entries})",
            dict.len()
        )));
    }
    Ok(dict)
}

/// Reads an int dictionary section (`u32` entry count, then raw 8-byte
/// entries), validating the declared count against the remaining payload
/// before interning and rejecting duplicate entries — the [`IntDict`] twin
/// of [`read_dictionary_section`].
fn read_int_dictionary_section(c: &mut Cursor) -> Result<IntDict> {
    let entries = c.u32()? as usize;
    c.need(entries as u64 * 8)?;
    let mut dict = IntDict::new();
    for _ in 0..entries {
        dict.intern(c.u64()? as i64);
    }
    if dict.len() != entries {
        return Err(err(format!(
            "int dictionary section holds duplicate entries ({} distinct of {entries})",
            dict.len()
        )));
    }
    Ok(dict)
}

/// Reads a bit-packed ids section (`u8` width, then the packed ids) for a
/// dictionary of `entries`, validating the width, the payload size (before
/// any row-proportional allocation), and every id's range. Shared by
/// storage Dict pages and both wire dict page forms.
fn read_packed_ids(c: &mut Cursor, rows: usize, entries: usize) -> Result<Vec<u32>> {
    let width = c.u8()? as u32;
    if width > 32 || (entries > 1 && width < id_bit_width(entries)) {
        return Err(err(format!(
            "dict page bit width {width} invalid for {entries} entries"
        )));
    }
    if rows > 0 && entries == 0 {
        return Err(err(format!("dict page has {rows} rows but no entries")));
    }
    let packed = c.take(packed_bytes_checked(rows, width)? as usize)?;
    let ids = unpack_ids(packed, rows, width)?;
    if let Some(&bad) = ids.iter().find(|&&id| id as usize >= entries.max(1)) {
        return Err(err(format!(
            "dict page id {bad} out of range for {entries} entries"
        )));
    }
    Ok(ids)
}

pub(crate) fn unpack_ids(packed: &[u8], rows: usize, width: u32) -> Result<Vec<u32>> {
    // Callers validate widths (<= 32) and size `packed` exactly via
    // `packed_bytes_checked` + `take` before unpacking.
    let mut ids = Vec::with_capacity(rows);
    let mut tmp = [0u32; 8];
    unpack_bit_blocks(packed, rows, width, |blk| {
        for (t, &v) in tmp.iter_mut().zip(blk) {
            *t = v as u32;
        }
        ids.extend_from_slice(&tmp[..blk.len()]);
    });
    Ok(ids)
}

// ---------------------------------------------------------------------------
// Wire format
// ---------------------------------------------------------------------------

/// Serializes batches for exchange / gather transfers with one-time
/// dictionary shipping: the first batch referencing a shared dictionary pays
/// [`dictionary_page_bytes`] for it, later batches ship only bit-packed ids
/// (at the *table* dictionary's bit width, since the receiver already holds
/// every entry). Non-dict columns travel as their best self-contained page.
///
/// One encoder models one transfer stream (the engine keeps one per pipeline
/// execution), so dictionary dedup is scoped exactly like the paper's
/// per-(table, column) one-time transfer. Dictionary identity is `Arc`
/// pointer identity — the invariant the catalog establishes by interning one
/// dictionary per table column at load; the encoder holds a reference to
/// every dictionary it marks shipped, so a freed-and-reallocated address can
/// never alias an earlier entry and silently skip a transfer.
///
/// Int columns get the same stream-awareness for their codec *frames*: when
/// FoR/Delta wins the codec pick, the frame header (FoR base + bit width,
/// or delta base + width) ships once under the column's stream position and
/// later chunks ship packed offsets only ([`PAGE_FLAG_DICT_REF`]), each
/// chunk re-deriving a fresh frame mid-stream the moment its values stop
/// fitting the cached one or reuse stops being byte-beneficial (ties reuse).
#[derive(Debug, Default)]
pub struct WireEncoder {
    /// Pointer-identity → `(stream dictionary id, pinned dictionary)`.
    shipped: HashMap<usize, (u32, Arc<Dictionary>)>,
    /// Stream column position → the FoR/Delta frame last shipped there.
    frames: HashMap<u32, IntFrame>,
}

/// A FoR or Delta frame header shipped once per stream column and reused by
/// later chunks (`PAGE_FLAG_DICT_REF` int pages carry packed offsets only).
/// Reuse is exact by wrapping arithmetic: any value whose wrapping offset
/// fits `width` bits round-trips bit-identically through the cached frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IntFrame {
    /// Frame-of-reference: offsets from `min`, packed at `width` bits.
    For { min: i64, width: u32 },
    /// Delta: each chunk ships its own first value; consecutive deltas are
    /// offset by `min_d` and packed at `width` bits.
    Delta { min_d: i64, width: u32 },
}

fn fits_bits(off: u64, width: u32) -> bool {
    width >= 64 || off < 1u64 << width
}

/// Wire bytes of a `PAGE_FLAG_DICT_REF` int page for `v` under the cached
/// frame, or `None` when some offset overflows the frame's bit width (the
/// sender must re-derive). Shared by size-only accounting and the real
/// encoder so the two can never disagree on the reuse decision.
fn frame_ref_bytes(frame: IntFrame, v: &[i64]) -> Option<u64> {
    let header = PAGE_HEADER_BYTES as u64 + 4;
    match frame {
        IntFrame::For { min, width } => v
            .iter()
            .all(|&x| fits_bits(x.wrapping_sub(min) as u64, width))
            .then(|| header + packed_id_bytes(v.len(), width)),
        IntFrame::Delta { min_d, width } => v
            .windows(2)
            .all(|w| fits_bits(w[1].wrapping_sub(w[0]).wrapping_sub(min_d) as u64, width))
            .then(|| header + 8 + packed_id_bytes(v.len() - 1, width)),
    }
}

/// How one int column rides the wire, chosen by [`WireEncoder::plan_ints`].
enum IntPlan {
    /// Self-contained flagless page (Plain/RLE won, or the column is empty).
    Page { codec: PageCodec, bytes: u64 },
    /// FoR/Delta page carrying its frame inline plus the `u32` stream id
    /// that fills (or replaces) the receiver's frame cache entry.
    Fresh { codec: PageCodec, bytes: u64 },
    /// Offsets-only page against the cached frame.
    Reuse { frame: IntFrame, bytes: u64 },
}

impl WireEncoder {
    /// A fresh stream: no dictionaries shipped yet.
    pub fn new() -> WireEncoder {
        WireEncoder::default()
    }

    /// `true` if the next dict column sharing `dict` rides for ids only.
    pub fn has_shipped(&self, dict: &Arc<Dictionary>) -> bool {
        self.shipped.contains_key(&(Arc::as_ptr(dict) as usize))
    }

    /// Marks `dict` shipped (pinning it alive for the encoder's lifetime);
    /// returns its stream dictionary id and `true` on the first sighting.
    fn ship(&mut self, dict: &Arc<Dictionary>) -> (u32, bool) {
        let next_id = self.shipped.len() as u32;
        let entry = self
            .shipped
            .entry(Arc::as_ptr(dict) as usize)
            .or_insert_with(|| (next_id, dict.clone()));
        (entry.0, entry.0 == next_id)
    }

    /// Registers `alias` as the same stream dictionary as the
    /// already-shipped `original`, so a receiver-decoded view of a column
    /// (whose dictionary is the *receiver's* `Arc`, not the sender's) can
    /// be re-encoded on this stream without re-shipping its dictionary.
    /// The engine's wire-roundtrip path uses this when one pipeline has
    /// several transfer points (Exchange then Gather) and the decoded batch
    /// keeps flowing: byte accounting must match the size-only simulation,
    /// which recognizes the original `Arc` throughout. No-op when
    /// `original` was never shipped or `alias` is already known.
    pub fn alias_shipped(&mut self, original: &Arc<Dictionary>, alias: &Arc<Dictionary>) {
        if let Some(&(id, _)) = self.shipped.get(&(Arc::as_ptr(original) as usize)) {
            self.shipped
                .entry(Arc::as_ptr(alias) as usize)
                .or_insert_with(|| (id, alias.clone()));
        }
    }

    /// Number of int frames currently cached (one per stream column that
    /// has shipped a FoR/Delta chunk).
    pub fn cached_frames(&self) -> usize {
        self.frames.len()
    }

    /// Picks how the int column at stream position `stream_col` rides the
    /// wire, updating the frame cache. The single decision point for both
    /// size-only accounting and real serialization: reuse the cached frame
    /// when every offset fits it and the offsets-only page is no larger
    /// than the alternative (ties prefer reuse); otherwise ship the chunk's
    /// own best page — carrying a fresh frame when FoR/Delta won the pick,
    /// which replaces the cache entry (mid-stream re-derivation).
    fn plan_ints(&mut self, col: &ColumnData, v: &[i64], stream_col: u32) -> Result<IntPlan> {
        let codec = pick_codec(col);
        let page_bytes = encoded_size(col, codec)?;
        let reuse = (!v.is_empty())
            .then(|| self.frames.get(&stream_col))
            .flatten()
            .and_then(|&f| frame_ref_bytes(f, v).map(|bytes| (f, bytes)));
        Ok(match codec {
            PageCodec::For | PageCodec::Delta if !v.is_empty() => {
                let fresh_bytes = page_bytes + 4;
                match reuse {
                    Some((frame, bytes)) if bytes <= fresh_bytes => IntPlan::Reuse { frame, bytes },
                    _ => {
                        let frame = match codec {
                            PageCodec::For => {
                                for_frame(col)?.map(|(min, width)| IntFrame::For { min, width })
                            }
                            _ => delta_frame(col)?
                                .map(|(_, min_d, width)| IntFrame::Delta { min_d, width }),
                        }
                        .ok_or_else(|| err("picked frame codec derives no frame".into()))?;
                        self.frames.insert(stream_col, frame);
                        IntPlan::Fresh {
                            codec,
                            bytes: fresh_bytes,
                        }
                    }
                }
            }
            _ => match reuse {
                Some((frame, bytes)) if bytes <= page_bytes => IntPlan::Reuse { frame, bytes },
                _ => IntPlan::Page {
                    codec,
                    bytes: page_bytes,
                },
            },
        })
    }

    /// Wire bytes for one column at stream position `stream_col`, updating
    /// the shipped-dictionary set and the int frame cache. Size-only: the
    /// engine charges virtual wire seconds from this without materializing
    /// payloads.
    pub fn column_wire_bytes(&mut self, col: &ColumnData, stream_col: u32) -> Result<u64> {
        match col {
            ColumnData::Dict { ids, dict } => {
                let (_, first) = self.ship(dict);
                let width = id_bit_width(dict.len());
                // Header + stream dict id + bit width + packed ids.
                let mut bytes =
                    PAGE_HEADER_BYTES as u64 + 4 + 1 + packed_id_bytes(ids.len(), width);
                if first {
                    bytes += dictionary_page_bytes(dict);
                }
                Ok(bytes)
            }
            ColumnData::Int64(v) => Ok(match self.plan_ints(col, v, stream_col)? {
                IntPlan::Page { bytes, .. }
                | IntPlan::Fresh { bytes, .. }
                | IntPlan::Reuse { bytes, .. } => bytes,
            }),
            other => Ok(best_page(other).encoded_bytes),
        }
    }

    /// Wire bytes for a whole batch (sum over columns, stream positions in
    /// schema order). Selected batches are measured over their logical
    /// rows, as the exchange materialization point would ship them.
    pub fn batch_wire_bytes(&mut self, batch: &RecordBatch) -> Result<u64> {
        let dense;
        let b = if batch.selection().is_some() {
            dense = batch.compacted();
            &dense
        } else {
            batch
        };
        let mut sum = 0u64;
        for (i, c) in b.columns().iter().enumerate() {
            sum += self.column_wire_bytes(c, i as u32)?;
        }
        Ok(sum)
    }

    /// Actually serializes one column for the wire. Every emitted blob is
    /// self-describing — the "CIPG" header always comes first. A dict
    /// column's transfers carry the [`PAGE_FLAG_WIRE_STREAM`] flag and a
    /// `u32` stream dictionary id: the first transfer inlines the whole
    /// shared dictionary (filling the receiver's cache under that id),
    /// later transfers also set [`PAGE_FLAG_DICT_REF`] and carry only the
    /// bit-packed ids. An int column whose pick is FoR/Delta rides the same
    /// protocol under its stream position: frame-bearing transfers fill the
    /// receiver's frame cache, reuse transfers carry packed offsets only.
    /// Other columns emit their best self-contained page. The byte count
    /// always equals [`WireEncoder::column_wire_bytes`]; [`WireDecoder`]
    /// inverts the stream.
    pub fn encode_column(&mut self, col: &ColumnData, stream_col: u32) -> Result<Vec<u8>> {
        match col {
            ColumnData::Dict { ids, dict } => {
                let (dict_id, first) = self.ship(dict);
                let rows = page_rows(ids.len())?;
                let mut out = Vec::new();
                let flags = if first {
                    PAGE_FLAG_WIRE_STREAM
                } else {
                    PAGE_FLAG_WIRE_STREAM | PAGE_FLAG_DICT_REF
                };
                push_header_flags(&mut out, PageCodec::Dict, DataType::Utf8, rows, flags);
                push_u32(&mut out, dict_id);
                if first {
                    push_u32(&mut out, dict.len() as u32);
                    for entry in dict.values() {
                        push_str(&mut out, entry);
                    }
                }
                let width = id_bit_width(dict.len());
                out.push(width as u8);
                pack_ids(&mut out, ids.iter().copied(), width);
                Ok(out)
            }
            ColumnData::Int64(v) => {
                let plan = self.plan_ints(col, v, stream_col)?;
                let out = match plan {
                    IntPlan::Page { codec, bytes } => {
                        let blob = encode_column(col, codec)?.1;
                        debug_assert_eq!(blob.len() as u64, bytes, "int wire page size drift");
                        blob
                    }
                    IntPlan::Fresh { codec, bytes } => {
                        // The canonical self-contained page, re-headered
                        // with the stream flag and the frame id spliced in.
                        let page = encode_column(col, codec)?.1;
                        let rows = page_rows(v.len())?;
                        let mut out = Vec::with_capacity(page.len() + 4);
                        push_header_flags(
                            &mut out,
                            codec,
                            DataType::Int64,
                            rows,
                            PAGE_FLAG_WIRE_STREAM,
                        );
                        push_u32(&mut out, stream_col);
                        out.extend_from_slice(&page[PAGE_HEADER_BYTES..]);
                        debug_assert_eq!(out.len() as u64, bytes, "fresh frame size drift");
                        out
                    }
                    IntPlan::Reuse { frame, bytes } => {
                        let rows = page_rows(v.len())?;
                        let mut out = Vec::new();
                        let flags = PAGE_FLAG_WIRE_STREAM | PAGE_FLAG_DICT_REF;
                        match frame {
                            IntFrame::For { min, width } => {
                                push_header_flags(
                                    &mut out,
                                    PageCodec::For,
                                    DataType::Int64,
                                    rows,
                                    flags,
                                );
                                push_u32(&mut out, stream_col);
                                pack_bits(
                                    &mut out,
                                    v.iter().map(|&x| x.wrapping_sub(min) as u64),
                                    width,
                                );
                            }
                            IntFrame::Delta { min_d, width } => {
                                push_header_flags(
                                    &mut out,
                                    PageCodec::Delta,
                                    DataType::Int64,
                                    rows,
                                    flags,
                                );
                                push_u32(&mut out, stream_col);
                                out.extend_from_slice(&v[0].to_le_bytes());
                                pack_bits(
                                    &mut out,
                                    v.windows(2).map(|w| {
                                        w[1].wrapping_sub(w[0]).wrapping_sub(min_d) as u64
                                    }),
                                    width,
                                );
                            }
                        }
                        debug_assert_eq!(out.len() as u64, bytes, "frame reuse size drift");
                        out
                    }
                };
                Ok(out)
            }
            other => Ok(encode_best(other)?.1),
        }
    }

    /// Serializes a whole batch for the wire: one blob per column, stream
    /// positions in schema order. Selected batches are compacted first (the
    /// exchange is a materialization point). [`WireDecoder::decode_batch`]
    /// inverts it.
    pub fn encode_batch(&mut self, batch: &RecordBatch) -> Result<Vec<Vec<u8>>> {
        let dense;
        let b = if batch.selection().is_some() {
            dense = batch.compacted();
            &dense
        } else {
            batch
        };
        b.columns()
            .iter()
            .enumerate()
            .map(|(i, c)| self.encode_column(c, i as u32))
            .collect()
    }
}

/// The receiver side of the wire format: holds one stream's dictionary and
/// int-frame caches and turns [`WireEncoder`] blobs back into columns and
/// batches.
///
/// The first transfer of each shared dictionary fills the cache under the
/// `u32` stream dictionary id the page carries; every later ids-only
/// transfer ([`PAGE_FLAG_DICT_REF`]) resolves against it, so all decoded
/// batches of one stream share a single receiver-side `Arc<Dictionary>` —
/// the same one-allocation-per-stream shape the sender had. FoR/Delta wire
/// pages fill (or, on mid-stream re-derivation, *replace*) the frame cache
/// under their stream position the same way, and offsets-only transfers
/// resolve against it. Pair one decoder with one encoder for the lifetime
/// of a transfer stream, exactly like the engine pairs them per pipeline
/// execution. Malformed blobs (cache misses, re-shipped ids, out-of-range
/// ids, truncations) are an `Err`, never a panic.
#[derive(Debug, Default)]
pub struct WireDecoder {
    dicts: HashMap<u32, Arc<Dictionary>>,
    frames: HashMap<u32, IntFrame>,
}

impl WireDecoder {
    /// A fresh stream: empty dictionary cache.
    pub fn new() -> WireDecoder {
        WireDecoder::default()
    }

    /// Number of dictionaries received so far.
    pub fn cached_dictionaries(&self) -> usize {
        self.dicts.len()
    }

    /// Number of int frames currently cached.
    pub fn cached_frames(&self) -> usize {
        self.frames.len()
    }

    /// Decodes a wire FoR/Delta page: frame-bearing transfers decode like
    /// their self-contained form and fill (or replace) the frame cache
    /// under the page's stream id; offsets-only transfers
    /// ([`PAGE_FLAG_DICT_REF`]) resolve against the cached frame.
    fn decode_frame_page(&mut self, c: &mut Cursor, h: &PageHeader) -> Result<ColumnData> {
        let frame_id = c.u32()?;
        if h.flags & PAGE_FLAG_DICT_REF == 0 {
            // Peek the frame parameters, then let the canonical payload
            // decoder (with all its validation) consume them.
            let mut peek = Cursor {
                bytes: c.bytes,
                at: c.at,
            };
            let frame = match (h.codec, h.rows) {
                (_, 0) => None,
                (PageCodec::For, _) => Some(IntFrame::For {
                    min: peek.u64()? as i64,
                    width: peek.u8()? as u32,
                }),
                _ => {
                    peek.u64()?; // per-chunk first value, not frame state
                    Some(IntFrame::Delta {
                        min_d: peek.u64()? as i64,
                        width: peek.u8()? as u32,
                    })
                }
            };
            let col = decode_payload(c, h.codec, h.dt, h.rows)?;
            c.done()?;
            if let Some(frame) = frame {
                self.frames.insert(frame_id, frame);
            }
            return Ok(col);
        }
        let frame = *self.frames.get(&frame_id).ok_or_else(|| {
            err(format!(
                "wire page references stream frame {frame_id} never shipped (frame cache miss)"
            ))
        })?;
        let rows = h.rows;
        let col = match (h.codec, frame) {
            (PageCodec::For, IntFrame::For { min, width }) => {
                let packed = c.take(packed_bytes_checked(rows, width)? as usize)?;
                let mut v = Vec::with_capacity(rows);
                unpack_bits(packed, rows, width, |off| {
                    v.push(min.wrapping_add(off as i64));
                });
                ColumnData::Int64(v)
            }
            (PageCodec::Delta, IntFrame::Delta { min_d, width }) => {
                if rows == 0 {
                    return Err(err(format!(
                        "delta frame reuse page for stream frame {frame_id} declares 0 rows"
                    )));
                }
                let first = c.u64()? as i64;
                let packed = c.take(packed_bytes_checked(rows - 1, width)? as usize)?;
                let mut v = Vec::with_capacity(rows);
                v.push(first);
                let mut cur = first;
                unpack_bits(packed, rows - 1, width, |off| {
                    cur = cur.wrapping_add(min_d.wrapping_add(off as i64));
                    v.push(cur);
                });
                ColumnData::Int64(v)
            }
            _ => {
                return Err(err(format!(
                    "wire {} page reuses stream frame {frame_id} of the other kind",
                    h.codec.name()
                )))
            }
        };
        c.done()?;
        Ok(col)
    }

    /// Decodes one wire blob, updating the dictionary cache. Self-contained
    /// pages (non-dict columns) decode exactly like [`decode_column`]; wire
    /// dict pages resolve through the cache and decode to dict columns
    /// sharing the cached `Arc`.
    pub fn decode_column(&mut self, bytes: &[u8]) -> Result<ColumnData> {
        let mut c = Cursor { bytes, at: 0 };
        let h = parse_header(&mut c)?;
        if h.flags & PAGE_FLAG_WIRE_STREAM == 0 {
            if h.flags != 0 {
                return Err(err(format!("unknown page flags {:#04x}", h.flags)));
            }
            let col = decode_payload(&mut c, h.codec, h.dt, h.rows)?;
            c.done()?;
            return Ok(col);
        }
        if h.flags & !(PAGE_FLAG_WIRE_STREAM | PAGE_FLAG_DICT_REF) != 0 {
            return Err(err(format!("unknown page flags {:#04x}", h.flags)));
        }
        if matches!(h.codec, PageCodec::For | PageCodec::Delta) && h.dt == DataType::Int64 {
            return self.decode_frame_page(&mut c, &h);
        }
        if h.codec != PageCodec::Dict || h.dt != DataType::Utf8 {
            return Err(err(format!(
                "wire-stream flag on a {} {} page",
                h.codec.name(),
                h.dt
            )));
        }
        let dict_id = c.u32()?;
        let dict = if h.flags & PAGE_FLAG_DICT_REF != 0 {
            self.dicts.get(&dict_id).cloned().ok_or_else(|| {
                err(format!(
                    "wire page references stream dictionary {dict_id} never shipped \
                         (dictionary cache miss)"
                ))
            })?
        } else {
            let dict = Arc::new(read_dictionary_section(&mut c)?);
            if self.dicts.insert(dict_id, dict.clone()).is_some() {
                return Err(err(format!("stream dictionary {dict_id} shipped twice")));
            }
            dict
        };
        // Ids ride at the full shared dictionary's bit width.
        let ids = read_packed_ids(&mut c, h.rows, dict.len())?;
        c.done()?;
        Ok(ColumnData::Dict { ids, dict })
    }

    /// Decodes a batch serialized by [`WireEncoder::encode_batch`]: one blob
    /// per schema column. The result is dense (exchanges ship compacted
    /// rows) and logically equal to the batch the sender serialized.
    pub fn decode_batch(
        &mut self,
        schema: crate::schema::SchemaRef,
        columns: &[Vec<u8>],
    ) -> Result<RecordBatch> {
        if columns.len() != schema.arity() {
            return Err(err(format!(
                "wire batch has {} columns, schema expects {}",
                columns.len(),
                schema.arity()
            )));
        }
        let decoded = columns
            .iter()
            .map(|bytes| self.decode_column(bytes))
            .collect::<Result<Vec<_>>>()?;
        RecordBatch::new(schema, decoded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict_col(vals: &[&str]) -> ColumnData {
        ColumnData::Utf8(vals.iter().map(|s| (*s).to_owned()).collect()).dict_encoded()
    }

    #[test]
    fn fused_int_pick_matches_generic_argmin() {
        // The generic per-candidate loop the fused pass replaces, with the
        // same capped Dict candidacy the picker contract defines.
        let generic = |col: &ColumnData| {
            let mut best = PageCodec::Plain;
            let mut best_size = u64::MAX;
            for c in PageCodec::candidates(col.data_type()) {
                if c == PageCodec::Dict
                    && matches!(col, ColumnData::Int64(_))
                    && referenced_entries(col).0 > DICT_INT_MAX_ENTRIES
                {
                    continue;
                }
                let size = encoded_size(col, c).unwrap();
                if size < best_size {
                    best = c;
                    best_size = size;
                }
            }
            best
        };
        let cols: Vec<Vec<i64>> = vec![
            vec![],
            vec![42],
            vec![7; 500],                                      // runs: RLE
            (0..500).map(|i| 1_000 + i * 3).collect(),         // stride: Delta
            (0..500).map(|i| (i * 37) % 100).collect(),        // small domain: FoR
            (0..500).map(|i| i * i * 7_919 - 3 * i).collect(), // wide: Plain-ish
            vec![i64::MIN, i64::MAX, 0, -1, 1],
            (0..300)
                .map(|i| if i % 2 == 0 { 5 } else { 900_000_000_000 })
                .collect(),
            // Exactly at the cap: Dict is still a candidate.
            (0..DICT_INT_MAX_ENTRIES as i64).collect(),
            // One over the cap: Dict is disqualified on both paths.
            (0..=DICT_INT_MAX_ENTRIES as i64).collect(),
        ];
        for vals in cols {
            let col = ColumnData::Int64(vals);
            assert_eq!(
                pick_codec(&col),
                generic(&col),
                "fused int pick diverged on {col:?}"
            );
        }
    }

    #[test]
    fn int_dict_candidacy_is_capped() {
        // Pseudo-random draws from a pool just over the cap: the exact dict
        // page (~5 kB dictionary + packed ids) would beat Plain/RLE/FoR/Delta
        // here, but the capped picker must refuse it — the cap is what keeps
        // the fused stats pass from hashing every row of high-NDV columns.
        let n = 20_000usize;
        let pool = DICT_INT_MAX_ENTRIES + 1;
        // A stride coprime with the pool walks every residue, so the NDV is
        // exactly `pool` while the sequence stays run-free and wide-delta.
        let vals: Vec<i64> = (0..n)
            .map(|i| ((i * 1_000_003 % pool) as i64).wrapping_mul(0x0123_4567_89ab))
            .collect();
        let col = ColumnData::Int64(vals);
        let (ndv, _) = referenced_entries(&col);
        assert!(ndv > DICT_INT_MAX_ENTRIES, "fixture must exceed the cap");
        let dict_size = encoded_size(&col, PageCodec::Dict).unwrap();
        let picked = pick_codec(&col);
        let picked_size = encoded_size(&col, picked).unwrap();
        assert!(
            dict_size < picked_size,
            "fixture should make uncapped dict the argmin \
             (dict {dict_size} vs {picked:?} {picked_size})"
        );
        assert_ne!(picked, PageCodec::Dict, "cap must disqualify dict");
        // At or under the cap the same shape still picks Dict.
        let small: Vec<i64> = (0..n)
            .map(|i| ((i * 7) % 512) as i64 * 0x0123_4567_89ab)
            .collect();
        assert_eq!(pick_codec(&ColumnData::Int64(small)), PageCodec::Dict);
    }

    #[test]
    fn plain_round_trips_every_type() {
        let cols = [
            ColumnData::Int64(vec![-5, 0, 7, i64::MAX]),
            ColumnData::Float64(vec![0.5, -1.25, f64::MAX]),
            ColumnData::Bool(vec![true, false, true]),
            ColumnData::Utf8(vec!["a".into(), "".into(), "日本".into()]),
        ];
        for col in &cols {
            let (meta, bytes) = encode_column(col, PageCodec::Plain).unwrap();
            assert_eq!(meta.encoded_bytes as usize, bytes.len());
            assert_eq!(meta.rows, col.len());
            assert_eq!(&decode_column(&bytes).unwrap(), col);
        }
    }

    #[test]
    fn dict_page_round_trips_and_shrinks() {
        let col = dict_col(&[
            "aaaa", "bbbb", "aaaa", "bbbb", "aaaa", "aaaa", "bbbb", "aaaa",
        ]);
        let (meta, bytes) = encode_column(&col, PageCodec::Dict).unwrap();
        assert_eq!(meta.encoded_bytes as usize, bytes.len());
        assert!(meta.encoded_bytes < meta.decoded_bytes, "{meta:?}");
        assert!(meta.dict_bytes > 0);
        let decoded = decode_column(&bytes).unwrap();
        assert_eq!(decoded, col);
        assert!(decoded.as_dict().is_some(), "dict pages decode to dict");
    }

    #[test]
    fn dict_page_ships_only_referenced_entries() {
        // Table dictionary has 3 entries; this chunk references one.
        let table_col = dict_col(&["x", "y", "z"]);
        let chunk = table_col.slice(2, 1);
        let (_, bytes) = encode_column(&chunk, PageCodec::Dict).unwrap();
        let decoded = decode_column(&bytes).unwrap();
        let (ids, dict) = decoded.as_dict().unwrap();
        assert_eq!(ids, &[0], "remapped to dense local ids");
        assert_eq!(dict.len(), 1, "unreferenced entries not shipped");
        assert_eq!(decoded.str_at(0), Some("z"));
    }

    #[test]
    fn rle_round_trips_and_wins_on_runs() {
        // Long runs over a wide value range: RLE's per-run cost beats the
        // per-row bits FoR/Delta would spend on the large domain.
        let mut vals = vec![1_000_000i64; 1000];
        vals.extend(std::iter::repeat_n(-4i64, 1000));
        let col = ColumnData::Int64(vals);
        assert_eq!(pick_codec(&col), PageCodec::Rle);
        let (meta, bytes) = encode_best(&col).unwrap();
        assert!(meta.encoded_bytes < meta.decoded_bytes / 10);
        assert_eq!(&decode_column(&bytes).unwrap(), &col);

        // A constant column is the int codecs' home turf now: FoR needs
        // width 0 (9 payload bytes), beating even a single RLE run.
        let constant = ColumnData::Int64(vec![7; 1000]);
        assert_eq!(pick_codec(&constant), PageCodec::For);
        let (cmeta, cbytes) = encode_best(&constant).unwrap();
        assert_eq!(cmeta.encoded_bytes as usize, PAGE_HEADER_BYTES + 8 + 1);
        assert_eq!(&decode_column(&cbytes).unwrap(), &constant);

        let strs = ColumnData::Utf8(vec!["run".into(); 64]);
        let (_, bytes) = encode_column(&strs, PageCodec::Rle).unwrap();
        assert_eq!(&decode_column(&bytes).unwrap(), &strs);
    }

    #[test]
    fn plain_wins_on_incompressible_ints() {
        // Full-range hashed values: no frame, no delta structure, no runs
        // (a plain multiplicative sequence would hand Delta a constant
        // stride, so finalize with a splitmix-style mixer).
        let col = ColumnData::Int64(
            (0u64..100)
                .map(|i| {
                    let z = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    (z ^ (z >> 31)) as i64
                })
                .collect(),
        );
        assert_eq!(pick_codec(&col), PageCodec::Plain);
    }

    #[test]
    fn empty_columns_round_trip() {
        for dt in [
            DataType::Int64,
            DataType::Float64,
            DataType::Utf8,
            DataType::Bool,
        ] {
            let col = ColumnData::empty(dt);
            let (meta, bytes) = encode_best(&col).unwrap();
            assert_eq!(meta.rows, 0);
            assert_eq!(&decode_column(&bytes).unwrap(), &col);
        }
    }

    #[test]
    fn size_only_matches_real_encoding() {
        let cols = [
            ColumnData::Int64(vec![1, 1, 1, 2, 3, 3]),
            ColumnData::Float64(vec![0.0, 0.0, 9.5]),
            ColumnData::Bool(vec![true; 9]),
            ColumnData::Utf8(vec!["aa".into(), "aa".into(), "b".into()]),
            dict_col(&["g1", "g2", "g1", "g1"]),
        ];
        for col in &cols {
            for codec in PageCodec::candidates(col.data_type()) {
                let (meta, bytes) = encode_column(col, codec).unwrap();
                assert_eq!(
                    encoded_size(col, codec).unwrap(),
                    bytes.len() as u64,
                    "{codec:?} on {}",
                    col.data_type()
                );
                assert_eq!(meta.encoded_bytes, bytes.len() as u64);
            }
        }
    }

    #[test]
    fn candidates_are_capability_driven_and_all_round_trip() {
        // Every codec that claims a type must actually encode + decode a
        // column of that type — a codec can neither be silently skipped nor
        // spuriously offered.
        let fixtures = [
            ColumnData::Int64(vec![5, 6, 7, 9, 12]),
            ColumnData::Float64(vec![1.5, -2.0, 0.0]),
            ColumnData::Utf8(vec!["a".into(), "b".into(), "a".into()]),
            ColumnData::Bool(vec![true, false, true]),
        ];
        for col in &fixtures {
            let dt = col.data_type();
            for codec in ALL_CODECS {
                let listed = PageCodec::candidates(dt).any(|c| c == codec);
                assert_eq!(
                    listed,
                    codec.applies_to(dt),
                    "{codec:?} candidacy for {dt} out of sync with capability"
                );
                if listed {
                    let (_, bytes) =
                        encode_column(col, codec).unwrap_or_else(|e| panic!("{codec:?}/{dt}: {e}"));
                    assert_eq!(&decode_column(&bytes).unwrap(), col, "{codec:?} on {dt}");
                } else {
                    assert!(
                        encode_column(col, codec).is_err() || dt == DataType::Utf8,
                        "{codec:?} should reject {dt}"
                    );
                }
            }
        }
        // Int codecs are offered for ints — the regression the capability
        // refactor guards against.
        assert!(PageCodec::candidates(DataType::Int64).any(|c| c == PageCodec::For));
        assert!(PageCodec::candidates(DataType::Int64).any(|c| c == PageCodec::Delta));
        assert!(PageCodec::candidates(DataType::Bool).any(|c| c == PageCodec::For));
        assert!(!PageCodec::candidates(DataType::Utf8).any(|c| c == PageCodec::Delta));
    }

    #[test]
    fn for_round_trips_and_wins_on_small_domains() {
        // Dates: a small domain far from zero. Plain needs 8 B/row; FoR
        // needs ⌈log2 range⌉ bits.
        let col = ColumnData::Int64((0..1000).map(|i| 20_240_000 + (i % 365)).collect());
        assert_eq!(pick_codec(&col), PageCodec::For);
        let (meta, bytes) = encode_best(&col).unwrap();
        assert!(meta.encoded_bytes * 4 < meta.decoded_bytes, "{meta:?}");
        assert_eq!(&decode_column(&bytes).unwrap(), &col);
        // Extremes round-trip exactly (offsets span the full u64 range).
        let extremes = ColumnData::Int64(vec![i64::MIN, i64::MAX, 0, -1]);
        let (_, bytes) = encode_column(&extremes, PageCodec::For).unwrap();
        assert_eq!(&decode_column(&bytes).unwrap(), &extremes);
        // Bool columns bit-pack under FoR (1 bit/row past the frame).
        let bools = ColumnData::Bool((0..256).map(|i| i % 3 == 0).collect());
        assert_eq!(pick_codec(&bools), PageCodec::For);
        let (bmeta, bytes) = encode_best(&bools).unwrap();
        assert!(bmeta.encoded_bytes < bmeta.decoded_bytes / 4);
        assert_eq!(&decode_column(&bytes).unwrap(), &bools);
    }

    #[test]
    fn delta_round_trips_and_wins_on_sorted_ints() {
        // A sorted id column: consecutive deltas are tiny, so Delta beats
        // both Plain (8 B/row) and FoR (⌈log2 n⌉ bits/row).
        let col = ColumnData::Int64((0..4096).map(|i| i * 3 + 1_000_000).collect());
        assert_eq!(pick_codec(&col), PageCodec::Delta);
        let (meta, bytes) = encode_best(&col).unwrap();
        assert!(
            meta.encoded_bytes * 100 < meta.decoded_bytes,
            "constant-stride sorted ints collapse to width 0: {meta:?}"
        );
        assert_eq!(&decode_column(&bytes).unwrap(), &col);
        // Descending and mixed-sign deltas round-trip too.
        let wiggle = ColumnData::Int64(vec![10, 7, 9, -3, 4, 4, 100]);
        let (_, bytes) = encode_column(&wiggle, PageCodec::Delta).unwrap();
        assert_eq!(&decode_column(&bytes).unwrap(), &wiggle);
        // Wrapping extremes are exact.
        let extremes = ColumnData::Int64(vec![i64::MIN, i64::MAX, i64::MIN + 1]);
        let (_, bytes) = encode_column(&extremes, PageCodec::Delta).unwrap();
        assert_eq!(&decode_column(&bytes).unwrap(), &extremes);
        // Single-row and empty columns round-trip through both int codecs.
        for col in [ColumnData::Int64(vec![42]), ColumnData::Int64(vec![])] {
            for codec in [PageCodec::For, PageCodec::Delta] {
                let (m, bytes) = encode_column(&col, codec).unwrap();
                assert_eq!(m.encoded_bytes as usize, bytes.len());
                assert_eq!(&decode_column(&bytes).unwrap(), &col);
            }
        }
    }

    #[test]
    fn corrupt_int_pages_error_not_panic() {
        let col = ColumnData::Int64((0..100).map(|i| i * 5).collect());
        for codec in [PageCodec::For, PageCodec::Delta] {
            let (_, good) = encode_column(&col, codec).unwrap();
            for n in 0..good.len() {
                assert!(decode_column(&good[..n]).is_err(), "{codec:?} cut at {n}");
            }
            // Bit width over 64.
            let mut bad = good.clone();
            let width_at = PAGE_HEADER_BYTES + if codec == PageCodec::For { 8 } else { 16 };
            bad[width_at] = 65;
            assert!(decode_column(&bad).is_err(), "{codec:?} width 65");
            // Forged row count: payload no longer covers it, and the error
            // must fire before any row-proportional allocation.
            let mut inflated = good.clone();
            inflated[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
            assert!(decode_column(&inflated).is_err(), "{codec:?} forged rows");
        }
    }

    #[test]
    fn encoder_and_decoder_share_one_row_bound() {
        // The round-trip contract is total: anything the encoder accepts,
        // the decoder accepts back — so the encoder must reject columns
        // past MAX_DECODE_ROWS instead of emitting undecodable pages.
        let oversized = ColumnData::Bool(vec![false; MAX_DECODE_ROWS + 1]);
        let e = encode_column(&oversized, PageCodec::Plain)
            .unwrap_err()
            .to_string();
        assert!(e.contains("page bound"), "{e}");
        let mut w = WireEncoder::new();
        let dict_oversized = ColumnData::Dict {
            ids: vec![0; MAX_DECODE_ROWS + 1],
            dict: Arc::new(Dictionary::encode(["x"].into_iter()).0),
        };
        assert!(w.encode_column(&dict_oversized, 0).is_err());
    }

    #[test]
    fn forged_plain_row_counts_fail_before_allocating() {
        let (_, mut page) =
            encode_column(&ColumnData::Int64(vec![1, 2, 3]), PageCodec::Plain).unwrap();
        // Declares 4 billion rows over a 24-byte payload: rejected by the
        // decoder row bound, not by attempting a 32 GB allocation.
        page[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let e = decode_column(&page).unwrap_err().to_string();
        assert!(e.contains("decoder bound"), "{e}");
        // Within the row bound, the payload-size check fires instead —
        // still before any row-proportional allocation.
        page[8..12].copy_from_slice(&1_000_000u32.to_le_bytes());
        let e = decode_column(&page).unwrap_err().to_string();
        assert!(e.contains("truncated"), "{e}");
    }

    #[test]
    fn malformed_pages_error_not_panic() {
        let (_, good) = encode_best(&dict_col(&["a", "b", "a"])).unwrap();
        // Truncations at every length.
        for n in 0..good.len() {
            assert!(decode_column(&good[..n]).is_err(), "truncated at {n}");
        }
        // Corrupt header fields.
        for (at, val) in [(0usize, 0xffu8), (4, 9), (5, 9), (6, 9), (7, 1)] {
            let mut bad = good.clone();
            bad[at] = val;
            assert!(decode_column(&bad).is_err(), "corrupt byte {at}");
        }
        // Trailing garbage.
        let mut padded = good.clone();
        padded.push(0);
        assert!(decode_column(&padded).is_err());
        // Declared rows beyond payload.
        let mut inflated = good.clone();
        inflated[8..12].copy_from_slice(&1000u32.to_le_bytes());
        assert!(decode_column(&inflated).is_err());
    }

    #[test]
    fn bit_widths() {
        assert_eq!(id_bit_width(0), 0);
        assert_eq!(id_bit_width(1), 0);
        assert_eq!(id_bit_width(2), 1);
        assert_eq!(id_bit_width(3), 2);
        assert_eq!(id_bit_width(256), 8);
        assert_eq!(id_bit_width(257), 9);
        assert_eq!(packed_id_bytes(8, 1), 1);
        assert_eq!(packed_id_bytes(9, 1), 2);
        assert_eq!(packed_id_bytes(3, 10), 4);
    }

    #[test]
    fn wire_ships_dictionary_once() {
        let col = dict_col(&["aaaaaaaa", "bbbbbbbb", "aaaaaaaa", "bbbbbbbb"]);
        let (_, dict) = col.as_dict().unwrap();
        let dict_bytes = dictionary_page_bytes(dict);
        let mut w = WireEncoder::new();
        let first = w.column_wire_bytes(&col, 0).unwrap();
        let second = w.column_wire_bytes(&col, 0).unwrap();
        assert_eq!(first, second + dict_bytes);
        assert!(w.has_shipped(&dict.clone()));
        // Real serialization agrees with the size-only accounting.
        let mut w2 = WireEncoder::new();
        let b1 = w2.encode_column(&col, 0).unwrap();
        let b2 = w2.encode_column(&col, 0).unwrap();
        assert_eq!(b1.len() as u64, first);
        assert_eq!(b2.len() as u64, second);
        // Wire pages demand the stream's dictionary cache: the cache-less
        // storage decoder rejects them, the stream decoder inverts both.
        let e = decode_column(&b1).unwrap_err().to_string();
        assert!(e.contains("dictionary cache"), "{e}");
        let mut rx = WireDecoder::new();
        assert_eq!(rx.decode_column(&b1).unwrap(), col);
        assert_eq!(rx.decode_column(&b2).unwrap(), col);
        assert_eq!(rx.cached_dictionaries(), 1);
        // The ids-only payload beats the decoded width by a wide margin.
        assert!(second * 2 < col.byte_size() as u64);
    }

    #[test]
    fn wire_decoder_round_trips_a_stream_sharing_one_dictionary() {
        // Three chunks of one table column: the receiver interns the
        // dictionary once and every decoded chunk shares that Arc.
        let table = dict_col(&["x", "yy", "zzz", "x", "yy", "zzz", "x", "yy"]);
        let mut tx = WireEncoder::new();
        let mut rx = WireDecoder::new();
        let mut decoded_dicts = Vec::new();
        for start in [0usize, 3, 6] {
            let chunk = table.slice(start, (table.len() - start).min(3));
            let blob = tx.encode_column(&chunk, 0).unwrap();
            let decoded = rx.decode_column(&blob).unwrap();
            assert_eq!(decoded, chunk, "chunk at {start}");
            decoded_dicts.push(decoded.as_dict().unwrap().1.clone());
        }
        assert!(Arc::ptr_eq(&decoded_dicts[0], &decoded_dicts[1]));
        assert!(Arc::ptr_eq(&decoded_dicts[0], &decoded_dicts[2]));
        assert_eq!(rx.cached_dictionaries(), 1);
        // Ids decode against the *full* shared dictionary, so they are
        // bit-identical to the sender's, not remapped.
        let chunk = table.slice(6, 2);
        let blob = tx.encode_column(&chunk, 0).unwrap();
        let decoded = rx.decode_column(&blob).unwrap();
        assert_eq!(decoded.as_dict().unwrap().0, chunk.as_dict().unwrap().0);
    }

    #[test]
    fn wire_decoder_rejects_cache_misses_and_reships() {
        let col = dict_col(&["a", "b", "a"]);
        let mut tx = WireEncoder::new();
        let b1 = tx.encode_column(&col, 0).unwrap();
        let b2 = tx.encode_column(&col, 0).unwrap();
        // A ref page with no prior dictionary transfer is a cache miss.
        let mut cold = WireDecoder::new();
        let e = cold.decode_column(&b2).unwrap_err().to_string();
        assert!(e.contains("cache miss"), "{e}");
        // Shipping the same stream dictionary id twice is corrupt.
        let mut rx = WireDecoder::new();
        rx.decode_column(&b1).unwrap();
        let e = rx.decode_column(&b1).unwrap_err().to_string();
        assert!(e.contains("shipped twice"), "{e}");
        // Truncations of wire blobs error, never panic.
        for blob in [&b1, &b2] {
            for n in 0..blob.len() {
                assert!(WireDecoder::new().decode_column(&blob[..n]).is_err());
            }
        }
    }

    #[test]
    fn wire_reuses_int_frames_across_chunks() {
        // A sorted id column split into chunks: every chunk picks Delta, and
        // chunks after the first ride the cached frame, saving exactly the
        // frame header (min-delta i64 + width u8) per chunk.
        let table: Vec<i64> = (0..4096).map(|i| 10_000 + i * 3).collect();
        let mut tx = WireEncoder::new();
        let mut rx = WireDecoder::new();
        let mut sizes = Vec::new();
        for chunk in table.chunks(1024) {
            let c = ColumnData::Int64(chunk.to_vec());
            let blob = tx.encode_column(&c, 0).unwrap();
            sizes.push(blob.len() as u64);
            assert_eq!(rx.decode_column(&blob).unwrap(), c);
        }
        assert_eq!(tx.cached_frames(), 1);
        assert_eq!(rx.cached_frames(), 1);
        // Later chunks are strictly smaller than the frame-bearing first
        // and exactly 9 bytes (i64 + u8 frame header) under the
        // self-contained Delta page each would otherwise ship.
        let standalone =
            encoded_size(&ColumnData::Int64(table[..1024].to_vec()), PageCodec::Delta).unwrap();
        assert_eq!(
            sizes[0],
            standalone + 4,
            "first chunk carries the frame + stream id"
        );
        for &later in &sizes[1..] {
            assert!(later < sizes[0], "reuse chunks must shrink: {sizes:?}");
            assert_eq!(
                later,
                standalone + 4 - 9,
                "reuse chunk = fresh minus frame header"
            );
        }
        // Size-only accounting agrees blob for blob.
        let mut size_only = WireEncoder::new();
        for (chunk, &real) in table.chunks(1024).zip(&sizes) {
            let c = ColumnData::Int64(chunk.to_vec());
            assert_eq!(size_only.column_wire_bytes(&c, 0).unwrap(), real);
        }
        // A reuse blob against a cold receiver is a frame cache miss.
        let c = ColumnData::Int64(table[1024..2048].to_vec());
        let blob = tx.encode_column(&c, 0).unwrap();
        let e = WireDecoder::new()
            .decode_column(&blob)
            .unwrap_err()
            .to_string();
        assert!(e.contains("frame cache miss"), "{e}");
    }

    #[test]
    fn wire_rederives_int_frames_mid_stream() {
        let mut tx = WireEncoder::new();
        let mut rx = WireDecoder::new();
        // Chunk 1 establishes a narrow FoR frame around ~100.
        let narrow = ColumnData::Int64((0..512).map(|i| 100 + (i * 37) % 50).collect());
        let b = tx.encode_column(&narrow, 7).unwrap();
        assert_eq!(rx.decode_column(&b).unwrap(), narrow);
        assert_eq!(tx.cached_frames(), 1);
        // Chunk 2 jumps out of the frame: offsets from min=100 no longer fit
        // the cached width, so the sender re-derives and the receiver
        // replaces its cache entry — still one frame, new parameters.
        let shifted = ColumnData::Int64((0..512).map(|i| 1_000_000 + (i * 37) % 50).collect());
        let b = tx.encode_column(&shifted, 7).unwrap();
        assert_eq!(rx.decode_column(&b).unwrap(), shifted);
        assert_eq!(rx.cached_frames(), 1);
        // Chunk 3 fits the *new* frame and rides it (strictly smaller than
        // its frame-bearing predecessor of identical shape).
        let again = ColumnData::Int64((0..512).map(|i| 1_000_000 + (i * 11) % 50).collect());
        let b3 = tx.encode_column(&again, 7).unwrap();
        assert_eq!(rx.decode_column(&b3).unwrap(), again);
        assert!((b3.len() as u64) < b.len() as u64);
        // Mixed stream: a non-int column at another position never touches
        // the frame cache, and plain int chunks (no For/Delta win) ship
        // flagless and decode everywhere.
        let wide = ColumnData::Int64(vec![i64::MIN, i64::MAX, 0, -7, 917_114]);
        let blob = tx.encode_column(&wide, 7).unwrap();
        assert_eq!(
            decode_column(&blob).unwrap(),
            wide,
            "plain pages stay self-contained"
        );
    }

    #[test]
    fn wire_batch_round_trip_is_dense_and_equal() {
        use crate::schema::{Field, Schema};
        let schema = Arc::new(Schema::of(vec![
            Field::new("s", DataType::Utf8),
            Field::new("i", DataType::Int64),
        ]));
        let batch = RecordBatch::new(
            schema.clone(),
            vec![
                dict_col(&["a", "b", "a", "c"]),
                ColumnData::Int64(vec![10, 20, 30, 40]),
            ],
        )
        .unwrap();
        let filtered = batch.filter(&[true, false, true, true]).unwrap();
        let mut tx = WireEncoder::new();
        let mut rx = WireDecoder::new();
        let blobs = tx.encode_batch(&filtered).unwrap();
        let decoded = rx.decode_batch(schema.clone(), &blobs).unwrap();
        assert!(decoded.selection().is_none(), "wire batches arrive dense");
        assert_eq!(decoded, filtered.compacted());
        // Column-count mismatches are rejected.
        assert!(rx.decode_batch(schema, &blobs[..1]).is_err());
    }

    #[test]
    fn wire_batch_reads_through_selections() {
        use crate::schema::{Field, Schema};
        let schema = Arc::new(Schema::of(vec![
            Field::new("s", DataType::Utf8),
            Field::new("i", DataType::Int64),
        ]));
        let batch = RecordBatch::new(
            schema,
            vec![
                dict_col(&["a", "b", "c", "d"]),
                ColumnData::Int64(vec![1, 2, 3, 4]),
            ],
        )
        .unwrap();
        let filtered = batch.filter(&[true, false, true, false]).unwrap();
        let mut a = WireEncoder::new();
        let mut b = WireEncoder::new();
        assert_eq!(
            a.batch_wire_bytes(&filtered).unwrap(),
            b.batch_wire_bytes(&filtered.compacted()).unwrap()
        );
    }
}
