//! Property tests: dictionary encoding is semantically invisible.
//!
//! Every column operation on a dict-encoded string column must produce
//! results identical to the naive `Vec<String>` path — the encoding may only
//! change *cost*, never values, order, sizes, or statistics.

use std::sync::Arc;

use ci_storage::batch::RecordBatch;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema};
use ci_storage::table::TableBuilder;
use ci_storage::value::DataType;
use ci_types::TableId;
use proptest::prelude::*;

fn utf8(vals: &[String]) -> ColumnData {
    ColumnData::Utf8(vals.to_vec())
}

proptest! {
    /// filter / take / slice / value / min_max / byte_size agree between the
    /// dict-encoded and naive paths.
    #[test]
    fn column_ops_match_naive_path(
        vals in string_column(5, 1..120),
        seed in 0u64..1000,
    ) {
        let naive = utf8(&vals);
        let dict = naive.dict_encoded();
        prop_assert!(dict.as_dict().is_some());
        prop_assert_eq!(&dict, &naive);
        prop_assert_eq!(dict.byte_size(), naive.byte_size());
        prop_assert_eq!(dict.min_max(), naive.min_max());

        let n = vals.len();
        // Deterministic pseudo-random mask and gather list from the seed.
        let keep: Vec<bool> = (0..n).map(|i| (i as u64 * 31 + seed) % 3 != 0).collect();
        prop_assert_eq!(dict.filter(&keep), naive.filter(&keep));

        let indices: Vec<usize> = (0..n).map(|i| ((i as u64 * 17 + seed) % n as u64) as usize).collect();
        prop_assert_eq!(dict.take(&indices), naive.take(&indices));
        prop_assert_eq!(dict.try_take(&indices).unwrap(), naive.try_take(&indices).unwrap());
        prop_assert!(dict.try_take(&[n]).is_err());

        let off = (seed as usize) % n;
        let len = n - off;
        prop_assert_eq!(dict.slice(off, len), naive.slice(off, len));

        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(dict.value(i), naive.value(i));
            prop_assert_eq!(dict.str_at(i).unwrap(), v.as_str());
        }
    }

    /// Concatenating dict slices reproduces the naive concatenation and
    /// keeps sharing one dictionary.
    #[test]
    fn concat_matches_naive_path(
        vals in string_column(4, 2..100),
        cut in 1usize..99,
    ) {
        let schema = Arc::new(Schema::of(vec![Field::new("s", DataType::Utf8)]));
        let naive = RecordBatch::new(schema.clone(), vec![utf8(&vals)]).unwrap();
        let dict = RecordBatch::new(schema, vec![utf8(&vals).dict_encoded()]).unwrap();
        let cut = cut % (vals.len() - 1) + 1;

        let parts = [dict.slice(0, cut).unwrap(), dict.slice(cut, vals.len() - cut).unwrap()];
        let joined = RecordBatch::concat(&parts).unwrap();
        prop_assert_eq!(&joined, &naive);
        let (_, d) = joined.column(0).as_dict().expect("dict survives concat");
        prop_assert!(Arc::ptr_eq(d, dict.column(0).as_dict().unwrap().1));
    }

    /// Table-level dict encoding preserves rows, bytes, zone maps, and
    /// pruning behaviour for any partitioning.
    #[test]
    fn table_encoding_is_value_identical(
        vals in string_column(6, 1..200),
        rows_per_part in 1usize..40,
    ) {
        let schema = Arc::new(Schema::of(vec![Field::new("s", DataType::Utf8)]));
        let mut b = TableBuilder::new(TableId::new(0), "t", schema.clone(), rows_per_part).unwrap();
        b.append(RecordBatch::new(schema, vec![utf8(&vals)]).unwrap()).unwrap();
        let plain = b.finish().unwrap();
        let encoded = plain.clone().dict_encoded();

        prop_assert_eq!(encoded.row_count(), plain.row_count());
        prop_assert_eq!(encoded.total_bytes(), plain.total_bytes());
        prop_assert_eq!(encoded.total_encoded_bytes(), plain.total_encoded_bytes());
        prop_assert_eq!(encoded.to_batch().unwrap(), plain.to_batch().unwrap());
        for (pe, pp) in encoded.partitions.iter().zip(&plain.partitions) {
            prop_assert_eq!(&pe.zone_map, &pp.zone_map);
            prop_assert_eq!(pe.stored_bytes, pp.stored_bytes);
            prop_assert_eq!(pe.encoded_bytes, pp.encoded_bytes);
            prop_assert_eq!(&pe.pages, &pp.pages);
        }
        let dict = encoded.column_dictionary(0).expect("shared dictionary");
        let distinct: std::collections::BTreeSet<_> = vals.iter().collect();
        prop_assert_eq!(dict.len(), distinct.len());
    }
}
