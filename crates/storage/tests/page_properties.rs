//! Property tests for the encoded page format: every codec round-trips
//! every column variant exactly, compression never loses data, sizing is
//! exact, and malformed pages fail with errors, never panics. A golden
//! fixed-bytes test pins the wire format itself — any byte-level change to
//! the encoder is a format break and must bump `PAGE_VERSION`.

use ci_storage::column::ColumnData;
use ci_storage::pages::{
    decode_column, dictionary_page_bytes, encode_best, encode_column, encoded_size, pick_codec,
    PageCodec, WireEncoder, PAGE_HEADER_BYTES, PAGE_MAGIC, PAGE_VERSION,
};
use proptest::prelude::*;

fn utf8(vals: &[String]) -> ColumnData {
    ColumnData::Utf8(vals.to_vec())
}

/// Round-trips one column through every applicable codec, checking value
/// equality and exact size accounting.
fn check_round_trip(col: &ColumnData) -> Result<(), String> {
    for &codec in PageCodec::candidates(col.data_type()) {
        let (meta, bytes) = encode_column(col, codec).map_err(|e| e.to_string())?;
        if meta.encoded_bytes as usize != bytes.len() {
            return Err(format!(
                "{codec:?}: meta says {} bytes, encoded {}",
                meta.encoded_bytes,
                bytes.len()
            ));
        }
        if encoded_size(col, codec).map_err(|e| e.to_string())? != bytes.len() as u64 {
            return Err(format!(
                "{codec:?}: size-only estimate disagrees with encoder"
            ));
        }
        if meta.rows != col.len() || meta.decoded_bytes != col.byte_size() as u64 {
            return Err(format!("{codec:?}: bad metadata {meta:?}"));
        }
        let decoded = decode_column(&bytes).map_err(|e| e.to_string())?;
        if &decoded != col {
            return Err(format!("{codec:?}: decode(encode(c)) != c"));
        }
    }
    Ok(())
}

proptest! {
    /// Int columns round-trip through Plain and Rle bit-identically.
    #[test]
    fn int_columns_round_trip(vals in proptest::collection::vec(any::<i64>(), 0..200usize)) {
        let col = ColumnData::Int64(vals);
        prop_assert!(check_round_trip(&col).is_ok(), "{:?}", check_round_trip(&col));
    }

    /// Float columns round-trip (IEEE bits preserved exactly).
    #[test]
    fn float_columns_round_trip(vals in proptest::collection::vec(any::<f64>(), 0..200usize)) {
        let col = ColumnData::Float64(vals);
        prop_assert!(check_round_trip(&col).is_ok(), "{:?}", check_round_trip(&col));
    }

    /// Bool columns round-trip.
    #[test]
    fn bool_columns_round_trip(vals in proptest::collection::vec(any::<bool>(), 0..200usize)) {
        let col = ColumnData::Bool(vals);
        prop_assert!(check_round_trip(&col).is_ok(), "{:?}", check_round_trip(&col));
    }

    /// String columns round-trip under both in-memory encodings and all
    /// three codecs; dict pages decode back to dict-encoded columns.
    #[test]
    fn string_columns_round_trip(vals in string_column(6, 1..150)) {
        let naive = utf8(&vals);
        let dicted = naive.dict_encoded();
        prop_assert!(check_round_trip(&naive).is_ok(), "{:?}", check_round_trip(&naive));
        prop_assert!(check_round_trip(&dicted).is_ok(), "{:?}", check_round_trip(&dicted));
        let (_, bytes) = encode_column(&dicted, PageCodec::Dict).unwrap();
        prop_assert!(decode_column(&bytes).unwrap().as_dict().is_some());
        // Page accounting is invisible to the in-memory string encoding.
        for &codec in PageCodec::candidates(ci_storage::value::DataType::Utf8) {
            prop_assert_eq!(
                encoded_size(&naive, codec).unwrap(),
                encoded_size(&dicted, codec).unwrap()
            );
        }
    }

    /// On dict/RLE-friendly data (duplicate-heavy, realistically wide
    /// strings) the picked codec genuinely compresses.
    #[test]
    fn friendly_data_compresses(
        short in string_column(4, 32..200),
        run_len in 2usize..50,
    ) {
        // Widen the pooled values so the decoded column is string-heavy.
        let vals: Vec<String> = short.iter().map(|s| format!("{s}-{s}-{s}-padding")).collect();
        let col = utf8(&vals).dict_encoded();
        let (meta, _) = encode_best(&col).unwrap();
        prop_assert!(
            meta.encoded_bytes <= meta.decoded_bytes,
            "dict-friendly data must not inflate: {meta:?}"
        );
        // Runs compress under RLE.
        let runs = ColumnData::Int64(
            (0..8i64).flat_map(|v| std::iter::repeat_n(v, run_len)).collect()
        );
        let (rmeta, _) = encode_best(&runs).unwrap();
        prop_assert!(rmeta.encoded_bytes < rmeta.decoded_bytes, "{rmeta:?}");
        prop_assert_eq!(pick_codec(&runs), PageCodec::Rle);
    }

    /// Corrupting any single byte of a valid page either fails cleanly or
    /// still decodes a column of the declared row count — never a panic.
    #[test]
    fn corrupted_pages_never_panic(
        vals in string_column(5, 1..60),
        flip_at in 0usize..4096,
        flip_bits in 1u8..255,
    ) {
        let col = utf8(&vals).dict_encoded();
        let (_, mut bytes) = encode_best(&col).unwrap();
        let at = flip_at % bytes.len();
        bytes[at] ^= flip_bits;
        match decode_column(&bytes) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(decoded.len(), col.len()),
        }
        // Every truncation of the valid page errors.
        bytes[at] ^= flip_bits; // restore
        let cut = flip_at % bytes.len();
        prop_assert!(decode_column(&bytes[..cut]).is_err());
    }

    /// The wire encoder's size-only accounting matches its real serializer,
    /// and re-shipping a dictionary is free after the first transfer.
    #[test]
    fn wire_sizes_match_serialization(vals in string_column(5, 1..120)) {
        let col = utf8(&vals).dict_encoded();
        let (_, dict) = col.as_dict().unwrap();
        let dict_bytes = dictionary_page_bytes(dict);
        let mut size_only = WireEncoder::new();
        let mut real = WireEncoder::new();
        for _ in 0..3 {
            let expected = size_only.column_wire_bytes(&col);
            let bytes = real.encode_column(&col).unwrap();
            prop_assert_eq!(bytes.len() as u64, expected);
        }
        // Second transfer of the same column saves exactly the dictionary.
        let mut w = WireEncoder::new();
        let first = w.column_wire_bytes(&col);
        let second = w.column_wire_bytes(&col);
        prop_assert_eq!(first, second + dict_bytes);
    }
}

/// Pins the byte-level wire format. If this test fails, the format changed:
/// bump [`PAGE_VERSION`] and treat it as a breaking storage change.
#[test]
fn golden_bytes_pin_the_format() {
    assert_eq!(PAGE_MAGIC, *b"CIPG");
    assert_eq!(PAGE_VERSION, 1);
    assert_eq!(PAGE_HEADER_BYTES, 12);

    // Plain Int64 [1, 2]: header + two LE i64s.
    let (_, bytes) = encode_column(&ColumnData::Int64(vec![1, 2]), PageCodec::Plain).unwrap();
    #[rustfmt::skip]
    let expected = vec![
        0x43, 0x49, 0x50, 0x47, // "CIPG"
        0x01,                   // version
        0x00,                   // codec = Plain
        0x00,                   // dtype = Int64
        0x00,                   // reserved
        0x02, 0x00, 0x00, 0x00, // rows = 2
        0x01, 0, 0, 0, 0, 0, 0, 0,
        0x02, 0, 0, 0, 0, 0, 0, 0,
    ];
    assert_eq!(bytes, expected, "Plain Int64 layout drifted");

    // Dict page over ["b", "a", "b"]: 2 entries in first-appearance order,
    // 1-bit ids packed LSB-first (0, 1, 0 -> 0b010).
    let col = utf8(&["b".into(), "a".into(), "b".into()]);
    let (meta, bytes) = encode_column(&col, PageCodec::Dict).unwrap();
    #[rustfmt::skip]
    let expected = vec![
        0x43, 0x49, 0x50, 0x47, 0x01,
        0x01,                   // codec = Dict
        0x02,                   // dtype = Utf8
        0x00,
        0x03, 0x00, 0x00, 0x00, // rows = 3
        0x02, 0x00, 0x00, 0x00, // 2 dictionary entries
        0x01, 0x00, 0x00, 0x00, 0x62, // "b"
        0x01, 0x00, 0x00, 0x00, 0x61, // "a"
        0x01,                   // bit width = 1
        0x02,                   // ids 0,1,0 packed LSB-first
    ];
    assert_eq!(bytes, expected, "Dict page layout drifted");
    assert_eq!(meta.dict_bytes, 14, "dict section = count + 2 entries");

    // RLE Bool [true, true, false]: two runs.
    let (_, bytes) =
        encode_column(&ColumnData::Bool(vec![true, true, false]), PageCodec::Rle).unwrap();
    #[rustfmt::skip]
    let expected = vec![
        0x43, 0x49, 0x50, 0x47, 0x01,
        0x02,                   // codec = Rle
        0x03,                   // dtype = Bool
        0x00,
        0x03, 0x00, 0x00, 0x00, // rows = 3
        0x02, 0x00, 0x00, 0x00, // 2 runs
        0x02, 0x00, 0x00, 0x00, 0x01, // run: 2 x true
        0x01, 0x00, 0x00, 0x00, 0x00, // run: 1 x false
    ];
    assert_eq!(bytes, expected, "RLE layout drifted");

    // Round-trip the goldens for good measure.
    assert_eq!(
        decode_column(&encode_column(&col, PageCodec::Dict).unwrap().1).unwrap(),
        col
    );
}
