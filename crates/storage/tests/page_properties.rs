//! Property tests for the encoded page format: every codec round-trips
//! every column variant exactly, compression never loses data, sizing is
//! exact, and malformed pages fail with errors, never panics. A golden
//! fixed-bytes test pins the wire format itself — any byte-level change to
//! the encoder is a format break and must bump `PAGE_VERSION`.

use ci_storage::column::ColumnData;
use ci_storage::pages::{
    decode_column, dictionary_page_bytes, encode_best, encode_column, encoded_size, pick_codec,
    PageCodec, WireDecoder, WireEncoder, PAGE_HEADER_BYTES, PAGE_MAGIC, PAGE_VERSION,
};
use proptest::prelude::*;

fn utf8(vals: &[String]) -> ColumnData {
    ColumnData::Utf8(vals.to_vec())
}

/// Round-trips one column through every applicable codec, checking value
/// equality and exact size accounting.
fn check_round_trip(col: &ColumnData) -> Result<(), String> {
    for codec in PageCodec::candidates(col.data_type()) {
        let (meta, bytes) = encode_column(col, codec).map_err(|e| e.to_string())?;
        if meta.encoded_bytes as usize != bytes.len() {
            return Err(format!(
                "{codec:?}: meta says {} bytes, encoded {}",
                meta.encoded_bytes,
                bytes.len()
            ));
        }
        if encoded_size(col, codec).map_err(|e| e.to_string())? != bytes.len() as u64 {
            return Err(format!(
                "{codec:?}: size-only estimate disagrees with encoder"
            ));
        }
        if meta.rows != col.len() || meta.decoded_bytes != col.byte_size() as u64 {
            return Err(format!("{codec:?}: bad metadata {meta:?}"));
        }
        let decoded = decode_column(&bytes).map_err(|e| e.to_string())?;
        if &decoded != col {
            return Err(format!("{codec:?}: decode(encode(c)) != c"));
        }
    }
    Ok(())
}

/// Corrupting or truncating a page must never panic: every outcome is a
/// clean `Err` or a decode of the declared row count.
fn check_corruption(col: &ColumnData, codec: PageCodec, flip_at: usize, flip_bits: u8) {
    let (_, mut bytes) = encode_column(col, codec).expect("valid page");
    let at = flip_at % bytes.len();
    bytes[at] ^= flip_bits;
    if let Ok(decoded) = decode_column(&bytes) {
        // The flip may have landed in the row-count field itself; a decode
        // that still succeeds must honor whatever count the header declares.
        assert_eq!(decoded.len(), declared_rows(&bytes));
    }
    bytes[at] ^= flip_bits; // restore
    let cut = flip_at % bytes.len();
    assert!(decode_column(&bytes[..cut]).is_err(), "truncated at {cut}");
}

/// The row count a page header declares (byte offsets 8..12).
fn declared_rows(page: &[u8]) -> usize {
    u32::from_le_bytes(page[8..12].try_into().expect("4 bytes")) as usize
}

proptest! {
    /// Int columns round-trip through Plain, Rle, For, and Delta
    /// bit-identically — including extreme values whose frames and deltas
    /// wrap the i64 domain.
    #[test]
    fn int_columns_round_trip(vals in proptest::collection::vec(any::<i64>(), 0..200usize)) {
        let col = ColumnData::Int64(vals);
        prop_assert!(check_round_trip(&col).is_ok(), "{:?}", check_round_trip(&col));
    }

    /// Sorted int columns (the recluster shape) round-trip and genuinely
    /// compress: the picked codec never inflates, and on non-trivial sizes
    /// it beats Plain.
    #[test]
    fn sorted_int_columns_compress(
        vals in proptest::collection::vec(0i64..1_000_000, 1..300usize),
        base in -1_000_000i64..1_000_000,
    ) {
        let mut vals = vals;
        vals.sort_unstable();
        let col = ColumnData::Int64(vals.iter().map(|v| v + base).collect());
        prop_assert!(check_round_trip(&col).is_ok(), "{:?}", check_round_trip(&col));
        let (meta, bytes) = encode_best(&col).unwrap();
        prop_assert!(meta.encoded_bytes <= meta.decoded_bytes + PAGE_HEADER_BYTES as u64);
        if col.len() >= 64 {
            prop_assert!(
                meta.encoded_bytes < meta.decoded_bytes,
                "sorted ints must compress: {meta:?}"
            );
        }
        prop_assert_eq!(&decode_column(&bytes).unwrap(), &col);
    }

    /// Float columns round-trip (IEEE bits preserved exactly).
    #[test]
    fn float_columns_round_trip(vals in proptest::collection::vec(any::<f64>(), 0..200usize)) {
        let col = ColumnData::Float64(vals);
        prop_assert!(check_round_trip(&col).is_ok(), "{:?}", check_round_trip(&col));
    }

    /// Bool columns round-trip — including the bit-packed For form.
    #[test]
    fn bool_columns_round_trip(vals in proptest::collection::vec(any::<bool>(), 0..200usize)) {
        let col = ColumnData::Bool(vals);
        prop_assert!(check_round_trip(&col).is_ok(), "{:?}", check_round_trip(&col));
    }

    /// String columns round-trip under both in-memory encodings and all
    /// applicable codecs; dict pages decode back to dict-encoded columns.
    #[test]
    fn string_columns_round_trip(vals in string_column(6, 1..150)) {
        let naive = utf8(&vals);
        let dicted = naive.dict_encoded();
        prop_assert!(check_round_trip(&naive).is_ok(), "{:?}", check_round_trip(&naive));
        prop_assert!(check_round_trip(&dicted).is_ok(), "{:?}", check_round_trip(&dicted));
        let (_, bytes) = encode_column(&dicted, PageCodec::Dict).unwrap();
        prop_assert!(decode_column(&bytes).unwrap().as_dict().is_some());
        // Page accounting is invisible to the in-memory string encoding.
        for codec in PageCodec::candidates(ci_storage::value::DataType::Utf8) {
            prop_assert_eq!(
                encoded_size(&naive, codec).unwrap(),
                encoded_size(&dicted, codec).unwrap()
            );
        }
    }

    /// On dict/RLE-friendly data (duplicate-heavy, realistically wide
    /// strings) the picked codec genuinely compresses.
    #[test]
    fn friendly_data_compresses(
        short in string_column(4, 32..200),
        run_len in 2usize..50,
    ) {
        // Widen the pooled values so the decoded column is string-heavy.
        let vals: Vec<String> = short.iter().map(|s| format!("{s}-{s}-{s}-padding")).collect();
        let col = utf8(&vals).dict_encoded();
        let (meta, _) = encode_best(&col).unwrap();
        prop_assert!(
            meta.encoded_bytes <= meta.decoded_bytes,
            "dict-friendly data must not inflate: {meta:?}"
        );
        // Runs compress (under RLE or the int codecs, whichever is smaller).
        let runs = ColumnData::Int64(
            (0..8i64).flat_map(|v| std::iter::repeat_n(v * 1000, run_len)).collect()
        );
        let (rmeta, _) = encode_best(&runs).unwrap();
        prop_assert!(rmeta.encoded_bytes < rmeta.decoded_bytes, "{rmeta:?}");
    }

    /// Corrupting any single byte of a valid string page either fails
    /// cleanly or still decodes a column of the declared row count — never
    /// a panic. Every truncation errors.
    #[test]
    fn corrupted_pages_never_panic(
        vals in string_column(5, 1..60),
        flip_at in 0usize..4096,
        flip_bits in 1u8..255,
    ) {
        let col = utf8(&vals).dict_encoded();
        check_corruption(&col, pick_codec(&col), flip_at, flip_bits);
    }

    /// The same corruption guarantee for the bit-packed int codecs: forged
    /// widths (0, >64), forged row counts, and truncated packed sections
    /// all fail cleanly without over-allocating.
    #[test]
    fn corrupted_int_pages_never_panic(
        vals in proptest::collection::vec(any::<i64>(), 1..120usize),
        flip_at in 0usize..4096,
        flip_bits in 1u8..255,
        forged_rows in any::<u32>(),
    ) {
        let col = ColumnData::Int64(vals);
        for codec in [PageCodec::For, PageCodec::Delta, PageCodec::Rle, PageCodec::Plain] {
            check_corruption(&col, codec, flip_at, flip_bits);
            // Forged row counts must be caught by payload-size validation
            // (before any row-proportional allocation), or decode to
            // exactly the declared count.
            let (_, mut bytes) = encode_column(&col, codec).unwrap();
            bytes[8..12].copy_from_slice(&forged_rows.to_le_bytes());
            if let Ok(decoded) = decode_column(&bytes) {
                prop_assert_eq!(decoded.len(), forged_rows as usize);
            }
        }
    }

    /// The wire encoder's size-only accounting matches its real serializer,
    /// re-shipping a dictionary is free after the first transfer, and the
    /// receiver-side decoder inverts every blob of the stream.
    #[test]
    fn wire_sizes_match_serialization_and_decode(vals in string_column(5, 1..120)) {
        let col = utf8(&vals).dict_encoded();
        let (_, dict) = col.as_dict().unwrap();
        let dict_bytes = dictionary_page_bytes(dict);
        let mut size_only = WireEncoder::new();
        let mut real = WireEncoder::new();
        let mut rx = WireDecoder::new();
        for _ in 0..3 {
            let expected = size_only.column_wire_bytes(&col, 0).unwrap();
            let bytes = real.encode_column(&col, 0).unwrap();
            prop_assert_eq!(bytes.len() as u64, expected);
            let decoded = rx.decode_column(&bytes).unwrap();
            prop_assert_eq!(&decoded, &col);
            // Receiver ids are bit-identical, not just value-equal.
            prop_assert_eq!(decoded.as_dict().unwrap().0, col.as_dict().unwrap().0);
        }
        prop_assert_eq!(rx.cached_dictionaries(), 1);
        // Second transfer of the same column saves exactly the dictionary.
        let mut w = WireEncoder::new();
        let first = w.column_wire_bytes(&col, 0).unwrap();
        let second = w.column_wire_bytes(&col, 0).unwrap();
        prop_assert_eq!(first, second + dict_bytes);
    }

    /// Corrupting wire blobs never panics the receiver: any flip or
    /// truncation of either the dictionary transfer or an ids-only page is
    /// a clean `Err` or a decode of the declared row count.
    #[test]
    fn corrupted_wire_blobs_never_panic(
        vals in string_column(4, 1..60),
        flip_at in 0usize..4096,
        flip_bits in 1u8..255,
    ) {
        let col = utf8(&vals).dict_encoded();
        let mut tx = WireEncoder::new();
        let b1 = tx.encode_column(&col, 0).unwrap();
        let b2 = tx.encode_column(&col, 0).unwrap();
        for (warm, blob) in [(false, &b1), (true, &b2)] {
            let mut corrupt = blob.clone();
            let at = flip_at % corrupt.len();
            corrupt[at] ^= flip_bits;
            let mut rx = WireDecoder::new();
            if warm {
                rx.decode_column(&b1).unwrap();
            }
            if let Ok(decoded) = rx.decode_column(&corrupt) {
                prop_assert_eq!(decoded.len(), declared_rows(&corrupt));
            }
            let mut rx = WireDecoder::new();
            if warm {
                rx.decode_column(&b1).unwrap();
            }
            prop_assert!(rx.decode_column(&blob[..at]).is_err());
        }
    }

    /// Int frame streams get the same guarantee: the first transfer of an
    /// `Int64` column carries its FoR/Delta frame, the repeat transfer is a
    /// `PAGE_FLAG_DICT_REF` page of packed offsets riding the receiver's
    /// cached frame. Any bit flip is a clean `Err` or a decode of the
    /// declared row count; any truncation is an `Err`; and replaying the
    /// reuse page into a *cold* receiver that never saw the frame is an
    /// `Err` — never a panic, never a silent mis-decode.
    #[test]
    fn corrupted_int_frame_wire_blobs_never_panic(
        vals in proptest::collection::vec(0i64..100_000, 2..120usize),
        flip_at in 0usize..4096,
        flip_bits in 1u8..255,
    ) {
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        // Unsorted leans FoR; sorted leans Delta — both frame codecs.
        for col in [ColumnData::Int64(vals.clone()), ColumnData::Int64(sorted)] {
            let mut tx = WireEncoder::new();
            let b1 = tx.encode_column(&col, 0).unwrap();
            let b2 = tx.encode_column(&col, 0).unwrap();
            // Re-shipping never costs more; strictly less iff the second
            // page rides the cached frame.
            prop_assert!(b2.len() <= b1.len());
            for (warm, blob) in [(false, &b1), (true, &b2)] {
                let mut corrupt = blob.clone();
                let at = flip_at % corrupt.len();
                corrupt[at] ^= flip_bits;
                let mut rx = WireDecoder::new();
                if warm {
                    rx.decode_column(&b1).unwrap();
                }
                if let Ok(decoded) = rx.decode_column(&corrupt) {
                    prop_assert_eq!(decoded.len(), declared_rows(&corrupt));
                }
                let mut rx = WireDecoder::new();
                if warm {
                    rx.decode_column(&b1).unwrap();
                }
                prop_assert!(rx.decode_column(&blob[..at]).is_err());
            }
            if b2.len() < b1.len() {
                let mut cold = WireDecoder::new();
                prop_assert!(
                    cold.decode_column(&b2).is_err(),
                    "frame-reuse page must not decode without its frame"
                );
            }
        }
    }
}

/// Pins the byte-level page format. If this test fails, the format changed:
/// bump [`PAGE_VERSION`] and treat it as a breaking storage change.
#[test]
fn golden_bytes_pin_the_format() {
    assert_eq!(PAGE_MAGIC, *b"CIPG");
    assert_eq!(PAGE_VERSION, 2);
    assert_eq!(PAGE_HEADER_BYTES, 12);

    // Plain Int64 [1, 2]: header + two LE i64s.
    let (_, bytes) = encode_column(&ColumnData::Int64(vec![1, 2]), PageCodec::Plain).unwrap();
    #[rustfmt::skip]
    let expected = vec![
        0x43, 0x49, 0x50, 0x47, // "CIPG"
        0x02,                   // version
        0x00,                   // codec = Plain
        0x00,                   // dtype = Int64
        0x00,                   // reserved
        0x02, 0x00, 0x00, 0x00, // rows = 2
        0x01, 0, 0, 0, 0, 0, 0, 0,
        0x02, 0, 0, 0, 0, 0, 0, 0,
    ];
    assert_eq!(bytes, expected, "Plain Int64 layout drifted");

    // Dict page over ["b", "a", "b"]: 2 entries in first-appearance order,
    // 1-bit ids packed LSB-first (0, 1, 0 -> 0b010).
    let col = utf8(&["b".into(), "a".into(), "b".into()]);
    let (meta, bytes) = encode_column(&col, PageCodec::Dict).unwrap();
    #[rustfmt::skip]
    let expected = vec![
        0x43, 0x49, 0x50, 0x47, 0x02,
        0x01,                   // codec = Dict
        0x02,                   // dtype = Utf8
        0x00,
        0x03, 0x00, 0x00, 0x00, // rows = 3
        0x02, 0x00, 0x00, 0x00, // 2 dictionary entries
        0x01, 0x00, 0x00, 0x00, 0x62, // "b"
        0x01, 0x00, 0x00, 0x00, 0x61, // "a"
        0x01,                   // bit width = 1
        0x02,                   // ids 0,1,0 packed LSB-first
    ];
    assert_eq!(bytes, expected, "Dict page layout drifted");
    assert_eq!(meta.dict_bytes, 14, "dict section = count + 2 entries");

    // RLE Bool [true, true, false]: two runs.
    let (_, bytes) =
        encode_column(&ColumnData::Bool(vec![true, true, false]), PageCodec::Rle).unwrap();
    #[rustfmt::skip]
    let expected = vec![
        0x43, 0x49, 0x50, 0x47, 0x02,
        0x02,                   // codec = Rle
        0x03,                   // dtype = Bool
        0x00,
        0x03, 0x00, 0x00, 0x00, // rows = 3
        0x02, 0x00, 0x00, 0x00, // 2 runs
        0x02, 0x00, 0x00, 0x00, 0x01, // run: 2 x true
        0x01, 0x00, 0x00, 0x00, 0x00, // run: 1 x false
    ];
    assert_eq!(bytes, expected, "RLE layout drifted");

    // For Int64 [5, 7, 6]: frame min 5, range 2 -> width 2 bits, offsets
    // 0, 2, 1 packed LSB-first into 0b01_10_00 = 0x18.
    let (_, bytes) = encode_column(&ColumnData::Int64(vec![5, 7, 6]), PageCodec::For).unwrap();
    #[rustfmt::skip]
    let expected = vec![
        0x43, 0x49, 0x50, 0x47, 0x02,
        0x03,                   // codec = For
        0x00,                   // dtype = Int64
        0x00,
        0x03, 0x00, 0x00, 0x00, // rows = 3
        0x05, 0, 0, 0, 0, 0, 0, 0, // frame min = 5
        0x02,                   // bit width = 2
        0x18,                   // offsets 0,2,1 packed LSB-first
    ];
    assert_eq!(bytes, expected, "For layout drifted");

    // Delta Int64 [10, 13, 16]: first 10, constant delta 3 -> min_delta 3,
    // width 0, no packed section at all.
    let (_, bytes) = encode_column(&ColumnData::Int64(vec![10, 13, 16]), PageCodec::Delta).unwrap();
    #[rustfmt::skip]
    let expected = vec![
        0x43, 0x49, 0x50, 0x47, 0x02,
        0x04,                   // codec = Delta
        0x00,                   // dtype = Int64
        0x00,
        0x03, 0x00, 0x00, 0x00, // rows = 3
        0x0a, 0, 0, 0, 0, 0, 0, 0, // first value = 10
        0x03, 0, 0, 0, 0, 0, 0, 0, // min delta = 3
        0x00,                   // bit width = 0
    ];
    assert_eq!(bytes, expected, "Delta layout drifted");

    // Wire dict pages: flags bit 1 marks the stream form (u32 dictionary id
    // after the header); bit 0 marks an ids-only follow-up.
    let dicted = col.dict_encoded();
    let mut tx = WireEncoder::new();
    let b1 = tx.encode_column(&dicted, 0).unwrap();
    let b2 = tx.encode_column(&dicted, 0).unwrap();
    #[rustfmt::skip]
    let expected_first = vec![
        0x43, 0x49, 0x50, 0x47, 0x02,
        0x01,                   // codec = Dict
        0x02,                   // dtype = Utf8
        0x02,                   // flags = WIRE_STREAM
        0x03, 0x00, 0x00, 0x00, // rows = 3
        0x00, 0x00, 0x00, 0x00, // stream dictionary id = 0
        0x02, 0x00, 0x00, 0x00, // 2 dictionary entries
        0x01, 0x00, 0x00, 0x00, 0x62, // "b"
        0x01, 0x00, 0x00, 0x00, 0x61, // "a"
        0x01,                   // bit width = 1
        0x02,                   // ids 0,1,0
    ];
    assert_eq!(b1, expected_first, "wire dictionary transfer drifted");
    #[rustfmt::skip]
    let expected_ref = vec![
        0x43, 0x49, 0x50, 0x47, 0x02,
        0x01, 0x02,
        0x03,                   // flags = WIRE_STREAM | DICT_REF
        0x03, 0x00, 0x00, 0x00,
        0x00, 0x00, 0x00, 0x00, // stream dictionary id = 0
        0x01, 0x02,             // bit width, ids
    ];
    assert_eq!(b2, expected_ref, "wire ids-only page drifted");

    // Round-trip the goldens for good measure.
    assert_eq!(
        decode_column(&encode_column(&col, PageCodec::Dict).unwrap().1).unwrap(),
        col
    );
    let mut rx = WireDecoder::new();
    assert_eq!(rx.decode_column(&b1).unwrap(), col);
    assert_eq!(rx.decode_column(&b2).unwrap(), col);
}

/// An ids-only wire page referencing a dictionary with zero entries can
/// never carry rows; the receiver rejects it instead of fabricating ids.
#[test]
fn wire_empty_dictionary_with_rows_rejected() {
    let empty = utf8(&[]).dict_encoded();
    let mut tx = WireEncoder::new();
    let blob = tx.encode_column(&empty, 0).unwrap();
    let mut rx = WireDecoder::new();
    assert_eq!(rx.decode_column(&blob).unwrap(), empty);
    // Forge a row count onto the empty-dictionary ref page.
    let mut forged = tx.encode_column(&empty, 0).unwrap();
    forged[8..12].copy_from_slice(&5u32.to_le_bytes());
    assert!(rx.decode_column(&forged).is_err());
}
