//! Property tests: on-disk `CIPF` page files fail *typed*, never silently.
//!
//! The tiered-storage contract (§3.1's "the object store is the durable
//! tier") is that a corrupted partition or manifest file surfaces as
//! `CiError::Storage` — never a panic, never a silently wrong batch, and
//! never an attacker-controlled allocation. These properties drive random
//! byte flips, truncations, and forged header fields through the real
//! `ObjectStoreDir` read path.

use std::path::PathBuf;
use std::sync::Arc;

use ci_storage::batch::RecordBatch;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema, SchemaRef};
use ci_storage::table::{Table, TableBuilder};
use ci_storage::tiers::{ObjectStoreDir, TIER_HEADER_BYTES};
use ci_storage::value::DataType;
use ci_types::{CiError, TableId};
use proptest::prelude::*;

/// One registered table on a real temp directory, plus the pristine bytes of
/// its first partition file and its manifest so each case can corrupt and
/// restore in place.
struct Fixture {
    store: ObjectStoreDir,
    table: Arc<Table>,
    part_path: PathBuf,
    part_good: Vec<u8>,
    manifest_path: PathBuf,
    manifest_good: Vec<u8>,
}

impl Fixture {
    fn new() -> Fixture {
        let schema: SchemaRef = Arc::new(Schema::of(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
            Field::new("tag", DataType::Utf8),
            Field::new("code", DataType::Int64),
            Field::new("ok", DataType::Bool),
        ]));
        let n = 120i64;
        let batch = RecordBatch::new(
            schema.clone(),
            vec![
                ColumnData::Int64((0..n).collect()),
                ColumnData::Float64((0..n).map(|i| i as f64 * 0.25).collect()),
                ColumnData::Utf8((0..n).map(|i| format!("tag{}", i % 5)).collect()),
                ColumnData::Int64((0..n).map(|i| i % 3).collect()),
                ColumnData::Bool((0..n).map(|i| i % 2 == 0).collect()),
            ],
        )
        .unwrap();
        let mut b = TableBuilder::new(TableId::new(90), "props", schema, 16).unwrap();
        b.append(batch).unwrap();
        let table = Arc::new(b.finish().unwrap().dict_encoded().dict_encoded_ints(16));
        let store = ObjectStoreDir::temp().unwrap();
        store.ensure_table(&table).unwrap();
        let part_path = store.partition_path(table.id, 0);
        let part_good = std::fs::read(&part_path).unwrap();
        let manifest_path = store
            .root()
            .join(format!("t{}", table.id.index()))
            .join("table.cipt");
        let manifest_good = std::fs::read(&manifest_path).unwrap();
        Fixture {
            store,
            table,
            part_path,
            part_good,
            manifest_path,
            manifest_good,
        }
    }
}

thread_local! {
    static FIX: Fixture = Fixture::new();
}

/// Writes `bytes` over partition 0 on disk, runs the read, restores the
/// pristine file, and returns the read's outcome.
fn read_with_partition_bytes(f: &Fixture, bytes: &[u8]) -> Result<RecordBatch, CiError> {
    std::fs::write(&f.part_path, bytes).unwrap();
    let got = f.store.read_partition(f.table.id, 0);
    std::fs::write(&f.part_path, &f.part_good).unwrap();
    got
}

fn assert_storage_err(got: Result<RecordBatch, CiError>) -> Result<(), String> {
    match got {
        Err(CiError::Storage(_)) => Ok(()),
        Err(other) => Err(format!("want CiError::Storage, got {other:?}")),
        Ok(_) => Err("corrupted file decoded cleanly".into()),
    }
}

proptest! {
    /// Flipping any single byte of a partition file — header or payload —
    /// is detected as a typed storage error: the payload is checksummed and
    /// every header field is validated against the file or the schema.
    #[test]
    fn flipped_partition_byte_is_always_detected(
        flip_at in 0usize..1_000_000,
        flip_bits in 1u8..255,
    ) {
        FIX.with(|f| -> Result<(), String> {
            let mut bad = f.part_good.clone();
            let at = flip_at % bad.len();
            bad[at] ^= flip_bits;
            assert_storage_err(read_with_partition_bytes(f, &bad))?;
            // The pristine file must still decode exactly after restore.
            let ok = f.store.read_partition(f.table.id, 0)
                .map_err(|e| format!("restored file failed: {e}"))?;
            prop_assert_eq!(&ok, &f.table.partitions[0].batch);
            Ok(())
        })?;
    }

    /// Truncating a partition file at any point — inside the header or the
    /// payload — errs typed: the declared payload length no longer matches
    /// the file size. Appended garbage is rejected by the same check.
    #[test]
    fn truncated_or_padded_partition_is_always_detected(
        cut in 0usize..1_000_000,
        pad in 1usize..64,
    ) {
        FIX.with(|f| -> Result<(), String> {
            let cut = cut % f.part_good.len();
            assert_storage_err(read_with_partition_bytes(f, &f.part_good[..cut]))?;
            let mut padded = f.part_good.clone();
            padded.extend(std::iter::repeat_n(0xabu8, pad));
            assert_storage_err(read_with_partition_bytes(f, &padded))?;
            Ok(())
        })?;
    }

    /// A forged `payload_len` header field — including `u64::MAX` — fails
    /// against the real file size *before* any payload-proportional
    /// allocation: the test passing at all is the no-overallocation proof.
    #[test]
    fn forged_payload_len_never_overallocates(forged in any::<u64>()) {
        FIX.with(|f| -> Result<(), String> {
            let truth = (f.part_good.len() - TIER_HEADER_BYTES) as u64;
            let forged = if forged == truth { forged ^ 1 } else { forged };
            let mut bad = f.part_good.clone();
            bad[12..20].copy_from_slice(&forged.to_le_bytes());
            assert_storage_err(read_with_partition_bytes(f, &bad))?;
            assert_storage_err(read_with_partition_bytes(
                f,
                &{
                    let mut b = f.part_good.clone();
                    b[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
                    b
                },
            ))?;
            Ok(())
        })?;
    }

    /// The row count lives in the header, outside the checksum — but every
    /// forged value is still caught downstream: huge counts hit the decoder
    /// bound, and any other mismatch disagrees with the decoded column
    /// lengths or the packed dict-ref widths.
    #[test]
    fn forged_row_count_is_rejected(forged in any::<u32>()) {
        FIX.with(|f| -> Result<(), String> {
            let truth =
                u32::from_le_bytes(f.part_good[8..12].try_into().unwrap());
            let forged = if forged == truth { forged.wrapping_add(1) } else { forged };
            let mut bad = f.part_good.clone();
            bad[8..12].copy_from_slice(&forged.to_le_bytes());
            assert_storage_err(read_with_partition_bytes(f, &bad))?;
            Ok(())
        })?;
    }

    /// Manifest corruption never panics a cold open: `attach` either rejects
    /// the file typed, or — when the flip lands in the unchecksummed
    /// partition-count field — the surviving metadata still reproduces every
    /// real partition bit-exactly.
    #[test]
    fn manifest_corruption_fails_attach_or_stays_exact(
        flip_at in 0usize..1_000_000,
        flip_bits in 1u8..255,
    ) {
        FIX.with(|f| -> Result<(), String> {
            let mut bad = f.manifest_good.clone();
            let at = flip_at % bad.len();
            bad[at] ^= flip_bits;
            std::fs::write(&f.manifest_path, &bad).unwrap();
            let cold = ObjectStoreDir::at(f.store.root()).unwrap();
            let attached = cold.attach(f.table.id, f.table.schema.clone());
            std::fs::write(&f.manifest_path, &f.manifest_good).unwrap();
            match attached {
                Err(CiError::Storage(_)) => {}
                Err(other) => {
                    return Err(format!("want CiError::Storage, got {other:?}"))
                }
                Ok(_) => {
                    // Only the parts-count byte can slip past the header and
                    // checksum validation; the dictionaries must then still
                    // be exact for every partition that really exists.
                    for (pi, part) in f.table.partitions.iter().enumerate() {
                        let got = cold.read_partition(f.table.id, pi)
                            .map_err(|e| format!("partition {pi}: {e}"))?;
                        prop_assert_eq!(&got, &part.batch);
                    }
                }
            }
            Ok(())
        })?;
    }
}

/// Deleting a partition file out from under a registered table errs typed
/// (the read maps the IO failure to `CiError::Storage`), and restoring the
/// bytes heals the store with no resident state to invalidate.
#[test]
fn missing_partition_file_errs_typed_and_restore_heals() {
    let f = Fixture::new();
    std::fs::remove_file(&f.part_path).unwrap();
    match f.store.read_partition(f.table.id, 0) {
        Err(CiError::Storage(_)) => {}
        other => panic!("want Storage error, got {other:?}"),
    }
    std::fs::write(&f.part_path, &f.part_good).unwrap();
    let got = f.store.read_partition(f.table.id, 0).unwrap();
    assert_eq!(got, f.table.partitions[0].batch);
}
