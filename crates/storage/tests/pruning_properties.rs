//! Property tests: zone-map pruning soundness.
//!
//! The cardinal invariant of pruning (and of the §4 recluster action that
//! sharpens it): a pruned partition must contain **no** qualifying row, for
//! any data distribution and any bound.

use std::sync::Arc;

use ci_storage::batch::RecordBatch;
use ci_storage::column::ColumnData;
use ci_storage::pruning::ColumnBound;
use ci_storage::schema::{Field, Schema};
use ci_storage::table::TableBuilder;
use ci_storage::value::{DataType, Value};
use ci_types::TableId;
use proptest::prelude::*;

fn table_of(values: Vec<i64>, rows_per_part: usize) -> ci_storage::table::Table {
    let schema = Arc::new(Schema::of(vec![Field::new("v", DataType::Int64)]));
    let mut b =
        TableBuilder::new(TableId::new(0), "t", schema.clone(), rows_per_part).expect("builder");
    b.append(RecordBatch::new(schema, vec![ColumnData::Int64(values)]).expect("batch"))
        .expect("append");
    b.finish().expect("table")
}

fn bound_strategy() -> impl Strategy<Value = ColumnBound> {
    prop_oneof![
        any::<i64>().prop_map(|v| ColumnBound::eq(0, Value::Int(v % 200))),
        (any::<i64>(), any::<bool>()).prop_map(|(v, inc)| ColumnBound::range(
            0,
            Some((Value::Int(v % 200), inc)),
            None
        )),
        (any::<i64>(), any::<bool>()).prop_map(|(v, inc)| ColumnBound::range(
            0,
            None,
            Some((Value::Int(v % 200), inc))
        )),
        (any::<i64>(), any::<i64>(), any::<bool>(), any::<bool>()).prop_map(|(a, b, ia, ib)| {
            let (lo, hi) = if a % 200 <= b % 200 {
                (a % 200, b % 200)
            } else {
                (b % 200, a % 200)
            };
            ColumnBound::range(0, Some((Value::Int(lo), ia)), Some((Value::Int(hi), ib)))
        }),
    ]
}

proptest! {
    /// No qualifying row is ever lost to pruning, and the kept/pruned split
    /// partitions the table.
    #[test]
    fn pruning_never_drops_qualifying_rows(
        values in proptest::collection::vec(-100i64..100, 1..300),
        rows_per_part in 1usize..40,
        bound in bound_strategy(),
    ) {
        let t = table_of(values.clone(), rows_per_part);
        let outcome = t.prune(std::slice::from_ref(&bound));
        // Rows qualifying overall.
        let qualifying: usize = values
            .iter()
            .filter(|&&v| bound.contains(&Value::Int(v)))
            .count();
        // Rows qualifying within kept partitions only.
        let mut kept_qualifying = 0usize;
        for &pi in &outcome.kept {
            let part = &t.partitions[pi];
            let col = part.batch.column(0).as_i64().expect("ints");
            kept_qualifying += col
                .iter()
                .filter(|&&v| bound.contains(&Value::Int(v)))
                .count();
        }
        prop_assert_eq!(kept_qualifying, qualifying, "pruning lost rows");
        prop_assert_eq!(
            outcome.kept.len() + outcome.pruned_partitions,
            t.partition_count()
        );
    }

    /// Reclustering preserves the row multiset and never weakens pruning.
    #[test]
    fn recluster_preserves_rows_and_improves_pruning(
        values in proptest::collection::vec(-100i64..100, 2..300),
        bound in bound_strategy(),
    ) {
        let t = table_of(values.clone(), 16);
        let r = t.reclustered_by(0, 16).expect("recluster");
        // Multiset preserved.
        let mut before = values;
        before.sort_unstable();
        let mut after: Vec<i64> = r
            .to_batch().expect("batch")
            .column(0).as_i64().expect("ints")
            .to_vec();
        after.sort_unstable();
        prop_assert_eq!(before, after);
        // Pruning on the clustered column keeps no more partitions (by
        // count) than the unclustered layout has qualifying partitions...
        // and remains sound.
        let kept = r.prune(std::slice::from_ref(&bound));
        let mut qualifying = 0usize;
        for &pi in &kept.kept {
            let col = r.partitions[pi].batch.column(0).as_i64().expect("ints");
            qualifying += col.iter().filter(|&&v| bound.contains(&Value::Int(v))).count();
        }
        let total: usize = r
            .to_batch().expect("batch")
            .column(0).as_i64().expect("ints")
            .iter()
            .filter(|&&v| bound.contains(&Value::Int(v)))
            .count();
        prop_assert_eq!(qualifying, total);
    }
}
