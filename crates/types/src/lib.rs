//! Shared primitives for the `cost-intel` workspace.
//!
//! This crate holds the vocabulary types every other crate speaks:
//!
//! * [`money::Dollars`] — monetary cost, the paper's first-class optimization
//!   objective (CIDR 2024, §1).
//! * [`time::SimTime`] / [`time::SimDuration`] — virtual time for the
//!   discrete-event cloud simulator. Integer microseconds internally so event
//!   ordering is exact and runs are bit-reproducible.
//! * [`rng::DetRng`] — a deterministic xoshiro256++ PRNG; every random choice
//!   in the system flows from explicit seeds.
//! * [`ids`] — strongly-typed identifiers (queries, pipelines, nodes, ...).
//! * [`error::CiError`] — the workspace error type.
//! * [`stats`] — descriptive statistics used by experiment harnesses and the
//!   statistics service.
//! * [`regression`] — ordinary least squares, used to calibrate the cost
//!   estimator's exchange-operator models (§3.1: "pre-train regression models
//!   ... with synthetic workloads that cover the parameter space").

pub mod error;
pub mod ids;
pub mod money;
pub mod regression;
pub mod rng;
pub mod stats;
pub mod time;

pub use error::{CiError, Result};
pub use ids::{NodeId, OperatorId, PipelineId, QueryId, StageId, TableId};
pub use money::Dollars;
pub use rng::DetRng;
pub use time::{SimDuration, SimTime};
