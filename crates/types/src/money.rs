//! Monetary cost as a first-class value.
//!
//! The paper's central argument (§1) is that dollar cost must be an
//! optimization objective with the same standing as latency. [`Dollars`]
//! makes that explicit in type signatures throughout the workspace: the cost
//! estimator returns `Dollars`, the optimizer constrains on `Dollars`, the
//! billing meter accumulates `Dollars`, and what-if tuning reports net
//! `Dollars` per hour.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::time::SimDuration;

/// A (possibly negative) amount of money in US dollars.
///
/// Negative values appear legitimately in what-if analysis: the *net* rate
/// `x - y` of a tuning action (§4) is negative when the action loses money.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Dollars(pub f64);

impl Dollars {
    /// Zero dollars.
    pub const ZERO: Dollars = Dollars(0.0);

    /// Constructs from a raw `f64` amount.
    pub const fn new(amount: f64) -> Self {
        Dollars(amount)
    }

    /// The raw amount.
    pub const fn amount(self) -> f64 {
        self.0
    }

    /// `true` if the amount is a finite number (billing invariant).
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Rounds to whole cents. Used at report boundaries only; internal
    /// arithmetic keeps full precision so long simulations do not drift.
    pub fn round_cents(self) -> Dollars {
        Dollars((self.0 * 100.0).round() / 100.0)
    }

    /// Absolute difference, for approximate comparisons in tests.
    pub fn abs_diff(self, other: Dollars) -> f64 {
        (self.0 - other.0).abs()
    }

    /// The larger of two amounts.
    pub fn max(self, other: Dollars) -> Dollars {
        Dollars(self.0.max(other.0))
    }

    /// The smaller of two amounts.
    pub fn min(self, other: Dollars) -> Dollars {
        Dollars(self.0.min(other.0))
    }
}

impl fmt::Display for Dollars {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 0.0 {
            write!(f, "-${:.4}", -self.0)
        } else {
            write!(f, "${:.4}", self.0)
        }
    }
}

impl Add for Dollars {
    type Output = Dollars;
    fn add(self, rhs: Dollars) -> Dollars {
        Dollars(self.0 + rhs.0)
    }
}

impl AddAssign for Dollars {
    fn add_assign(&mut self, rhs: Dollars) {
        self.0 += rhs.0;
    }
}

impl Sub for Dollars {
    type Output = Dollars;
    fn sub(self, rhs: Dollars) -> Dollars {
        Dollars(self.0 - rhs.0)
    }
}

impl SubAssign for Dollars {
    fn sub_assign(&mut self, rhs: Dollars) {
        self.0 -= rhs.0;
    }
}

impl Neg for Dollars {
    type Output = Dollars;
    fn neg(self) -> Dollars {
        Dollars(-self.0)
    }
}

impl Mul<f64> for Dollars {
    type Output = Dollars;
    fn mul(self, rhs: f64) -> Dollars {
        Dollars(self.0 * rhs)
    }
}

impl Div<f64> for Dollars {
    type Output = Dollars;
    fn div(self, rhs: f64) -> Dollars {
        Dollars(self.0 / rhs)
    }
}

impl Div<Dollars> for Dollars {
    /// Ratio of two amounts (dimensionless), e.g. cost inflation factors.
    type Output = f64;
    fn div(self, rhs: Dollars) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Dollars {
    fn sum<I: Iterator<Item = Dollars>>(iter: I) -> Dollars {
        iter.fold(Dollars::ZERO, |a, b| a + b)
    }
}

/// A price expressed per unit of machine time.
///
/// The paper's billing rule (§3.1): "the monetary cost of a workload is
/// proportional to the total machine time instead of the CPU time" — so the
/// fundamental rate in the system is dollars per node-second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct DollarsPerSecond(pub f64);

impl DollarsPerSecond {
    /// Constructs from a $/s value.
    pub const fn new(rate: f64) -> Self {
        DollarsPerSecond(rate)
    }

    /// Convenience constructor from the common $/hour quote.
    pub fn per_hour(rate: f64) -> Self {
        DollarsPerSecond(rate / 3600.0)
    }

    /// The rate expressed per hour (for display; cloud prices are quoted hourly).
    pub fn hourly(self) -> f64 {
        self.0 * 3600.0
    }

    /// Bills a duration at this rate.
    pub fn bill(self, d: SimDuration) -> Dollars {
        Dollars(self.0 * d.as_secs_f64())
    }
}

impl fmt::Display for DollarsPerSecond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.4}/h", self.hourly())
    }
}

impl Mul<f64> for DollarsPerSecond {
    type Output = DollarsPerSecond;
    fn mul(self, rhs: f64) -> DollarsPerSecond {
        DollarsPerSecond(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Dollars::new(1.5);
        let b = Dollars::new(0.25);
        assert_eq!((a + b).amount(), 1.75);
        assert_eq!((a - b).amount(), 1.25);
        assert_eq!((a * 2.0).amount(), 3.0);
        assert_eq!((a / 2.0).amount(), 0.75);
        assert_eq!((-b).amount(), -0.25);
        assert!((a / b - 6.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Dollars = (1..=4).map(|i| Dollars::new(i as f64)).sum();
        assert_eq!(total.amount(), 10.0);
    }

    #[test]
    fn rounding_to_cents() {
        assert_eq!(Dollars::new(1.23456).round_cents().amount(), 1.23);
        assert_eq!(Dollars::new(1.237).round_cents().amount(), 1.24);
        // f64::round rounds half away from zero.
        assert_eq!(Dollars::new(-0.017).round_cents().amount(), -0.02);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Dollars::new(2.5).to_string(), "$2.5000");
        assert_eq!(Dollars::new(-2.5).to_string(), "-$2.5000");
    }

    #[test]
    fn rate_bills_machine_time() {
        // $3.60/hour == $0.001/second.
        let rate = DollarsPerSecond::per_hour(3.6);
        let bill = rate.bill(SimDuration::from_secs_f64(100.0));
        assert!(bill.abs_diff(Dollars::new(0.1)) < 1e-9);
        assert!((rate.hourly() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn min_max() {
        let a = Dollars::new(1.0);
        let b = Dollars::new(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }
}
