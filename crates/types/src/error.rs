//! Workspace-wide error type.

use std::fmt;

/// Convenience alias used across all `cost-intel` crates.
pub type Result<T> = std::result::Result<T, CiError>;

/// Errors produced anywhere in the cost-intelligent warehouse.
///
/// Variants are grouped by the architectural component that raises them
/// (parser, catalog, planner, executor, cloud substrate, constraint checking),
/// which keeps error reporting explainable — a stated design goal of the
/// paper's cost estimator (§3.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CiError {
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// Name resolution / catalog lookup failure (unknown table, column, ...).
    Catalog(String),
    /// Storage-format failure (malformed encoded page, codec mismatch, ...).
    Storage(String),
    /// Logical or physical planning failure.
    Plan(String),
    /// Execution-time failure (type mismatch in a batch, missing input, ...).
    Exec(String),
    /// Cloud substrate failure (no capacity, invalid resize, ...).
    Cloud(String),
    /// Unrecoverable injected or observed fault: retries exhausted on a
    /// permanently failing fetch, a worker lost beyond recovery. Distinct
    /// from [`CiError::Cloud`] so callers can tell "the substrate rejected
    /// the request" from "the request died of failures despite recovery".
    Fault(String),
    /// A user constraint (latency SLA or budget) cannot be satisfied by any
    /// plan the optimizer explored.
    Infeasible(String),
    /// Invalid configuration (bad hardware profile, non-positive scale, ...).
    Config(String),
    /// Tuning / what-if service failure.
    Tuning(String),
}

impl CiError {
    /// Short machine-readable category tag, handy for experiment CSV output.
    pub fn kind(&self) -> &'static str {
        match self {
            CiError::Parse(_) => "parse",
            CiError::Catalog(_) => "catalog",
            CiError::Storage(_) => "storage",
            CiError::Plan(_) => "plan",
            CiError::Exec(_) => "exec",
            CiError::Cloud(_) => "cloud",
            CiError::Fault(_) => "fault",
            CiError::Infeasible(_) => "infeasible",
            CiError::Config(_) => "config",
            CiError::Tuning(_) => "tuning",
        }
    }
}

impl fmt::Display for CiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, msg) = match self {
            CiError::Parse(m) => ("parse error", m),
            CiError::Catalog(m) => ("catalog error", m),
            CiError::Storage(m) => ("storage error", m),
            CiError::Plan(m) => ("plan error", m),
            CiError::Exec(m) => ("execution error", m),
            CiError::Cloud(m) => ("cloud error", m),
            CiError::Fault(m) => ("unrecoverable fault", m),
            CiError::Infeasible(m) => ("infeasible constraint", m),
            CiError::Config(m) => ("config error", m),
            CiError::Tuning(m) => ("tuning error", m),
        };
        write!(f, "{kind}: {msg}")
    }
}

impl std::error::Error for CiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = CiError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        assert_eq!(e.kind(), "parse");
    }

    #[test]
    fn kinds_are_distinct() {
        let all = [
            CiError::Parse(String::new()),
            CiError::Catalog(String::new()),
            CiError::Storage(String::new()),
            CiError::Plan(String::new()),
            CiError::Exec(String::new()),
            CiError::Cloud(String::new()),
            CiError::Fault(String::new()),
            CiError::Infeasible(String::new()),
            CiError::Config(String::new()),
            CiError::Tuning(String::new()),
        ];
        let mut kinds: Vec<_> = all.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }

    #[test]
    fn result_alias_works() {
        fn f(ok: bool) -> Result<u32> {
            if ok {
                Ok(1)
            } else {
                Err(CiError::Exec("boom".into()))
            }
        }
        assert_eq!(f(true).unwrap(), 1);
        assert!(f(false).is_err());
    }
}
