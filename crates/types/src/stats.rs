//! Descriptive statistics used by experiment harnesses and the Statistics
//! Service (§4): summaries of latency/cost samples, online accumulators, and
//! error metrics for estimator validation (§3.1 / experiment E2).

/// A one-pass (Welford) accumulator for mean and variance.
#[derive(Debug, Clone, Default)]
pub struct Online {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Online {
    /// Empty accumulator.
    pub fn new() -> Self {
        Online {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &Online) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A full-sample summary with exact percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median (p50).
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample set. Returns an all-zero summary for empty input.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
            };
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let mut acc = Online::new();
        for &x in samples {
            acc.push(x);
        }
        Summary {
            count: samples.len(),
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            min: sorted[0],
            p50: percentile_sorted(&sorted, 0.50),
            p90: percentile_sorted(&sorted, 0.90),
            p99: percentile_sorted(&sorted, 0.99),
            max: *sorted.last().expect("non-empty"),
        }
    }
}

/// Percentile by linear interpolation over a pre-sorted slice.
/// `q` is in `[0, 1]`. Panics (debug) on empty input.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    debug_assert!((0.0..=1.0).contains(&q));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Relative error `|predicted - actual| / actual`. Returns absolute error
/// when `actual` is ~0 to avoid division blow-ups on tiny baselines.
pub fn relative_error(predicted: f64, actual: f64) -> f64 {
    if actual.abs() < 1e-12 {
        (predicted - actual).abs()
    } else {
        (predicted - actual).abs() / actual.abs()
    }
}

/// Q-error, the standard cardinality-estimation quality metric:
/// `max(p/a, a/p) >= 1`, symmetric in over/under-estimation.
pub fn q_error(predicted: f64, actual: f64) -> f64 {
    let p = predicted.max(1e-12);
    let a = actual.max(1e-12);
    (p / a).max(a / p)
}

/// Geometric mean of strictly positive samples (0 for empty input).
pub fn geometric_mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = samples.iter().map(|&x| x.max(1e-300).ln()).sum();
    (log_sum / samples.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut acc = Online::new();
        for &x in &xs {
            acc.push(x);
        }
        assert_eq!(acc.count(), 8);
        assert!((acc.mean() - 5.0).abs() < 1e-12);
        assert!((acc.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(acc.min(), 2.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn online_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Online::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = Online::new();
        let mut right = Online::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Online::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.clone();
        a.merge(&Online::new());
        assert_eq!(a.mean(), before.mean());
        let mut e = Online::new();
        e.merge(&before);
        assert_eq!(e.mean(), before.mean());
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 0.5), 3.0);
        assert_eq!(percentile_sorted(&sorted, 0.25), 2.0);
        assert!((percentile_sorted(&sorted, 0.9) - 4.6).abs() < 1e-12);
    }

    #[test]
    fn summary_of_empty_and_singleton() {
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.p99, 0.0);
        let one = Summary::of(&[7.5]);
        assert_eq!(one.count, 1);
        assert_eq!(one.p50, 7.5);
        assert_eq!(one.min, 7.5);
        assert_eq!(one.max, 7.5);
    }

    #[test]
    fn error_metrics() {
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(0.5, 0.0) - 0.5).abs() < 1e-12);
        assert!((q_error(200.0, 100.0) - 2.0).abs() < 1e-12);
        assert!((q_error(50.0, 100.0) - 2.0).abs() < 1e-12);
        assert!(q_error(100.0, 100.0) >= 1.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0, 3.0, 3.0]) - 3.0).abs() < 1e-12);
    }
}
