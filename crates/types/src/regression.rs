//! Ordinary least squares, used to calibrate cost-estimator models.
//!
//! The paper (§3.1) proposes "simple mathematical formulas" for most
//! operators and "pre-train\[ed\] regression models" for complex exchange
//! operators — explicitly avoiding opaque ML so the estimator stays
//! explainable. This module provides exactly that: multivariate linear
//! regression via normal equations (with optional polynomial feature
//! expansion), solved by Gaussian elimination with partial pivoting.

use crate::error::{CiError, Result};

/// A fitted linear model `y ≈ β₀ + β₁·x₁ + … + βₖ·xₖ`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    /// Coefficients; `beta[0]` is the intercept.
    pub beta: Vec<f64>,
    /// Coefficient of determination on the training data.
    pub r_squared: f64,
}

impl LinearModel {
    /// Predicts `y` for a feature vector (without the leading 1).
    pub fn predict(&self, features: &[f64]) -> f64 {
        debug_assert_eq!(features.len() + 1, self.beta.len());
        let mut y = self.beta[0];
        for (b, x) in self.beta[1..].iter().zip(features) {
            y += b * x;
        }
        y
    }

    /// Number of features the model expects.
    pub fn arity(&self) -> usize {
        self.beta.len() - 1
    }
}

/// Fits `y ≈ β·[1, x]` by ordinary least squares.
///
/// `rows` is a list of feature vectors (all the same length), `ys` the
/// targets. Errors if shapes mismatch, there are fewer rows than
/// coefficients, or the normal equations are singular (collinear features).
pub fn fit(rows: &[Vec<f64>], ys: &[f64]) -> Result<LinearModel> {
    if rows.len() != ys.len() {
        return Err(CiError::Config(format!(
            "regression: {} feature rows but {} targets",
            rows.len(),
            ys.len()
        )));
    }
    if rows.is_empty() {
        return Err(CiError::Config("regression: empty training set".into()));
    }
    let k = rows[0].len();
    if rows.iter().any(|r| r.len() != k) {
        return Err(CiError::Config("regression: ragged feature rows".into()));
    }
    let p = k + 1; // coefficients including intercept
    if rows.len() < p {
        return Err(CiError::Config(format!(
            "regression: {} rows < {p} coefficients",
            rows.len()
        )));
    }

    // Build X'X (p×p) and X'y (p) with the implicit leading-1 column.
    let mut xtx = vec![vec![0.0f64; p]; p];
    let mut xty = vec![0.0f64; p];
    let mut row_buf = vec![0.0f64; p];
    for (r, &y) in rows.iter().zip(ys) {
        row_buf[0] = 1.0;
        row_buf[1..].copy_from_slice(r);
        for i in 0..p {
            xty[i] += row_buf[i] * y;
            for j in i..p {
                xtx[i][j] += row_buf[i] * row_buf[j];
            }
        }
    }
    // Mirror the upper triangle.
    for i in 1..p {
        let (upper, lower) = xtx.split_at_mut(i);
        for (j, upper_row) in upper.iter().enumerate() {
            lower[0][j] = upper_row[i];
        }
    }

    let beta = solve(&mut xtx, &mut xty)?;

    // R² on training data.
    let mean_y = ys.iter().sum::<f64>() / ys.len() as f64;
    let mut ss_tot = 0.0;
    let mut ss_res = 0.0;
    let model = LinearModel {
        beta,
        r_squared: 0.0,
    };
    for (r, &y) in rows.iter().zip(ys) {
        let pred = model.predict(r);
        ss_res += (y - pred).powi(2);
        ss_tot += (y - mean_y).powi(2);
    }
    let r_squared = if ss_tot < 1e-300 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Ok(LinearModel {
        beta: model.beta,
        r_squared,
    })
}

/// Solves `A x = b` in place by Gaussian elimination with partial pivoting.
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return Err(CiError::Config(
                "regression: singular normal equations (collinear features)".into(),
            ));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            let (above, below) = a.split_at_mut(row);
            let pivot_row = &above[col];
            for (t, pv) in below[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *t -= f * pv;
            }
            b[row] -= f * b[col];
        }
    }
    // Back-substitute.
    let mut x = vec![0.0f64; n];
    for col in (0..n).rev() {
        let mut v = b[col];
        for j in col + 1..n {
            v -= a[col][j] * x[j];
        }
        x[col] = v / a[col][col];
    }
    Ok(x)
}

/// Expands a scalar into polynomial features `[x, x², …, x^degree]`.
/// Degree-2 or -3 expansions capture the superlinear network cost of
/// exchange operators without resorting to black-box models.
pub fn poly_features(x: f64, degree: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(degree);
    let mut acc = 1.0;
    for _ in 0..degree {
        acc *= x;
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn fits_exact_line() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| 3.0 + 2.0 * i as f64).collect();
        let m = fit(&rows, &ys).unwrap();
        assert!((m.beta[0] - 3.0).abs() < 1e-9);
        assert!((m.beta[1] - 2.0).abs() < 1e-9);
        assert!(m.r_squared > 0.999_999);
        assert!((m.predict(&[20.0]) - 43.0).abs() < 1e-9);
    }

    #[test]
    fn fits_multivariate_with_noise() {
        let mut rng = DetRng::seed_from_u64(99);
        let mut rows = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..500 {
            let x1 = rng.range_f64(0.0, 10.0);
            let x2 = rng.range_f64(-5.0, 5.0);
            rows.push(vec![x1, x2]);
            ys.push(1.0 + 0.5 * x1 - 2.0 * x2 + rng.normal(0.0, 0.1));
        }
        let m = fit(&rows, &ys).unwrap();
        assert!((m.beta[0] - 1.0).abs() < 0.05, "b0={}", m.beta[0]);
        assert!((m.beta[1] - 0.5).abs() < 0.02, "b1={}", m.beta[1]);
        assert!((m.beta[2] + 2.0).abs() < 0.02, "b2={}", m.beta[2]);
        assert!(m.r_squared > 0.99);
    }

    #[test]
    fn poly_fit_recovers_quadratic() {
        let rows: Vec<Vec<f64>> = (1..30).map(|i| poly_features(i as f64, 2)).collect();
        let ys: Vec<f64> = (1..30).map(|i| 5.0 + (i * i) as f64).collect();
        let m = fit(&rows, &ys).unwrap();
        assert!((m.beta[0] - 5.0).abs() < 1e-6);
        assert!(m.beta[1].abs() < 1e-6);
        assert!((m.beta[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(fit(&[], &[]).is_err());
        assert!(fit(&[vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]).is_err());
        // Two coefficients need at least two rows.
        assert!(fit(&[vec![1.0]], &[1.0]).is_err());
    }

    #[test]
    fn rejects_collinear_features() {
        // x2 = 2*x1 exactly: singular.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert!(fit(&rows, &ys).is_err());
    }

    #[test]
    fn poly_features_shape() {
        assert_eq!(poly_features(2.0, 3), vec![2.0, 4.0, 8.0]);
        assert!(poly_features(5.0, 0).is_empty());
    }
}
