//! Strongly-typed identifiers.
//!
//! Using newtypes instead of raw integers prevents the classic "passed a
//! pipeline id where a node id was expected" bug class, at zero runtime cost.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Wraps a raw index.
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// The raw index, for use as a `Vec` subscript.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                debug_assert!(raw <= u32::MAX as usize);
                Self(raw as u32)
            }
        }
    };
}

id_type!(
    /// A compute node in the elastic cluster.
    NodeId, "node-"
);
id_type!(
    /// A user query admitted to the warehouse.
    QueryId, "q-"
);
id_type!(
    /// One pipeline (execution stage between pipeline breakers) of a physical plan.
    PipelineId, "pipe-"
);
id_type!(
    /// A physical operator instance inside a plan.
    OperatorId, "op-"
);
id_type!(
    /// A table registered in the catalog.
    TableId, "tbl-"
);
id_type!(
    /// A scheduling stage: a set of pipelines that may run concurrently.
    StageId, "stage-"
);

/// Allocates monotonically increasing ids of one type.
///
/// Not thread-safe by design — id allocation happens inside single-threaded
/// planning/simulation loops; services that need shared counters wrap this in
/// a lock.
#[derive(Debug, Default, Clone)]
pub struct IdGen {
    next: u32,
}

impl IdGen {
    /// Creates a generator starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next raw id value.
    pub fn next_raw(&mut self) -> u32 {
        let v = self.next;
        self.next += 1;
        v
    }

    /// Returns the next id converted into any id newtype.
    pub fn next_id<T: From<u32>>(&mut self) -> T {
        T::from(self.next_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(NodeId::new(3).to_string(), "node-3");
        assert_eq!(QueryId::new(0).to_string(), "q-0");
        assert_eq!(PipelineId::new(7).to_string(), "pipe-7");
        assert_eq!(TableId::new(1).to_string(), "tbl-1");
    }

    #[test]
    fn index_round_trips() {
        let id = OperatorId::from(42usize);
        assert_eq!(id.index(), 42);
        assert_eq!(OperatorId::new(42), id);
    }

    #[test]
    fn idgen_is_monotonic() {
        let mut g = IdGen::new();
        let a: NodeId = g.next_id();
        let b: NodeId = g.next_id();
        let c: NodeId = g.next_id();
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(StageId::new(1));
        s.insert(StageId::new(1));
        s.insert(StageId::new(2));
        assert_eq!(s.len(), 2);
        assert!(StageId::new(1) < StageId::new(2));
    }
}
