//! Virtual time for the discrete-event cloud simulator.
//!
//! All simulated timestamps and durations are integer **microseconds**. This
//! makes event ordering exact (no float comparison hazards in the event heap)
//! and keeps every experiment bit-reproducible across runs and machines.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

const MICROS_PER_SEC: u64 = 1_000_000;

/// A span of virtual time, non-negative, microsecond resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * MICROS_PER_SEC)
    }

    /// Builds from fractional seconds, rounding to the nearest microsecond.
    /// Negative or non-finite inputs clamp to zero (durations are spans).
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Fractional hours (cloud bills are quoted hourly).
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// `true` when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s < 1e-3 {
            write!(f, "{}us", self.0)
        } else if s < 1.0 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if s < 120.0 {
            write!(f, "{s:.3}s")
        } else {
            write!(f, "{:.2}min", s / 60.0)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration underflow");
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        debug_assert!(self.0 >= rhs.0, "SimDuration underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    /// Dimensionless ratio of two durations (e.g. slowdown factors).
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.as_secs_f64() / rhs.as_secs_f64()
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

/// An instant on the simulator's virtual clock (microseconds since start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds from whole microseconds since the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds from fractional seconds since the epoch.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(s).as_micros())
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Duration since an earlier instant. Panics (debug) if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self.0 >= earlier.0, "SimTime::since underflow");
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating version of [`SimTime::since`].
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_micros())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_micros();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        debug_assert!(self.0 >= rhs.as_micros(), "SimTime underflow");
        SimTime(self.0 - rhs.as_micros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_secs_f64(), 1.5);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_secs(3);
        let b = SimDuration::from_secs(1);
        assert_eq!(a + b, SimDuration::from_secs(4));
        assert_eq!(a - b, SimDuration::from_secs(2));
        assert_eq!(a * 2.0, SimDuration::from_secs(6));
        assert_eq!(a / 2.0, SimDuration::from_secs_f64(1.5));
        assert_eq!(a / b, 3.0);
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
    }

    #[test]
    fn time_advances() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(5);
        assert_eq!(t.as_secs_f64(), 5.0);
        assert_eq!(
            t.since(SimTime::from_secs_f64(2.0)),
            SimDuration::from_secs(3)
        );
        assert_eq!(
            SimTime::from_secs_f64(1.0).saturating_since(t),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ordering_is_exact() {
        let t1 = SimTime::from_micros(10);
        let t2 = SimTime::from_micros(11);
        assert!(t1 < t2);
        assert_eq!(t1.max(t2), t2);
        assert_eq!(t1.min(t2), t1);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimDuration::from_micros(500).to_string(), "500us");
        assert_eq!(SimDuration::from_millis(250).to_string(), "250.000ms");
        assert_eq!(SimDuration::from_secs(2).to_string(), "2.000s");
        assert_eq!(SimDuration::from_secs(600).to_string(), "10.00min");
    }

    #[test]
    fn sum_durations() {
        let total: SimDuration = (1..=3).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }
}
