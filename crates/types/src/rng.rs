//! Deterministic pseudo-random number generation.
//!
//! Every stochastic choice in the workspace — data generation, workload
//! arrival processes, cardinality-error injection — flows from a [`DetRng`]
//! seeded explicitly by the caller. We implement xoshiro256++ (seeded through
//! SplitMix64) rather than depending on an external crate's stream, so that
//! experiment outputs are stable across dependency upgrades.

/// xoshiro256++ PRNG with SplitMix64 seeding.
///
/// Passes BigCrush; plenty for simulation workloads. Not cryptographic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        DetRng { s }
    }

    /// Derives an independent child generator; used to give each table /
    /// query / component its own stream so adding a consumer does not perturb
    /// the draws of existing consumers.
    pub fn fork(&mut self, stream: u64) -> DetRng {
        DetRng::seed_from_u64(self.next_u64() ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`. Panics if `bound == 0`.
    /// Uses Lemire's multiply-shift rejection method (unbiased).
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "u64_below(0)");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
            // Rejected (probability < bound / 2^64); resample.
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.u64_below(hi - lo)
    }

    /// Uniform integer in `[lo, hi)` as i64. Panics if the range is empty.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo.wrapping_add(self.u64_below((hi - lo) as u64) as i64)
    }

    /// Uniform `usize` in `[0, bound)`.
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Standard normal via Box–Muller (one value per call; simple > fast here).
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = (self.f64()).max(1e-300);
        let u2 = self.f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std_dev * z
    }

    /// Exponential inter-arrival sample with the given rate (events/sec).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "exponential rate must be positive");
        let u = (1.0 - self.f64()).max(1e-300);
        -u.ln() / rate
    }

    /// Zipf-distributed rank in `[0, n)` with skew `theta` (0 = uniform-ish).
    ///
    /// Uses the rejection-free inverse-power approximation adequate for
    /// workload skew modelling (hot/cold attribute access in §4).
    pub fn zipf(&mut self, n: usize, theta: f64) -> usize {
        assert!(n > 0, "zipf over empty domain");
        if theta <= 1e-9 {
            return self.usize_below(n);
        }
        // Inverse CDF of a continuous power-law, discretized.
        let u = self.f64().max(1e-12);
        let x = (n as f64).powf(1.0 - theta.min(0.999_999));
        let v = ((x - 1.0) * u + 1.0).powf(1.0 / (1.0 - theta.min(0.999_999)));
        ((v - 1.0) as usize).min(n - 1)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.usize_below(i + 1);
            items.swap(i, j);
        }
    }

    /// Uniformly chooses an element by reference. Panics on empty input.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.usize_below(items.len())]
    }

    /// A multiplicative error factor in `[1/f, f]`, log-uniform, used to
    /// inject cardinality misestimation (§3.3 evaluates monitor recovery
    /// under estimation error).
    pub fn error_factor(&mut self, f: f64) -> f64 {
        assert!(f >= 1.0, "error factor must be >= 1");
        let lo = -(f.ln());
        let hi = f.ln();
        self.range_f64(lo, hi).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DetRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn u64_below_respects_bound_and_is_roughly_uniform() {
        let mut r = DetRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[r.u64_below(10) as usize] += 1;
        }
        for &c in &counts {
            // Expected 10_000 each; allow generous 10% slack.
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn range_endpoints() {
        let mut r = DetRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.range_i64(-5, 5);
            assert!((-5..5).contains(&v));
            let f = r.range_f64(2.0, 4.0);
            assert!((2.0..4.0).contains(&f));
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = DetRng::seed_from_u64(11);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_mean() {
        let mut r = DetRng::seed_from_u64(13);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zipf_is_skewed() {
        let mut r = DetRng::seed_from_u64(17);
        let mut head = 0usize;
        let n = 20_000;
        for _ in 0..n {
            if r.zipf(100, 0.9) < 10 {
                head += 1;
            }
        }
        // With strong skew, the top decile should get well over its uniform 10%.
        assert!(
            head as f64 / n as f64 > 0.3,
            "head share {}",
            head as f64 / n as f64
        );
        // Uniform fallback at theta=0.
        let mut uni = 0usize;
        for _ in 0..n {
            if r.zipf(100, 0.0) < 10 {
                uni += 1;
            }
        }
        let share = uni as f64 / n as f64;
        assert!((share - 0.1).abs() < 0.02, "uniform share {share}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed_from_u64(23);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn error_factor_bounds() {
        let mut r = DetRng::seed_from_u64(29);
        for _ in 0..1000 {
            let f = r.error_factor(4.0);
            assert!((0.25..=4.0).contains(&f), "factor {f}");
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = DetRng::seed_from_u64(5);
        let mut c1 = root.fork(1);
        let mut c2 = root.fork(2);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }
}
