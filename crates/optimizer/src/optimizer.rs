//! Top-level optimizer: DAG planning → bushy variants → DOP planning →
//! constrained choice.

use ci_catalog::{Catalog, ErrorInjector};
use ci_cost::{CostEstimator, EstimatorConfig, QueryEstimate};
use ci_plan::binder::{bind, BoundQuery};
use ci_plan::jointree::JoinTree;
use ci_plan::physical::{build_plan, PhysicalPlan};
use ci_plan::pipeline::PipelineGraph;
use ci_sql::parse;
use ci_types::{CiError, Result};

use crate::bushy::bushy_variants;
use crate::dagplan::dag_plan;
use crate::dopplan::{Constraint, DopPlanner, SearchStats};

/// Optimizer configuration.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Cost-estimator configuration.
    pub estimator: EstimatorConfig,
    /// Explore bushy join-shape variants at DOP-planning time (§3.2).
    pub explore_bushy: bool,
    /// Cardinality-error injection bound (1.0 = oracle estimates).
    pub error_bound: f64,
    /// Seed for error injection.
    pub error_seed: u64,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            estimator: EstimatorConfig::default(),
            explore_bushy: true,
            error_bound: 1.0,
            error_seed: 0,
        }
    }
}

/// A fully planned query, ready for execution.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The bound query.
    pub bound: BoundQuery,
    /// Chosen join-tree shape.
    pub tree: JoinTree,
    /// Physical plan with cardinality annotations.
    pub plan: PhysicalPlan,
    /// Pipeline decomposition.
    pub graph: PipelineGraph,
    /// Chosen per-pipeline DOPs.
    pub dops: Vec<u32>,
    /// Predicted latency/cost.
    pub predicted: QueryEstimate,
    /// Whether the user constraint is predicted to hold.
    pub feasible: bool,
    /// Search effort spent in DOP planning (summed over variants).
    pub search: SearchStats,
    /// Join-shape variants that were DOP-planned.
    pub variants_considered: usize,
}

/// The bi-objective optimizer.
pub struct Optimizer<'a> {
    catalog: &'a Catalog,
    /// Configuration (public for experiment sweeps).
    pub config: OptimizerConfig,
}

impl<'a> Optimizer<'a> {
    /// New optimizer over a catalog.
    pub fn new(catalog: &'a Catalog, config: OptimizerConfig) -> Optimizer<'a> {
        Optimizer { catalog, config }
    }

    /// Parses, binds, and plans a SQL query under a constraint.
    pub fn plan_sql(&self, sql: &str, constraint: Constraint) -> Result<PlannedQuery> {
        let ast = parse(sql)?;
        let bound = bind(&ast, self.catalog)?;
        self.plan_bound(bound, constraint)
    }

    /// Plans an already-bound query.
    pub fn plan_bound(&self, bound: BoundQuery, constraint: Constraint) -> Result<PlannedQuery> {
        // Stage 1: DAG planning (left-deep DP).
        let left_deep = dag_plan(&bound, self.catalog)?;
        let order = leaf_order(&left_deep);

        // Stage 2: join-shape variants, each DOP-planned.
        let variants = if self.config.explore_bushy && order.len() >= 3 {
            bushy_variants(&order)
        } else {
            vec![left_deep]
        };

        let est = CostEstimator::new(self.catalog, self.config.estimator.clone());
        let mut search = SearchStats::default();
        let mut variants_considered = 0usize;
        let mut best: Option<PlannedQuery> = None;

        for tree in variants {
            let mut injector = self.injector();
            let plan = match build_plan(&bound, &tree, self.catalog, &mut injector) {
                Ok(p) => p,
                // Bushy split not connected in the join graph: skip.
                Err(CiError::Plan(_)) => continue,
                Err(e) => return Err(e),
            };
            let graph = PipelineGraph::decompose(&plan)?;
            let mut planner = DopPlanner::new(&est);
            let dop_plan = planner.plan(&plan, &graph, constraint)?;
            search.estimates += planner.stats.estimates;
            search.candidates += planner.stats.candidates;
            variants_considered += 1;

            let candidate = PlannedQuery {
                bound: bound.clone(),
                tree,
                plan,
                graph,
                dops: dop_plan.dops,
                predicted: dop_plan.predicted,
                feasible: dop_plan.feasible,
                search,
                variants_considered,
            };
            let better = match &best {
                None => true,
                Some(b) => prefer(constraint, &candidate, b),
            };
            if better {
                best = Some(candidate);
            }
        }

        let mut chosen = best
            .ok_or_else(|| CiError::Plan("no join-shape variant produced a valid plan".into()))?;
        chosen.search = search;
        chosen.variants_considered = variants_considered;
        Ok(chosen)
    }

    fn injector(&self) -> ErrorInjector {
        if self.config.error_bound <= 1.0 {
            ErrorInjector::oracle()
        } else {
            ErrorInjector::with_bound(self.config.error_seed, self.config.error_bound)
        }
    }
}

/// Is `a` a better choice than `b` under the constraint?
fn prefer(constraint: Constraint, a: &PlannedQuery, b: &PlannedQuery) -> bool {
    if a.feasible != b.feasible {
        return a.feasible;
    }
    match constraint {
        Constraint::LatencySla(_) | Constraint::MinCost => {
            if a.feasible {
                a.predicted.cost < b.predicted.cost
            } else {
                a.predicted.latency < b.predicted.latency
            }
        }
        Constraint::Budget(_) => {
            if a.feasible {
                a.predicted.latency < b.predicted.latency
            } else {
                a.predicted.cost < b.predicted.cost
            }
        }
    }
}

/// In-order leaves of a join tree (the relation order).
pub fn leaf_order(tree: &JoinTree) -> Vec<usize> {
    let mut out = Vec::new();
    fn walk(t: &JoinTree, out: &mut Vec<usize>) {
        match t {
            JoinTree::Leaf(r) => out.push(*r),
            JoinTree::Join(l, r) => {
                walk(l, out);
                walk(r, out);
            }
        }
    }
    walk(tree, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ci_storage::batch::RecordBatch;
    use ci_storage::column::ColumnData;
    use ci_storage::schema::{Field, Schema};
    use ci_storage::table::TableBuilder;
    use ci_storage::value::DataType;
    use ci_types::money::Dollars;
    use ci_types::{SimDuration, TableId};

    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mk = |name: &str, id: u32, n: i64, fk_mod: i64, part: usize| {
            let schema = Arc::new(Schema::of(vec![
                Field::new("pk", DataType::Int64),
                Field::new("fk", DataType::Int64),
                Field::new("val", DataType::Float64),
            ]));
            let mut b = TableBuilder::new(TableId::new(id), name, schema.clone(), part).unwrap();
            b.append(
                RecordBatch::new(
                    schema,
                    vec![
                        ColumnData::Int64((0..n).collect()),
                        ColumnData::Int64((0..n).map(|i| i % fk_mod.max(1)).collect()),
                        ColumnData::Float64((0..n).map(|i| (i % 97) as f64).collect()),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
            b.finish().unwrap()
        };
        c.register(mk("f", 0, 300_000, 3_000, 16_384));
        c.register(mk("m", 1, 3_000, 30, 1_024));
        c.register(mk("t", 2, 30, 1, 64));
        c
    }

    const CHAIN: &str = "SELECT f.val FROM f JOIN m ON f.fk = m.pk \
                         JOIN t ON m.fk = t.pk WHERE t.val < 50.0";

    #[test]
    fn plans_end_to_end_under_sla() {
        let cat = catalog();
        let opt = Optimizer::new(&cat, OptimizerConfig::default());
        let planned = opt
            .plan_sql(CHAIN, Constraint::LatencySla(SimDuration::from_secs(30)))
            .unwrap();
        assert!(planned.feasible);
        assert_eq!(planned.dops.len(), planned.graph.len());
        assert!(planned.dops.iter().all(|&d| d >= 1));
        assert!(planned.variants_considered >= 1);
        assert!(planned.search.estimates > 0);
    }

    #[test]
    fn bushy_exploration_considers_more_variants() {
        let cat = catalog();
        let mut cfg = OptimizerConfig {
            explore_bushy: false,
            ..Default::default()
        };
        let opt_ld = Optimizer::new(&cat, cfg.clone());
        let ld = opt_ld.plan_sql(CHAIN, Constraint::MinCost).unwrap();
        assert_eq!(ld.variants_considered, 1);

        cfg.explore_bushy = true;
        let opt_b = Optimizer::new(&cat, cfg);
        let bushy = opt_b.plan_sql(CHAIN, Constraint::MinCost).unwrap();
        assert!(bushy.variants_considered >= ld.variants_considered);
        // Best bushy choice can never be worse than the left-deep-only one.
        assert!(bushy.predicted.cost.amount() <= ld.predicted.cost.amount() * 1.0001);
    }

    #[test]
    fn budget_constraint_respected_or_flagged() {
        let cat = catalog();
        let opt = Optimizer::new(&cat, OptimizerConfig::default());
        let tight = opt
            .plan_sql(CHAIN, Constraint::Budget(Dollars::new(0.000001)))
            .unwrap();
        // Either infeasible (flagged) or within budget.
        if tight.feasible {
            assert!(tight.predicted.cost <= Dollars::new(0.000001));
        }
        let roomy = opt
            .plan_sql(CHAIN, Constraint::Budget(Dollars::new(10.0)))
            .unwrap();
        assert!(roomy.feasible);
        assert!(roomy.predicted.latency <= tight.predicted.latency);
    }

    #[test]
    fn error_injection_flows_from_config() {
        let cat = catalog();
        let cfg = OptimizerConfig {
            error_bound: 4.0,
            error_seed: 7,
            ..Default::default()
        };
        let opt = Optimizer::new(&cat, cfg);
        let noisy = opt.plan_sql(CHAIN, Constraint::MinCost).unwrap();
        let clean = Optimizer::new(&cat, OptimizerConfig::default())
            .plan_sql(CHAIN, Constraint::MinCost)
            .unwrap();
        // Injected error perturbs the plan's cardinality annotations.
        let noisy_est: f64 = noisy.plan.nodes.iter().map(|n| n.est_rows).sum();
        let clean_est: f64 = clean.plan.nodes.iter().map(|n| n.est_rows).sum();
        assert_ne!(noisy_est, clean_est);
    }

    #[test]
    fn leaf_order_roundtrip() {
        let t = JoinTree::left_deep(&[2, 0, 1]);
        assert_eq!(leaf_order(&t), vec![2, 0, 1]);
    }
}
