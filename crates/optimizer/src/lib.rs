//! The bi-objective optimizer (§3.2).
//!
//! Following the paper, full multi-objective optimization is *downgraded* to
//! constrained single-objective search ([`Constraint`]): *minimize dollars
//! subject to a latency SLA*, or *minimize latency subject to a budget*.
//! The optimizer is staged exactly as §3.2 prescribes:
//!
//! 1. **DAG planning** ([`dagplan`]) — classic Selinger-style dynamic
//!    programming over the join graph, left-deep, bushy shapes excluded;
//! 2. **DOP planning** ([`dopplan`]) — assigns a degree of parallelism to
//!    every pipeline of the chosen DAG by greedy marginal search over the
//!    cost estimator, pruned with the **equal-finish-time heuristic**
//!    (`C1/T1(DOP1) ≈ C2/T2(DOP2)`) so concurrent sibling pipelines finish
//!    together and waste no pinned machine time;
//! 3. **bushy variants** ([`bushy`]) — explored *at the DOP-planning stage*,
//!    not inside the DAG search: the left-deep plan is rewritten into
//!    increasingly bushier shapes, each DOP-planned, and the best
//!    time/dollar trade-off under the user constraint wins.
//!
//! [`pareto`] implements the full-frontier enumeration baseline (\[35] in the
//! paper) that experiments E3/F2 compare against.

pub mod bushy;
pub mod dagplan;
pub mod dopplan;
pub mod optimizer;
pub mod pareto;

pub use dagplan::dag_plan;
pub use dopplan::{Constraint, DopPlan, DopPlanner, SearchStats};
pub use optimizer::{Optimizer, OptimizerConfig, PlannedQuery};
pub use pareto::{pareto_frontier, ParetoPoint};
