//! DAG planning: Selinger-style join-order search.
//!
//! §3.2: "the traditional single-machine query optimization that produces an
//! execution DAG". We run dynamic programming over connected subsets of the
//! join graph, restricted to **left-deep** trees (bushy shapes are explored
//! later, at DOP-planning time, per the paper), with estimated intermediate
//! cardinality as the cost.

use std::collections::HashMap;

use ci_catalog::{CardinalityEstimator, Catalog};
use ci_plan::binder::BoundQuery;
use ci_plan::jointree::JoinTree;
use ci_types::{CiError, Result};

/// Maximum relations for exact DP (2^n subsets); beyond this a greedy
/// fallback is used.
const DP_LIMIT: usize = 14;

/// Chooses a left-deep join order for a bound query, minimizing the sum of
/// estimated intermediate result cardinalities.
pub fn dag_plan(bound: &BoundQuery, catalog: &Catalog) -> Result<JoinTree> {
    let n = bound.relations.len();
    if n == 0 {
        return Err(CiError::Plan("query has no relations".into()));
    }
    if n == 1 {
        return Ok(JoinTree::Leaf(0));
    }
    let base = base_cardinalities(bound, catalog)?;
    let ndv = key_ndvs(bound, catalog);
    if n <= DP_LIMIT {
        dp_order(bound, &base, &ndv)
    } else {
        greedy_order(bound, &base, &ndv)
    }
}

/// Estimated post-filter cardinality of each relation.
fn base_cardinalities(bound: &BoundQuery, catalog: &Catalog) -> Result<Vec<f64>> {
    let est = CardinalityEstimator::new();
    bound
        .relations
        .iter()
        .map(|r| {
            let entry = catalog.get(&r.table_name)?;
            let rows = est.filter_rows(&entry.stats, &r.prune_bounds);
            let penalty =
                ci_catalog::cardinality::DEFAULT_SELECTIVITY.powi(r.unmodeled_filters as i32);
            Ok((rows * penalty).max(1.0))
        })
        .collect()
}

/// NDV per join-edge endpoint, keyed by (relation, slot).
fn key_ndvs(bound: &BoundQuery, catalog: &Catalog) -> HashMap<(usize, usize), u64> {
    let mut out = HashMap::new();
    for e in &bound.join_edges {
        for &(rel, slot) in &[(e.left_rel, e.left_slot), (e.right_rel, e.right_slot)] {
            let r = &bound.relations[rel];
            if let Ok(entry) = catalog.get(&r.table_name) {
                let col = slot - r.global_offset;
                out.insert((rel, slot), entry.stats.columns[col].ndv.max(1));
            }
        }
    }
    out
}

/// Join cardinality when relation `next` is appended to a set with
/// cardinality `cur_rows`; returns `None` when no edge connects them.
fn join_card(
    bound: &BoundQuery,
    in_set: u64,
    next: usize,
    cur_rows: f64,
    next_rows: f64,
    ndv: &HashMap<(usize, usize), u64>,
) -> Option<f64> {
    let est = CardinalityEstimator::new();
    let mut best: Option<f64> = None;
    for e in &bound.join_edges {
        let (a, b) = (e.left_rel, e.right_rel);
        let connects = (in_set >> a) & 1 == 1 && b == next || (in_set >> b) & 1 == 1 && a == next;
        if !connects {
            continue;
        }
        let (set_end, next_end) = if b == next {
            ((a, e.left_slot), (b, e.right_slot))
        } else {
            ((b, e.right_slot), (a, e.left_slot))
        };
        let n1 = ndv.get(&set_end).copied().unwrap_or(1);
        let n2 = ndv.get(&next_end).copied().unwrap_or(1);
        let card = est.join_rows(cur_rows, n1, next_rows, n2);
        best = Some(match best {
            None => card,
            // Multiple connecting edges: joins filter further.
            Some(prev) => prev.min(card),
        });
    }
    best
}

/// Exact DP over connected subsets, left-deep only.
fn dp_order(
    bound: &BoundQuery,
    base: &[f64],
    ndv: &HashMap<(usize, usize), u64>,
) -> Result<JoinTree> {
    let n = bound.relations.len();
    // best[mask] = (total_cost, result_rows, order)
    let mut best: HashMap<u64, (f64, f64, Vec<usize>)> = HashMap::new();
    for (r, &base_rows) in base.iter().enumerate() {
        best.insert(1u64 << r, (0.0, base_rows, vec![r]));
    }
    for mask in 1u64..(1 << n) {
        let Some((cost, rows, order)) = best.get(&mask).cloned() else {
            continue;
        };
        for (next, &base_rows) in base.iter().enumerate() {
            if (mask >> next) & 1 == 1 {
                continue;
            }
            let Some(card) = join_card(bound, mask, next, rows, base_rows, ndv) else {
                continue;
            };
            let new_mask = mask | (1 << next);
            let new_cost = cost + card;
            let better = match best.get(&new_mask) {
                None => true,
                Some((c, _, _)) => new_cost < *c,
            };
            if better {
                let mut new_order = order.clone();
                new_order.push(next);
                best.insert(new_mask, (new_cost, card, new_order));
            }
        }
    }
    let full = (1u64 << n) - 1;
    let (_, _, order) = best.get(&full).ok_or_else(|| {
        CiError::Plan("join graph is disconnected: no complete join order exists".into())
    })?;
    Ok(JoinTree::left_deep(order))
}

/// Greedy fallback for very wide joins: repeatedly append the relation with
/// the smallest estimated join result.
fn greedy_order(
    bound: &BoundQuery,
    base: &[f64],
    ndv: &HashMap<(usize, usize), u64>,
) -> Result<JoinTree> {
    let n = bound.relations.len();
    // Start from the smallest relation.
    let mut order = vec![base
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty")];
    let mut mask = 1u64 << order[0];
    let mut rows = base[order[0]];
    while order.len() < n {
        let mut choice: Option<(usize, f64)> = None;
        for (next, &base_rows) in base.iter().enumerate() {
            if (mask >> next) & 1 == 1 {
                continue;
            }
            if let Some(card) = join_card(bound, mask, next, rows, base_rows, ndv) {
                if choice.is_none_or(|(_, c)| card < c) {
                    choice = Some((next, card));
                }
            }
        }
        let (next, card) = choice.ok_or_else(|| {
            CiError::Plan("join graph is disconnected: greedy order stuck".into())
        })?;
        order.push(next);
        mask |= 1 << next;
        rows = card;
    }
    Ok(JoinTree::left_deep(&order))
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ci_plan::bind;
    use ci_sql::parse;
    use ci_storage::batch::RecordBatch;
    use ci_storage::column::ColumnData;
    use ci_storage::schema::{Field, Schema};
    use ci_storage::table::table_from_batch;
    use ci_storage::value::DataType;
    use ci_types::TableId;

    use super::*;

    /// fact (100k rows) -> mid (1k rows) -> tiny (10 rows): the DP should
    /// start from the small end of the chain.
    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let mk = |name: &str, id: u32, n: i64, fk_mod: i64| {
            let schema = Arc::new(Schema::of(vec![
                Field::new("pk", DataType::Int64),
                Field::new("fk", DataType::Int64),
            ]));
            table_from_batch(
                TableId::new(id),
                name,
                RecordBatch::new(
                    schema,
                    vec![
                        ColumnData::Int64((0..n).collect()),
                        ColumnData::Int64((0..n).map(|i| i % fk_mod.max(1)).collect()),
                    ],
                )
                .unwrap(),
            )
        };
        c.register(mk("fact", 0, 100_000, 1_000));
        c.register(mk("mid", 1, 1_000, 10));
        c.register(mk("tiny", 2, 10, 1));
        c
    }

    #[test]
    fn single_relation_is_leaf() {
        let cat = catalog();
        let b = bind(&parse("SELECT pk FROM fact").unwrap(), &cat).unwrap();
        assert_eq!(dag_plan(&b, &cat).unwrap(), JoinTree::Leaf(0));
    }

    #[test]
    fn chain_join_prefers_selective_start() {
        let cat = catalog();
        // fact.fk = mid.pk, mid.fk = tiny.pk
        let b = bind(
            &parse(
                "SELECT fact.pk FROM fact JOIN mid ON fact.fk = mid.pk \
                 JOIN tiny ON mid.fk = tiny.pk",
            )
            .unwrap(),
            &cat,
        )
        .unwrap();
        let tree = dag_plan(&b, &cat).unwrap();
        assert!(tree.is_left_deep());
        assert_eq!(tree.relations().len(), 3);
        // The chosen order should not join fact with tiny first (no edge);
        // and the total-intermediate cost of the chosen order must be no
        // worse than the syntactic order.
        let order_str = tree.to_string();
        assert!(
            !order_str.starts_with("(R0 ⋈ R2") && !order_str.starts_with("(R2 ⋈ R0"),
            "unconnected pair joined first: {order_str}"
        );
    }

    #[test]
    fn disconnected_graph_rejected() {
        let cat = catalog();
        // No join predicate at all between fact and tiny.
        let b = bind(&parse("SELECT fact.pk FROM fact, tiny").unwrap(), &cat).unwrap();
        assert!(dag_plan(&b, &cat).is_err());
    }

    #[test]
    fn greedy_matches_dp_on_small_chain() {
        let cat = catalog();
        let b = bind(
            &parse(
                "SELECT fact.pk FROM fact JOIN mid ON fact.fk = mid.pk \
                 JOIN tiny ON mid.fk = tiny.pk",
            )
            .unwrap(),
            &cat,
        )
        .unwrap();
        let base = base_cardinalities(&b, &cat).unwrap();
        let ndv = key_ndvs(&b, &cat);
        let dp = dp_order(&b, &base, &ndv).unwrap();
        let greedy = greedy_order(&b, &base, &ndv).unwrap();
        assert_eq!(dp.relations(), greedy.relations());
    }
}
