//! Pareto-frontier utilities and the full-enumeration baseline.
//!
//! §3.2 cites multi-objective optimizers that "produc\[e\] a set of physical
//! plans that form the Pareto frontier" \[35] and argues the full spectrum is
//! unnecessary. We implement the frontier machinery anyway: (a) as the
//! baseline experiments E3/F2 compare search effort against, and (b) to
//! *draw* Figure 2 empirically.

use ci_types::money::Dollars;
use ci_types::SimDuration;

/// One (latency, cost) point with its configuration payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint<T> {
    /// Predicted or measured latency.
    pub latency: SimDuration,
    /// Predicted or measured dollars.
    pub cost: Dollars,
    /// The configuration that produced this point (e.g. a DOP vector).
    pub config: T,
}

impl<T> ParetoPoint<T> {
    /// `true` when `self` dominates `other` (no worse in both, better in one).
    pub fn dominates(&self, other: &ParetoPoint<T>) -> bool {
        let le = self.latency <= other.latency && self.cost <= other.cost;
        let lt = self.latency < other.latency || self.cost < other.cost;
        le && lt
    }
}

/// Extracts the Pareto frontier (non-dominated points), sorted by latency
/// ascending. Ties collapse to the cheaper point.
pub fn pareto_frontier<T: Clone>(points: &[ParetoPoint<T>]) -> Vec<ParetoPoint<T>> {
    let mut sorted: Vec<ParetoPoint<T>> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.latency
            .cmp(&b.latency)
            .then(a.cost.partial_cmp(&b.cost).expect("finite cost"))
    });
    let mut frontier: Vec<ParetoPoint<T>> = Vec::new();
    let mut best_cost = f64::INFINITY;
    for p in sorted {
        if p.cost.amount() < best_cost {
            best_cost = p.cost.amount();
            frontier.push(p);
        }
    }
    frontier
}

/// Distance of a point above the frontier, as a multiplicative cost factor
/// at its latency (1.0 = on the frontier). Used by F2 to show T-shirt
/// configurations sitting off-frontier.
pub fn cost_inflation<T>(frontier: &[ParetoPoint<T>], p: &ParetoPoint<T>) -> f64 {
    // Cheapest frontier cost achievable at latency <= p.latency.
    let best = frontier
        .iter()
        .filter(|f| f.latency <= p.latency)
        .map(|f| f.cost.amount())
        .fold(f64::INFINITY, f64::min);
    if !best.is_finite() || best <= 0.0 {
        return 1.0;
    }
    p.cost.amount() / best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lat_s: f64, cost: f64) -> ParetoPoint<u32> {
        ParetoPoint {
            latency: SimDuration::from_secs_f64(lat_s),
            cost: Dollars::new(cost),
            config: 0,
        }
    }

    #[test]
    fn domination_rules() {
        assert!(pt(1.0, 1.0).dominates(&pt(2.0, 2.0)));
        assert!(pt(1.0, 1.0).dominates(&pt(1.0, 2.0)));
        assert!(!pt(1.0, 2.0).dominates(&pt(2.0, 1.0)));
        assert!(!pt(1.0, 1.0).dominates(&pt(1.0, 1.0)));
    }

    #[test]
    fn frontier_is_dominant_free_and_sorted() {
        let pts = vec![
            pt(4.0, 1.0),
            pt(1.0, 10.0),
            pt(2.0, 3.0),
            pt(2.5, 3.5), // dominated by (2.0, 3.0)
            pt(3.0, 2.0),
            pt(5.0, 5.0), // dominated
        ];
        let f = pareto_frontier(&pts);
        assert_eq!(f.len(), 4);
        for i in 0..f.len() {
            for j in 0..f.len() {
                if i != j {
                    assert!(!f[i].dominates(&f[j]), "frontier not dominant-free");
                }
            }
        }
        // Latency ascending, cost descending.
        for w in f.windows(2) {
            assert!(w[0].latency < w[1].latency);
            assert!(w[0].cost.amount() > w[1].cost.amount());
        }
    }

    #[test]
    fn tied_latency_keeps_cheaper() {
        let f = pareto_frontier(&[pt(1.0, 5.0), pt(1.0, 2.0)]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].cost, Dollars::new(2.0));
    }

    #[test]
    fn inflation_measures_off_frontier_distance() {
        let f = pareto_frontier(&[pt(1.0, 10.0), pt(2.0, 4.0), pt(4.0, 1.0)]);
        // A point at latency 2 costing 8 is 2x the frontier's 4.
        assert!((cost_inflation(&f, &pt(2.0, 8.0)) - 2.0).abs() < 1e-12);
        // On-frontier point has inflation 1.
        assert!((cost_inflation(&f, &pt(4.0, 1.0)) - 1.0).abs() < 1e-12);
        // Faster than anything on the frontier: defined as 1.
        assert_eq!(cost_inflation(&f, &pt(0.5, 100.0)), 1.0);
    }
}
