//! DOP planning: constrained single-objective search over per-pipeline
//! degrees of parallelism (§3.2).
//!
//! The search is greedy-marginal over the cost estimator:
//!
//! * **min-cost under a latency SLA** — start every pipeline at its
//!   standalone machine-time-optimal DOP, then repeatedly bump the DOP with
//!   the best Δlatency/Δcost ratio until the SLA is met;
//! * **min-latency under a budget** — start at min-cost, then spend budget
//!   on the best marginal improvements while it lasts;
//! * finally apply the **equal-finish-time heuristic**: within each group of
//!   concurrently-started pipelines, lower every DOP to the smallest value
//!   that still finishes by the group's critical finish time
//!   (`C1/T1(DOP1) ≈ C2/T2(DOP2)`), re-checking the constraint each step.
//!
//! All estimator invocations are counted ([`SearchStats`]) so experiments
//! E3/E4 can report search effort against the exhaustive baseline.

use ci_cost::{CostEstimator, PipelineWork, QueryEstimate};
use ci_plan::physical::PhysicalPlan;
use ci_plan::pipeline::PipelineGraph;
use ci_types::money::Dollars;
use ci_types::{Result, SimDuration};

/// The user's constraint: the paper's "downgraded" bi-objective form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Constraint {
    /// Minimize dollars subject to `latency <= sla`.
    LatencySla(SimDuration),
    /// Minimize latency subject to `cost <= budget`.
    Budget(Dollars),
    /// No constraint: minimize dollars (cheapest plan that still finishes).
    MinCost,
}

/// A DOP assignment with its predicted outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct DopPlan {
    /// DOP per pipeline.
    pub dops: Vec<u32>,
    /// Predicted latency/cost at those DOPs.
    pub predicted: QueryEstimate,
    /// `true` when the constraint is satisfied by the prediction.
    pub feasible: bool,
}

/// Search-effort accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Full query estimates computed.
    pub estimates: u64,
    /// Candidate DOP vectors considered.
    pub candidates: u64,
}

/// The DOP planner.
pub struct DopPlanner<'a, 'c> {
    est: &'a CostEstimator<'c>,
    /// Candidate DOP ladder (powers of two by default).
    pub candidates: Vec<u32>,
    /// Search statistics (reset per plan call).
    pub stats: SearchStats,
}

impl<'a, 'c> DopPlanner<'a, 'c> {
    /// New planner over a cost estimator with the default DOP ladder
    /// 1, 2, 4, ..., 256.
    pub fn new(est: &'a CostEstimator<'c>) -> DopPlanner<'a, 'c> {
        DopPlanner {
            est,
            candidates: (0..=8).map(|i| 1u32 << i).collect(),
            stats: SearchStats::default(),
        }
    }

    fn estimate(
        &mut self,
        plan: &PhysicalPlan,
        graph: &PipelineGraph,
        dops: &[u32],
    ) -> Result<QueryEstimate> {
        self.stats.estimates += 1;
        self.stats.candidates += 1;
        self.est.estimate(plan, graph, dops)
    }

    /// Plans DOPs with the paper's heuristic search.
    pub fn plan(
        &mut self,
        plan: &PhysicalPlan,
        graph: &PipelineGraph,
        constraint: Constraint,
    ) -> Result<DopPlan> {
        self.stats = SearchStats::default();
        let works: Vec<PipelineWork> = graph
            .pipelines
            .iter()
            .map(|p| self.est.pipeline_work(plan, p))
            .collect::<Result<Vec<_>>>()?;

        // Start from each pipeline's standalone machine-time optimum.
        let mut dops: Vec<u32> = works
            .iter()
            .map(|w| self.standalone_min_cost_dop(w))
            .collect();
        let mut current = self.estimate(plan, graph, &dops)?;

        match constraint {
            Constraint::MinCost => {}
            Constraint::LatencySla(sla) => {
                // Greedy: bump the most cost-effective pipeline until the SLA
                // holds or nothing improves latency.
                while current.latency > sla {
                    let Some((next_dops, next_est)) =
                        self.best_bump(plan, graph, &dops, &current)?
                    else {
                        break;
                    };
                    dops = next_dops;
                    current = next_est;
                }
            }
            Constraint::Budget(budget) => {
                while let Some((next_dops, next_est)) =
                    self.best_bump(plan, graph, &dops, &current)?
                {
                    if next_est.cost > budget {
                        break;
                    }
                    dops = next_dops;
                    current = next_est;
                }
            }
        }

        // Equal-finish-time trim (§3.2): within each concurrent group, lower
        // DOPs as long as neither the constraint nor overall latency regress.
        for group in graph.concurrent_groups() {
            if group.len() < 2 {
                continue;
            }
            for &pid in &group {
                let i = pid.index();
                while let Some(lower) = self.next_lower(dops[i]) {
                    let mut trial = dops.clone();
                    trial[i] = lower;
                    let est = self.estimate(plan, graph, &trial)?;
                    let ok = match constraint {
                        Constraint::LatencySla(sla) => {
                            est.latency <= sla || est.latency <= current.latency
                        }
                        Constraint::Budget(b) => est.cost <= b && est.latency <= current.latency,
                        Constraint::MinCost => est.latency <= current.latency,
                    };
                    if ok && est.cost <= current.cost {
                        dops = trial;
                        current = est;
                    } else {
                        break;
                    }
                }
            }
        }

        let feasible = match constraint {
            Constraint::LatencySla(sla) => current.latency <= sla,
            Constraint::Budget(b) => current.cost <= b,
            Constraint::MinCost => true,
        };
        Ok(DopPlan {
            dops,
            predicted: current,
            feasible,
        })
    }

    /// Exhaustive cross-product search over the candidate ladder — the
    /// baseline for E4. Exponential: use only on few-pipeline plans.
    pub fn plan_exhaustive(
        &mut self,
        plan: &PhysicalPlan,
        graph: &PipelineGraph,
        constraint: Constraint,
    ) -> Result<DopPlan> {
        self.stats = SearchStats::default();
        let p = graph.len();
        let mut best: Option<DopPlan> = None;
        let mut idx = vec![0usize; p];
        loop {
            let dops: Vec<u32> = idx.iter().map(|&i| self.candidates[i]).collect();
            let est = self.estimate(plan, graph, &dops)?;
            let feasible = match constraint {
                Constraint::LatencySla(sla) => est.latency <= sla,
                Constraint::Budget(b) => est.cost <= b,
                Constraint::MinCost => true,
            };
            let better = match &best {
                None => true,
                Some(b) => match constraint {
                    // Feasible beats infeasible; among two feasible plans the
                    // primary objective decides. Between two infeasible plans
                    // an improvement in either objective counts (the result
                    // then depends on enumeration order, not a strict
                    // lexicographic preference).
                    Constraint::LatencySla(_) | Constraint::MinCost => {
                        match (feasible, b.feasible) {
                            (true, false) => true,
                            (false, true) => false,
                            (true, true) => est.cost < b.predicted.cost,
                            (false, false) => {
                                est.cost < b.predicted.cost || est.latency < b.predicted.latency
                            }
                        }
                    }
                    Constraint::Budget(_) => match (feasible, b.feasible) {
                        (true, false) => true,
                        (false, true) => false,
                        (true, true) => est.latency < b.predicted.latency,
                        (false, false) => {
                            est.latency < b.predicted.latency || est.cost < b.predicted.cost
                        }
                    },
                },
            };
            if better {
                best = Some(DopPlan {
                    dops,
                    predicted: est,
                    feasible,
                });
            }
            // Advance the odometer.
            let mut k = 0;
            loop {
                if k == p {
                    return Ok(best.expect("at least one candidate"));
                }
                idx[k] += 1;
                if idx[k] < self.candidates.len() {
                    break;
                }
                idx[k] = 0;
                k += 1;
            }
        }
    }

    /// Standalone machine-time-optimal DOP of one pipeline: minimizes
    /// `dop × duration(dop)` over the ladder (ties go to the smaller DOP).
    pub fn standalone_min_cost_dop(&self, w: &PipelineWork) -> u32 {
        self.est.machine_time_optimal_dop(w, &self.candidates)
    }

    /// Tries every single-pipeline DOP bump; returns the one with the best
    /// latency improvement per extra dollar.
    #[allow(clippy::type_complexity)]
    fn best_bump(
        &mut self,
        plan: &PhysicalPlan,
        graph: &PipelineGraph,
        dops: &[u32],
        current: &QueryEstimate,
    ) -> Result<Option<(Vec<u32>, QueryEstimate)>> {
        let mut best: Option<(f64, Vec<u32>, QueryEstimate)> = None;
        for i in 0..dops.len() {
            let Some(next) = self.next_higher(dops[i]) else {
                continue;
            };
            let mut trial = dops.to_vec();
            trial[i] = next;
            let est = self.estimate(plan, graph, &trial)?;
            let dt = current.latency.as_secs_f64() - est.latency.as_secs_f64();
            if dt <= 0.0 {
                continue;
            }
            let dc = (est.cost - current.cost).amount().max(1e-9);
            let ratio = dt / dc;
            if best.as_ref().is_none_or(|(r, _, _)| ratio > *r) {
                best = Some((ratio, trial, est));
            }
        }
        Ok(best.map(|(_, d, e)| (d, e)))
    }

    fn next_higher(&self, d: u32) -> Option<u32> {
        self.candidates.iter().copied().find(|&c| c > d)
    }

    fn next_lower(&self, d: u32) -> Option<u32> {
        self.candidates.iter().rev().copied().find(|&c| c < d)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ci_catalog::{Catalog, ErrorInjector};
    use ci_cost::EstimatorConfig;
    use ci_plan::{bind, JoinTree, PipelineGraph};
    use ci_sql::parse;
    use ci_storage::batch::RecordBatch;
    use ci_storage::column::ColumnData;
    use ci_storage::schema::{Field, Schema};
    use ci_storage::table::TableBuilder;
    use ci_storage::value::DataType;
    use ci_types::TableId;

    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Arc::new(Schema::of(vec![
            Field::new("id", DataType::Int64),
            Field::new("grp", DataType::Int64),
            Field::new("val", DataType::Float64),
        ]));
        let n = 500_000i64;
        let mut b = TableBuilder::new(TableId::new(0), "facts", schema.clone(), 16_384).unwrap();
        b.append(
            RecordBatch::new(
                schema,
                vec![
                    ColumnData::Int64((0..n).collect()),
                    ColumnData::Int64((0..n).map(|i| i % 500).collect()),
                    ColumnData::Float64((0..n).map(|i| (i % 1000) as f64).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.register(b.finish().unwrap());
        let dim = Arc::new(Schema::of(vec![
            Field::new("d_id", DataType::Int64),
            Field::new("d_x", DataType::Int64),
        ]));
        let mut b = TableBuilder::new(TableId::new(1), "dims", dim.clone(), 256).unwrap();
        b.append(
            RecordBatch::new(
                dim,
                vec![
                    ColumnData::Int64((0..500).collect()),
                    ColumnData::Int64((0..500).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.register(b.finish().unwrap());
        c
    }

    fn setup(cat: &Catalog, sql: &str) -> (ci_plan::PhysicalPlan, PipelineGraph) {
        let b = bind(&parse(sql).unwrap(), cat).unwrap();
        let tree = JoinTree::left_deep(&(0..b.relations.len()).collect::<Vec<_>>());
        let plan =
            ci_plan::physical::build_plan(&b, &tree, cat, &mut ErrorInjector::oracle()).unwrap();
        let graph = PipelineGraph::decompose(&plan).unwrap();
        (plan, graph)
    }

    #[test]
    fn tighter_sla_costs_more() {
        let cat = catalog();
        let (plan, graph) = setup(&cat, "SELECT grp, SUM(val) FROM facts GROUP BY grp");
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let mut planner = DopPlanner::new(&est);
        let loose = planner
            .plan(
                &plan,
                &graph,
                Constraint::LatencySla(SimDuration::from_secs(60)),
            )
            .unwrap();
        let tight = planner
            .plan(
                &plan,
                &graph,
                Constraint::LatencySla(SimDuration::from_millis(2200)),
            )
            .unwrap();
        assert!(loose.feasible);
        assert!(tight.predicted.latency <= loose.predicted.latency);
        assert!(
            tight.predicted.cost.amount() >= loose.predicted.cost.amount(),
            "tight {} vs loose {}",
            tight.predicted.cost,
            loose.predicted.cost
        );
    }

    #[test]
    fn bigger_budget_buys_latency() {
        let cat = catalog();
        let (plan, graph) = setup(&cat, "SELECT grp, SUM(val) FROM facts GROUP BY grp");
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let mut planner = DopPlanner::new(&est);
        let small = planner
            .plan(&plan, &graph, Constraint::Budget(Dollars::new(0.003)))
            .unwrap();
        let big = planner
            .plan(&plan, &graph, Constraint::Budget(Dollars::new(0.1)))
            .unwrap();
        assert!(big.predicted.latency <= small.predicted.latency);
        assert!(small.predicted.cost <= Dollars::new(0.003) || !small.feasible);
    }

    #[test]
    fn infeasible_sla_flagged() {
        let cat = catalog();
        let (plan, graph) = setup(&cat, "SELECT grp, SUM(val) FROM facts GROUP BY grp");
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let mut planner = DopPlanner::new(&est);
        let impossible = planner
            .plan(
                &plan,
                &graph,
                Constraint::LatencySla(SimDuration::from_micros(1)),
            )
            .unwrap();
        assert!(!impossible.feasible);
    }

    #[test]
    fn heuristic_close_to_exhaustive_with_fewer_estimates() {
        let cat = catalog();
        let (plan, graph) = setup(
            &cat,
            "SELECT d_x, COUNT(*) FROM facts f JOIN dims d ON f.grp = d.d_id GROUP BY d_x",
        );
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let sla = Constraint::LatencySla(SimDuration::from_secs(3));

        let mut planner = DopPlanner::new(&est);
        // Shrink the ladder so the exhaustive baseline stays tractable.
        planner.candidates = vec![1, 4, 16, 64];
        let heuristic = planner.plan(&plan, &graph, sla).unwrap();
        let h_stats = planner.stats;

        let exhaustive = planner.plan_exhaustive(&plan, &graph, sla).unwrap();
        let e_stats = planner.stats;

        assert!(
            h_stats.estimates < e_stats.estimates / 2,
            "heuristic should search far less: {h_stats:?} vs {e_stats:?}"
        );
        if heuristic.feasible && exhaustive.feasible {
            let gap =
                heuristic.predicted.cost.amount() / exhaustive.predicted.cost.amount().max(1e-12);
            assert!(gap < 1.6, "cost gap vs exhaustive was {gap}");
        }
    }

    #[test]
    fn standalone_optimum_is_interior() {
        let cat = catalog();
        let (plan, graph) = setup(&cat, "SELECT grp, SUM(val) FROM facts GROUP BY grp");
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let planner = DopPlanner::new(&est);
        let w = est.pipeline_work(&plan, &graph.pipelines[0]).unwrap();
        let d = planner.standalone_min_cost_dop(&w);
        // Machine-time optimum for a parallelizable pipeline is >= 1, and
        // far below the ladder max (overheads dominate at 256).
        assert!(d < 256, "standalone optimum {d}");
    }
}
