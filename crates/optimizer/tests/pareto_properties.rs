//! Property tests on the Pareto machinery and the DOP planner's
//! constraint discipline.

use ci_optimizer::pareto::{cost_inflation, pareto_frontier, ParetoPoint};
use ci_types::money::Dollars;
use ci_types::SimDuration;
use proptest::prelude::*;

fn points_strategy() -> impl Strategy<Value = Vec<ParetoPoint<u32>>> {
    proptest::collection::vec((1u64..100_000, 1u64..100_000), 1..120).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (lat_us, cents))| ParetoPoint {
                latency: SimDuration::from_micros(lat_us),
                cost: Dollars::new(cents as f64 / 100.0),
                config: i as u32,
            })
            .collect()
    })
}

proptest! {
    /// The frontier is dominance-free, sorted, and every input point is
    /// dominated-or-equal by some frontier point.
    #[test]
    fn frontier_invariants(points in points_strategy()) {
        let f = pareto_frontier(&points);
        prop_assert!(!f.is_empty());
        // Sorted by latency strictly ascending, cost strictly descending.
        for w in f.windows(2) {
            prop_assert!(w[0].latency < w[1].latency);
            prop_assert!(w[0].cost.amount() > w[1].cost.amount());
        }
        // Dominance-free.
        for a in &f {
            for b in &f {
                if a.config != b.config {
                    prop_assert!(!a.dominates(b));
                }
            }
        }
        // Coverage: every point is matched-or-beaten by a frontier point.
        for p in &points {
            let covered = f.iter().any(|q| {
                q.latency <= p.latency && q.cost.amount() <= p.cost.amount() + 1e-12
            });
            prop_assert!(covered, "point {:?} not covered", p.config);
        }
        // Frontier points have inflation 1 against their own frontier.
        for p in &f {
            let infl = cost_inflation(&f, p);
            prop_assert!((infl - 1.0).abs() < 1e-9, "inflation {infl}");
        }
    }

    /// Inflation is monotone: strictly worse points never report lower
    /// inflation than their dominating point.
    #[test]
    fn inflation_monotone(points in points_strategy(), extra_cost in 1u64..1000) {
        let f = pareto_frontier(&points);
        for p in &points {
            let worse = ParetoPoint {
                latency: p.latency,
                cost: p.cost + Dollars::new(extra_cost as f64 / 100.0),
                config: p.config,
            };
            prop_assert!(
                cost_inflation(&f, &worse) >= cost_inflation(&f, p) - 1e-12
            );
        }
    }
}
