//! The cost estimator — the referee at the center of the architecture
//! (Figure 3, §3.1).
//!
//! Given a physical plan fragment, a DOP assignment, and calibrated hardware
//! parameters, the estimator predicts **execution time, total machine time,
//! and dollars**. It is built exactly as the paper prescribes:
//!
//! * **per-operator scalability models** — simple analytic throughput
//!   formulas over the shared [`ci_cloud::work::WorkModels`] calibration
//!   ([`estimator`]);
//! * **a query-level simulator** — schedules the pipeline DAG (concurrency,
//!   blocking on dependencies, state pinning) to produce end-to-end latency
//!   and machine-time ([`estimator::CostEstimator::estimate`]);
//! * **pre-trained regression corrections** for the operators dominated by
//!   data exchange, fitted on synthetic calibration workloads
//!   ([`calibration`]) — deliberately linear models, never deep nets, so
//!   every prediction stays explainable.
//!
//! The estimator is a pure function of its inputs and is cheap (micro-
//! seconds per call — measured in `ci-bench`), because the optimizer and the
//! what-if service invoke it thousands of times per query (§3.1's
//! "lightweight" requirement).

pub mod calibration;
pub mod estimator;

pub use calibration::{Calibration, MeasuredRates};
/// Re-exported so estimator clients can configure the failure tax without
/// depending on `ci-cloud` directly.
pub use ci_cloud::faults::FaultProfile;
/// Re-exported so estimator clients can configure tier pricing and cache
/// hit models without depending on `ci-cloud` directly.
pub use ci_cloud::pricing::{TierPricing, TierSpec};
pub use ci_cloud::tiercache::{CacheCounters, TierLevel};
pub use estimator::{CostEstimator, EstimatorConfig, PipelineWork, QueryEstimate, TierCostModel};
