//! Per-operator scalability models and the query-level simulator.

use std::collections::BTreeSet;

use ci_catalog::Catalog;
use ci_cloud::faults::FaultProfile;
use ci_cloud::pricing::TierPricing;
use ci_cloud::tiercache::CacheCounters;
use ci_cloud::work::WorkModels;
use ci_plan::physical::{PhysicalOp, PhysicalPlan};
use ci_plan::pipeline::{Pipeline, PipelineGraph, SinkKind};
use ci_types::money::{Dollars, DollarsPerSecond};
use ci_types::{CiError, Result, SimDuration, SimTime, TableId};

use crate::calibration::{Calibration, MeasuredRates};

/// How the estimator prices scans against a cache hierarchy: the tier menu
/// plus expected hit rates (global, observed from a prior run's counters),
/// with per-table pin overrides for what-if analyses ("if `lineitem` were
/// pinned in SSD, every one of its fetches is served at SSD latency").
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TierCostModel {
    /// Per-tier capacity/latency/price menu.
    pub pricing: TierPricing,
    /// Expected fraction of scan fetches served from the memory tier.
    pub mem_hit_rate: f64,
    /// Expected fraction served from the local-SSD tier.
    pub ssd_hit_rate: f64,
    /// Tables assumed fully memory-resident (hit rate 1.0 regardless of the
    /// global rates).
    pub pinned_mem: BTreeSet<TableId>,
    /// Tables assumed fully SSD-resident.
    pub pinned_ssd: BTreeSet<TableId>,
}

impl TierCostModel {
    /// A model with no expected hits: every fetch goes to the object store
    /// (the cold-cache baseline).
    pub fn cold(pricing: TierPricing) -> TierCostModel {
        TierCostModel {
            pricing,
            ..TierCostModel::default()
        }
    }

    /// Seeds the global hit rates from counters a real run observed.
    pub fn observed(pricing: TierPricing, c: &CacheCounters) -> TierCostModel {
        let total = (c.mem_hits + c.ssd_hits + c.misses) as f64;
        let (mem, ssd) = if total > 0.0 {
            (c.mem_hits as f64 / total, c.ssd_hits as f64 / total)
        } else {
            (0.0, 0.0)
        };
        TierCostModel {
            pricing,
            mem_hit_rate: mem,
            ssd_hit_rate: ssd,
            ..TierCostModel::default()
        }
    }

    /// The (mem, ssd) fractions to price a scan of `table` at: pins
    /// override the global rates.
    fn hit_fractions(&self, table: Option<TableId>) -> (f64, f64) {
        match table {
            Some(t) if self.pinned_mem.contains(&t) => (1.0, 0.0),
            Some(t) if self.pinned_ssd.contains(&t) => (0.0, 1.0),
            _ => {
                let mem = self.mem_hit_rate.clamp(0.0, 1.0);
                let ssd = self.ssd_hit_rate.clamp(0.0, 1.0 - mem);
                (mem, ssd)
            }
        }
    }
}

/// Estimator configuration (mirrors the executor's scheduling parameters so
/// predictions and measurements share assumptions).
#[derive(Debug, Clone)]
pub struct EstimatorConfig {
    /// Calibrated hardware/network/storage models.
    pub models: WorkModels,
    /// Per-node billing rate.
    pub rate: DollarsPerSecond,
    /// Cluster create/resize latency.
    pub resize_latency: SimDuration,
    /// Morsel split size (for overhead estimation).
    pub morsel_rows: usize,
    /// Fault rates of the priced tier, if any. When set, every pipeline
    /// duration carries a *failure tax*: the expected recovery time of
    /// retries, throttles, stragglers/hedges, and preemption re-runs, in
    /// the same taxonomy the engine bills (`ci_cloud::faults`). This is
    /// what lets the what-if service price "cheaper but flakier" against
    /// "pricier but reliable" tiers. `None` prices a fault-free tier.
    pub fault_profile: Option<FaultProfile>,
    /// Cache-hierarchy pricing, if the engine runs one. When set, scan
    /// fetch time blends tier service times by expected hit rate (pinned
    /// tables hit their tier with certainty), matching the engine's
    /// tier-aware fetch billing. `None` prices every fetch at object-store
    /// latency/bandwidth.
    pub tiers: Option<TierCostModel>,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            models: WorkModels::standard(),
            rate: DollarsPerSecond::per_hour(2.0),
            resize_latency: SimDuration::from_millis(500),
            morsel_rows: 65_536,
            fault_profile: None,
            tiers: None,
        }
    }
}

/// The work profile of one pipeline: every term is a named, explainable
/// quantity a database engineer can check by hand (§3.1 explainability).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineWork {
    /// Object-store bytes the source must fetch — *encoded* page sizes, the
    /// bytes a GET actually transfers.
    pub fetch_bytes: f64,
    /// Number of GET requests (micro-partitions).
    pub fetch_objects: f64,
    /// Bytes decoded from columnar format — the *decoded* payload the CPU
    /// produces (≥ `fetch_bytes` on compressible data).
    pub decode_bytes: f64,
    /// Rows through filters/projections (and scan-embedded filters).
    pub filter_rows: f64,
    /// Rows hashed for exchanges.
    pub exchange_rows: f64,
    /// Bytes pushed through exchanges in the *wire format*: per-row encoded
    /// widths from catalog page statistics plus one-time dictionary
    /// transfers (dict columns ship bit-packed ids, not strings).
    pub exchange_bytes: f64,
    /// Wire-format bytes gathered to a single node.
    pub gather_bytes: f64,
    /// Rows probed into hash tables.
    pub probe_rows: f64,
    /// Rows materialized out of probes.
    pub probe_out_rows: f64,
    /// Rows inserted into a join build (sink).
    pub build_rows: f64,
    /// Rows folded into aggregation state (sink).
    pub agg_rows: f64,
    /// Group count finalized by an aggregate sink.
    pub agg_groups: f64,
    /// Rows sorted by a sort sink.
    pub sort_rows: f64,
    /// Rows copied into a sort buffer / result sink.
    pub sink_copy_rows: f64,
    /// Estimated morsel count.
    pub morsels: f64,
    /// Estimated source rows (post scan-filter).
    pub source_rows: f64,
    /// The scanned table, when the source is a scan — what per-table cache
    /// pins in [`TierCostModel`] key on.
    pub scan_table: Option<TableId>,
}

/// An end-to-end query estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEstimate {
    /// Predicted query latency.
    pub latency: SimDuration,
    /// Predicted total machine time (billing basis, §3.1).
    pub machine_time: SimDuration,
    /// Predicted dollars.
    pub cost: Dollars,
    /// Per-pipeline (start, finish, release) schedule.
    pub spans: Vec<(SimTime, SimTime, SimTime)>,
}

/// The cost estimator.
#[derive(Debug, Clone)]
pub struct CostEstimator<'a> {
    catalog: &'a Catalog,
    /// Configuration (public so experiments can sweep hardware what-ifs).
    pub config: EstimatorConfig,
    /// Optional regression correction (§3.1 "pre-trained regression models").
    pub calibration: Option<Calibration>,
}

impl<'a> CostEstimator<'a> {
    /// New estimator over a catalog.
    pub fn new(catalog: &'a Catalog, config: EstimatorConfig) -> CostEstimator<'a> {
        CostEstimator {
            catalog,
            config,
            calibration: None,
        }
    }

    /// Attaches a fitted calibration.
    pub fn with_calibration(mut self, c: Calibration) -> CostEstimator<'a> {
        self.calibration = Some(c);
        self
    }

    /// Re-seeds the hardware calibration from rates the parallel runtime
    /// actually measured ([`MeasuredRates`]): every operator class with
    /// samples replaces its analytic `*_per_sec_per_core` rate, the rest
    /// keep the standing calibration. Predictions then track the machine
    /// the engine really ran on rather than the shipped defaults.
    pub fn with_measured_rates(mut self, rates: &MeasuredRates) -> CostEstimator<'a> {
        self.config.models = rates.seed(&self.config.models);
        self
    }

    /// Computes the work profile of one pipeline from plan annotations.
    pub fn pipeline_work(&self, plan: &PhysicalPlan, p: &Pipeline) -> Result<PipelineWork> {
        let mut w = PipelineWork::default();
        let src = &plan.nodes[p.source()];

        // Source terms.
        match &src.op {
            PhysicalOp::Scan {
                table_id,
                kept_parts,
                filter,
                ..
            } => {
                let entry = self.catalog.get_by_id(*table_id)?;
                let mut encoded = 0f64;
                let mut decoded = 0f64;
                let mut raw_rows = 0f64;
                for &pi in kept_parts {
                    let part = &entry.table.partitions[pi];
                    encoded += part.encoded_bytes as f64;
                    decoded += part.stored_bytes as f64;
                    raw_rows += part.rows() as f64;
                }
                w.fetch_bytes = encoded;
                w.fetch_objects = kept_parts.len() as f64;
                w.decode_bytes = decoded;
                if filter.is_some() {
                    w.filter_rows += raw_rows;
                }
                w.morsels = kept_parts.len() as f64;
                w.source_rows = src.est_rows;
                w.scan_table = Some(*table_id);
            }
            PhysicalOp::HashAgg { .. } | PhysicalOp::Sort { .. } => {
                w.source_rows = src.est_rows;
                w.morsels = (src.est_rows / self.config.morsel_rows as f64)
                    .ceil()
                    .max(1.0);
            }
            other => {
                return Err(CiError::Plan(format!(
                    "pipeline source must be scan or breaker, got {}",
                    other.name()
                )))
            }
        }

        // Streaming chain: input to node k is the est output of node k-1.
        let mut rows = w.source_rows;
        for &n_idx in &p.nodes[1..] {
            let node = &plan.nodes[n_idx];
            match &node.op {
                PhysicalOp::Filter { .. } | PhysicalOp::Project { .. } => {
                    w.filter_rows += rows;
                }
                PhysicalOp::ExchangeHash { .. } => {
                    w.exchange_rows += rows;
                    w.exchange_bytes +=
                        rows * plan.encoded_row_width(n_idx) + plan.dict_wire_bytes(n_idx);
                }
                PhysicalOp::Gather => {
                    w.gather_bytes +=
                        rows * plan.encoded_row_width(n_idx) + plan.dict_wire_bytes(n_idx);
                }
                PhysicalOp::HashJoin { .. } => {
                    w.probe_rows += rows;
                    w.probe_out_rows += node.est_rows;
                }
                PhysicalOp::Limit { .. } => {}
                other => {
                    return Err(CiError::Plan(format!(
                        "{} cannot appear mid-pipeline",
                        other.name()
                    )))
                }
            }
            rows = node.est_rows;
        }

        // Sink terms. `rows` is now the stream reaching the sink.
        match p.sink {
            SinkKind::JoinBuild { .. } => w.build_rows = rows,
            SinkKind::Aggregate { agg } => {
                w.agg_rows = rows;
                w.agg_groups = plan.nodes[agg].est_rows;
            }
            SinkKind::Sort { .. } => {
                w.sort_rows = rows;
                w.sink_copy_rows = rows;
            }
            SinkKind::Result => {}
        }
        Ok(w)
    }

    /// Predicted wall-clock duration of a pipeline at a given DOP —
    /// the per-operator scalability models composed over the chain.
    ///
    /// The parallel work terms divide by `dop`; serial terms (gather
    /// receive, sort merge span, per-node startup) do not. Morsel-ceiling
    /// effects are deliberately not modeled (a known, explainable error
    /// source the run-time monitor absorbs; calibration shrinks it). With
    /// [`EstimatorConfig::fault_profile`] set, a failure-tax term adds the
    /// expected recovery time of the tier's fault rates.
    pub fn pipeline_duration(&self, w: &PipelineWork, dop: u32) -> SimDuration {
        let m = &self.config.models;
        let d = dop.max(1);
        let object_secs =
            w.fetch_objects * m.store.request_latency_secs + w.fetch_bytes / m.store.per_node_bw(d);
        // Tier-aware fetch: blend the per-tier service times by expected
        // hit rate (pins hit with certainty), mirroring the engine's
        // tier-aware billing of scan fetches.
        let fetch_secs = match &self.config.tiers {
            None => object_secs,
            Some(t) => {
                let (mem_f, ssd_f) = t.hit_fractions(w.scan_table);
                let obj_f = (1.0 - mem_f - ssd_f).max(0.0);
                let mem_secs = w.fetch_objects * t.pricing.mem.request_latency_secs
                    + w.fetch_bytes / t.pricing.mem.bytes_per_sec;
                let ssd_secs = w.fetch_objects * t.pricing.ssd.request_latency_secs
                    + w.fetch_bytes / t.pricing.ssd.bytes_per_sec;
                obj_f * object_secs + mem_f * mem_secs + ssd_f * ssd_secs
            }
        };
        let compute_secs = m.scan_decode_secs(w.decode_bytes)
            + m.filter_secs(w.filter_rows)
            + m.exchange_cpu_secs(w.exchange_rows)
            + m.exchange_wire_secs(w.exchange_bytes, d)
            + m.probe_secs(w.probe_rows)
            + m.filter_secs(w.probe_out_rows)
            + m.build_secs(w.build_rows)
            + m.agg_update_secs(w.agg_rows)
            + m.filter_secs(w.sink_copy_rows)
            + w.morsels * m.morsel_overhead_secs();
        // Failure tax: expected recovery seconds under the priced tier's
        // fault profile, term-for-term with the engine's billing —
        // re-billed fetches + backoff, throttle penalties, straggler excess
        // (hedged past the threshold), and preemption re-runs (expected
        // half-morsel wasted plus the re-fetch).
        let failure_secs = match &self.config.fault_profile {
            None => 0.0,
            Some(fp) => {
                fetch_secs * fp.expected_fetch_overhead_factor()
                    + w.morsels * (fp.expected_backoff_secs() + fp.expected_throttle_secs())
                    + compute_secs * fp.expected_straggler_overhead_factor()
                    + (fetch_secs + compute_secs) * fp.expected_loss_overhead_factor()
                    + fetch_secs * fp.worker_loss_rate.clamp(0.0, 1.0)
            }
        };
        let parallel_secs = fetch_secs + compute_secs + failure_secs;
        let mut serial_secs = m.pipeline_startup_secs()
            + m.gather_secs(w.gather_bytes, d)
            + m.sort_finalize_secs(w.sort_rows, d)
            + m.filter_secs(w.agg_groups);
        if w.exchange_bytes > 0.0 || w.gather_bytes > 0.0 {
            serial_secs += m.exchange_startup_secs(d);
        }
        // Morsel granularity floor: a pipeline cannot run faster than its
        // largest indivisible work unit; approximate by the average morsel.
        let floor = if w.morsels >= 1.0 {
            parallel_secs / w.morsels
        } else {
            0.0
        };
        let raw = (parallel_secs / d as f64).max(floor) + serial_secs;
        let corrected = match &self.calibration {
            Some(c) => c.correct(raw, d),
            None => raw,
        };
        SimDuration::from_secs_f64(corrected)
    }

    /// Runs the query-level simulator: schedules the pipeline DAG at the
    /// given DOPs and predicts latency, machine time, and dollars.
    ///
    /// Mirrors the engine's schedule: a pipeline starts when all
    /// dependencies finish, nodes lease from start, become usable after the
    /// resize latency, and stay leased until the consumer of the pipeline's
    /// state finishes (state pinning).
    pub fn estimate(
        &self,
        plan: &PhysicalPlan,
        graph: &PipelineGraph,
        dops: &[u32],
    ) -> Result<QueryEstimate> {
        if dops.len() != graph.len() {
            return Err(CiError::Plan(format!(
                "{} DOPs for {} pipelines",
                dops.len(),
                graph.len()
            )));
        }
        let mut finishes = vec![SimTime::ZERO; graph.len()];
        for p in &graph.pipelines {
            let start = p
                .deps
                .iter()
                .map(|d| finishes[d.index()])
                .max()
                .unwrap_or(SimTime::ZERO);
            let w = self.pipeline_work(plan, p)?;
            let dur = self.pipeline_duration(&w, dops[p.id.index()]);
            finishes[p.id.index()] = start + self.config.resize_latency + dur;
        }
        // Release times: state pinned until the consumer finishes.
        let mut spans = Vec::with_capacity(graph.len());
        let mut machine_time = SimDuration::ZERO;
        for p in &graph.pipelines {
            let start = p
                .deps
                .iter()
                .map(|d| finishes[d.index()])
                .max()
                .unwrap_or(SimTime::ZERO);
            let finish = finishes[p.id.index()];
            let release = match p.sink {
                SinkKind::Result => finish,
                SinkKind::JoinBuild { join } => graph
                    .pipelines
                    .iter()
                    .find(|q| q.id != p.id && q.nodes.contains(&join))
                    .map(|q| finishes[q.id.index()])
                    .unwrap_or(finish),
                SinkKind::Aggregate { agg } => graph
                    .pipelines
                    .iter()
                    .find(|q| q.source() == agg)
                    .map(|q| finishes[q.id.index()])
                    .unwrap_or(finish),
                SinkKind::Sort { sort } => graph
                    .pipelines
                    .iter()
                    .find(|q| q.source() == sort)
                    .map(|q| finishes[q.id.index()])
                    .unwrap_or(finish),
            };
            machine_time += release.saturating_since(start) * dops[p.id.index()].max(1) as u64;
            spans.push((start, finish, release));
        }
        let latency = finishes[graph.result_pipeline().id.index()].since(SimTime::ZERO);
        Ok(QueryEstimate {
            latency,
            machine_time,
            cost: self.config.rate.bill(machine_time),
            spans,
        })
    }

    /// The machine-time-optimal DOP of a standalone pipeline over a
    /// candidate ladder: minimizes `dop × duration(dop)` (ties to smaller).
    pub fn machine_time_optimal_dop(&self, w: &PipelineWork, ladder: &[u32]) -> u32 {
        let mut best = (ladder.first().copied().unwrap_or(1), f64::INFINITY);
        for &d in ladder {
            let mt = self.pipeline_duration(w, d).as_secs_f64() * d as f64;
            if mt < best.1 * 0.999 {
                best = (d, mt);
            }
        }
        best.0
    }

    /// The throughput function `T(dop)` of a pipeline in source rows/second
    /// — the quantity the equal-finish-time heuristic equates (§3.2:
    /// `C1/T1(DOP1) ≈ C2/T2(DOP2)`).
    pub fn pipeline_throughput(&self, w: &PipelineWork, dop: u32) -> f64 {
        let d = self.pipeline_duration(w, dop).as_secs_f64();
        if d <= 0.0 {
            f64::INFINITY
        } else {
            w.source_rows.max(1.0) / d
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ci_catalog::ErrorInjector;
    use ci_plan::{bind, JoinTree};
    use ci_sql::parse;
    use ci_storage::batch::RecordBatch;
    use ci_storage::column::ColumnData;
    use ci_storage::schema::{Field, Schema};
    use ci_storage::table::TableBuilder;
    use ci_storage::value::DataType;
    use ci_types::TableId;

    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Arc::new(Schema::of(vec![
            Field::new("id", DataType::Int64),
            Field::new("grp", DataType::Int64),
            Field::new("val", DataType::Float64),
        ]));
        let n = 200_000i64;
        let mut b = TableBuilder::new(TableId::new(0), "facts", schema.clone(), 8192).unwrap();
        b.append(
            RecordBatch::new(
                schema,
                vec![
                    ColumnData::Int64((0..n).collect()),
                    ColumnData::Int64((0..n).map(|i| i % 1000).collect()),
                    ColumnData::Float64((0..n).map(|i| (i % 100) as f64).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.register(b.finish().unwrap());
        let dim = Arc::new(Schema::of(vec![
            Field::new("d_id", DataType::Int64),
            Field::new("d_name", DataType::Utf8),
        ]));
        let mut b = TableBuilder::new(TableId::new(1), "dims", dim.clone(), 512).unwrap();
        b.append(
            RecordBatch::new(
                dim,
                vec![
                    ColumnData::Int64((0..1000).collect()),
                    ColumnData::Utf8((0..1000).map(|i| format!("d{i}")).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.register(b.finish().unwrap());
        c
    }

    fn planned(cat: &Catalog, sql: &str) -> (PhysicalPlan, PipelineGraph) {
        let b = bind(&parse(sql).unwrap(), cat).unwrap();
        let tree = JoinTree::left_deep(&(0..b.relations.len()).collect::<Vec<_>>());
        let plan =
            ci_plan::physical::build_plan(&b, &tree, cat, &mut ErrorInjector::oracle()).unwrap();
        let graph = PipelineGraph::decompose(&plan).unwrap();
        (plan, graph)
    }

    #[test]
    fn scan_duration_scales_inverse_with_dop() {
        let cat = catalog();
        let (plan, graph) = planned(&cat, "SELECT id FROM facts WHERE val < 50.0");
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let w = est.pipeline_work(&plan, &graph.pipelines[0]).unwrap();
        let d1 = est.pipeline_duration(&w, 1).as_secs_f64();
        let d8 = est.pipeline_duration(&w, 8).as_secs_f64();
        let speedup = d1 / d8;
        assert!(
            (5.0..=8.5).contains(&speedup),
            "scan speedup at 8 nodes was {speedup}"
        );
    }

    #[test]
    fn int_codecs_shrink_fetch_and_exchange_charges() {
        // `facts` has a sorted id column (Delta pages) and a small-domain
        // grp column (FoR pages): the scan's fetch term charges encoded
        // bytes well under the decoded payload, and the group-by exchange
        // charges the encoded per-row width, not 8 bytes per int.
        let cat = catalog();
        let est = CostEstimator::new(&cat, EstimatorConfig::default());

        let (plan, graph) = planned(&cat, "SELECT id FROM facts");
        let w = est.pipeline_work(&plan, &graph.pipelines[0]).unwrap();
        assert!(w.fetch_bytes > 0.0);
        assert!(
            w.fetch_bytes * 2.0 < w.decode_bytes,
            "encoded fetch {} must be under half the decoded payload {}",
            w.fetch_bytes,
            w.decode_bytes
        );

        let (plan, graph) = planned(&cat, "SELECT grp, COUNT(*) FROM facts GROUP BY grp");
        let w = est.pipeline_work(&plan, &graph.pipelines[0]).unwrap();
        assert!(w.exchange_rows > 0.0 && w.exchange_bytes > 0.0);
        let exch = plan
            .nodes
            .iter()
            .position(|n| matches!(n.op, PhysicalOp::ExchangeHash { .. }))
            .expect("group-by plans an exchange");
        assert!(
            plan.encoded_row_width(exch) * 2.0 < plan.row_width(exch),
            "int slots must exchange at encoded width: {} vs decoded {}",
            plan.encoded_row_width(exch),
            plan.row_width(exch)
        );
        let charged = w.exchange_rows * plan.encoded_row_width(exch) + plan.dict_wire_bytes(exch);
        assert!(
            (w.exchange_bytes - charged).abs() < 1.0,
            "exchange charge {} must follow the encoded widths ({charged})",
            w.exchange_bytes
        );
    }

    #[test]
    fn exchange_heavy_pipeline_has_a_knee() {
        let cat = catalog();
        let (plan, graph) = planned(&cat, "SELECT grp, COUNT(*) FROM facts GROUP BY grp");
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let w = est.pipeline_work(&plan, &graph.pipelines[0]).unwrap();
        assert!(w.exchange_bytes > 0.0, "agg input is exchanged");
        let mut best = (1u32, f64::INFINITY);
        for d in [1u32, 2, 4, 8, 16, 32, 64, 128, 256] {
            let t = est.pipeline_duration(&w, d).as_secs_f64();
            if t < best.1 {
                best = (d, t);
            }
        }
        // Past some DOP, duration degrades again: exchange connection
        // fan-out grows with d while the divisible work has run out.
        let t_big = est.pipeline_duration(&w, 2048).as_secs_f64();
        assert!(
            t_big > best.1,
            "duration at 2048 ({t_big}) should exceed optimum {} at d={}",
            best.1,
            best.0
        );
        assert!(best.0 > 1, "optimum should not be a single node");
    }

    #[test]
    fn estimate_respects_dag_blocking() {
        let cat = catalog();
        let (plan, graph) = planned(
            &cat,
            "SELECT d_name, SUM(val) FROM facts f JOIN dims d ON f.grp = d.d_id \
             GROUP BY d_name",
        );
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let dops = vec![4; graph.len()];
        let q = est.estimate(&plan, &graph, &dops).unwrap();
        // Probe starts after build finishes.
        let build_span = q.spans[0];
        let probe_span = q.spans[1];
        assert!(probe_span.0 >= build_span.1);
        // Build released when probe finishes (state pinning).
        assert_eq!(build_span.2, probe_span.1);
        assert!(q.latency.as_secs_f64() > 0.0);
        assert!(q.cost.amount() > 0.0);
    }

    #[test]
    fn machine_time_counts_pinned_spans() {
        let cat = catalog();
        let (plan, graph) = planned(&cat, "SELECT id FROM facts f JOIN dims d ON f.grp = d.d_id");
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let q = est.estimate(&plan, &graph, &vec![2; graph.len()]).unwrap();
        // Machine time > 2 * latency would mean both pipelines fully overlap;
        // at least it must exceed the result pipeline's own span * dop.
        let result_span = q.spans.last().unwrap();
        let own = result_span.2.saturating_since(result_span.0) * 2u64;
        assert!(q.machine_time >= own);
    }

    #[test]
    fn more_dops_cost_more_for_fixed_work() {
        let cat = catalog();
        let (plan, graph) = planned(&cat, "SELECT COUNT(*) FROM facts");
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let cheap = est.estimate(&plan, &graph, &vec![1; graph.len()]).unwrap();
        let fast = est.estimate(&plan, &graph, &vec![32; graph.len()]).unwrap();
        assert!(fast.latency < cheap.latency);
        assert!(fast.cost.amount() > cheap.cost.amount());
    }

    #[test]
    fn throughput_is_monotone_then_saturates() {
        let cat = catalog();
        let (plan, graph) = planned(&cat, "SELECT grp, COUNT(*) FROM facts GROUP BY grp");
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let w = est.pipeline_work(&plan, &graph.pipelines[0]).unwrap();
        let t1 = est.pipeline_throughput(&w, 1);
        let t8 = est.pipeline_throughput(&w, 8);
        assert!(t8 > t1);
    }

    #[test]
    fn measured_rates_move_the_estimate() {
        use crate::calibration::MeasuredRates;
        let cat = catalog();
        let (plan, graph) = planned(&cat, "SELECT id FROM facts WHERE val < 50.0");
        let dops = vec![2u32; graph.len()];
        let baseline = CostEstimator::new(&cat, EstimatorConfig::default())
            .estimate(&plan, &graph, &dops)
            .unwrap();

        // A machine measured 10x slower at filtering stretches the estimate…
        let mut slow = MeasuredRates::new();
        slow.record("filter", 12_000_000.0, 1_000_000_000);
        let q_slow = CostEstimator::new(&cat, EstimatorConfig::default())
            .with_measured_rates(&slow)
            .estimate(&plan, &graph, &dops)
            .unwrap();
        assert!(q_slow.latency > baseline.latency);
        assert!(q_slow.cost.amount() > baseline.cost.amount());

        // …and one measured 10x faster shrinks it. The estimate is pinned to
        // the measured rates, not the shipped defaults.
        let mut fast = MeasuredRates::new();
        fast.record("filter", 1_200_000_000.0, 1_000_000_000);
        let q_fast = CostEstimator::new(&cat, EstimatorConfig::default())
            .with_measured_rates(&fast)
            .estimate(&plan, &graph, &dops)
            .unwrap();
        assert!(q_fast.latency < baseline.latency);

        // Rates for classes this plan never exercises leave it unchanged.
        let mut idle = MeasuredRates::new();
        idle.record("sort", 1_000.0, 1_000_000_000);
        let q_idle = CostEstimator::new(&cat, EstimatorConfig::default())
            .with_measured_rates(&idle)
            .estimate(&plan, &graph, &dops)
            .unwrap();
        assert_eq!(q_idle.latency, baseline.latency);
    }

    #[test]
    fn failure_tax_prices_flaky_tiers_higher() {
        use ci_cloud::faults::FaultProfile;
        let cat = catalog();
        let (plan, graph) = planned(&cat, "SELECT grp, COUNT(*) FROM facts GROUP BY grp");
        let dops = vec![2u32; graph.len()];
        let priced = |profile: Option<FaultProfile>| {
            let cfg = EstimatorConfig {
                fault_profile: profile,
                ..EstimatorConfig::default()
            };
            CostEstimator::new(&cat, cfg)
                .estimate(&plan, &graph, &dops)
                .unwrap()
        };

        let reliable = priced(None);
        // A quiet profile is a no-op tax: same price as no profile at all.
        let quiet = priced(Some(FaultProfile::none()));
        assert_eq!(quiet.latency, reliable.latency);
        assert_eq!(quiet.cost, reliable.cost);

        // Light faults cost real (expected) money…
        let light = priced(Some(FaultProfile::light()));
        assert!(light.latency > reliable.latency);
        assert!(light.cost.amount() > reliable.cost.amount());

        // …and a flakier tier prices strictly above a lighter one, which is
        // the comparison the what-if service makes.
        let mut storm = FaultProfile::light();
        storm.fetch_failure_rate = 0.5;
        storm.straggler_rate = 0.4;
        storm.worker_loss_rate = 0.2;
        storm.throttle_rate = 0.3;
        let stormy = priced(Some(storm));
        assert!(stormy.latency > light.latency);
        assert!(stormy.cost.amount() > light.cost.amount());
    }

    #[test]
    fn tier_hits_shrink_the_fetch_term() {
        let cat = catalog();
        let (plan, graph) = planned(&cat, "SELECT id FROM facts");
        let dops = vec![2u32; graph.len()];
        let priced = |tiers: Option<TierCostModel>| {
            let cfg = EstimatorConfig {
                tiers,
                ..EstimatorConfig::default()
            };
            CostEstimator::new(&cat, cfg)
                .estimate(&plan, &graph, &dops)
                .unwrap()
        };

        let cold = priced(None);
        // A cold tier model prices like no tier model at all.
        let cold_model = priced(Some(TierCostModel::cold(TierPricing::standard())));
        assert_eq!(cold_model.latency, cold.latency);

        // Memory hits serve faster than SSD hits, which beat the object
        // store — the ordering the tier menu guarantees.
        let warm = |mem: f64, ssd: f64| {
            priced(Some(TierCostModel {
                pricing: TierPricing::standard(),
                mem_hit_rate: mem,
                ssd_hit_rate: ssd,
                ..TierCostModel::default()
            }))
        };
        let all_ssd = warm(0.0, 1.0);
        let all_mem = warm(1.0, 0.0);
        assert!(all_ssd.latency < cold.latency);
        assert!(all_mem.latency < all_ssd.latency);
        assert!(all_mem.cost.amount() < cold.cost.amount());
    }

    #[test]
    fn pinned_table_prices_at_its_tier_regardless_of_global_rates() {
        let cat = catalog();
        let (plan, graph) = planned(&cat, "SELECT id FROM facts");
        let dops = vec![2u32; graph.len()];
        let priced = |tiers: TierCostModel| {
            let cfg = EstimatorConfig {
                tiers: Some(tiers),
                ..EstimatorConfig::default()
            };
            CostEstimator::new(&cat, cfg)
                .estimate(&plan, &graph, &dops)
                .unwrap()
        };
        let mut pinned = TierCostModel::cold(TierPricing::standard());
        pinned.pinned_mem.insert(TableId::new(0));
        let all_mem = TierCostModel {
            pricing: TierPricing::standard(),
            mem_hit_rate: 1.0,
            ..TierCostModel::default()
        };
        // Pinning `facts` in memory equals a 100% memory hit rate for this
        // single-scan query, and beats the cold model.
        assert_eq!(priced(pinned.clone()).latency, priced(all_mem).latency);
        let cold = priced(TierCostModel::cold(TierPricing::standard()));
        assert!(priced(pinned).latency < cold.latency);
    }

    #[test]
    fn observed_counters_seed_hit_rates() {
        use ci_cloud::tiercache::CacheCounters;
        let c = CacheCounters {
            mem_hits: 6,
            ssd_hits: 2,
            misses: 2,
            promotions: 3,
            evictions: 1,
        };
        let m = TierCostModel::observed(TierPricing::standard(), &c);
        assert!((m.mem_hit_rate - 0.6).abs() < 1e-12);
        assert!((m.ssd_hit_rate - 0.2).abs() < 1e-12);
        let empty = TierCostModel::observed(TierPricing::standard(), &CacheCounters::default());
        assert_eq!(empty.mem_hit_rate, 0.0);
        assert_eq!(empty.ssd_hit_rate, 0.0);
    }

    #[test]
    fn wrong_dop_count_rejected() {
        let cat = catalog();
        let (plan, graph) = planned(&cat, "SELECT COUNT(*) FROM facts");
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        assert!(est.estimate(&plan, &graph, &[1, 2, 3, 4, 5, 6, 7]).is_err());
    }
}
