//! Regression calibration of the analytic models.
//!
//! §3.1: "To improve the prediction accuracy for more complex operators
//! (typically involve data exchange between nodes), we pre-train regression
//! models for them with synthetic workloads that cover the parameter space."
//!
//! The calibration here is a linear correction
//! `actual ≈ β₀ + β₁·raw + β₂·raw·log2(dop)` fitted by ordinary least
//! squares over (raw analytic prediction, DOP, measured duration) samples
//! collected from engine runs of synthetic workloads. Linear in named
//! features — an engineer can read the fitted coefficients and see, e.g.,
//! "we under-predict exchange-heavy pipelines by 12% per doubling of DOP".

use ci_types::regression::{fit, LinearModel};
use ci_types::{CiError, Result};

/// One calibration sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Raw analytic prediction (seconds).
    pub predicted_secs: f64,
    /// DOP the pipeline ran with.
    pub dop: u32,
    /// Measured duration (seconds).
    pub actual_secs: f64,
}

/// A fitted correction model.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    model: LinearModel,
    /// Training R² (goodness of fit on the calibration workload).
    pub r_squared: f64,
    /// Number of samples used.
    pub samples: usize,
}

impl Calibration {
    /// Fits a correction from calibration samples. Requires at least four
    /// samples spanning more than one DOP.
    pub fn fit(samples: &[Sample]) -> Result<Calibration> {
        if samples.len() < 4 {
            return Err(CiError::Config(format!(
                "calibration needs >= 4 samples, got {}",
                samples.len()
            )));
        }
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| features(s.predicted_secs, s.dop))
            .collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.actual_secs).collect();
        let model = fit(&rows, &ys)?;
        Ok(Calibration {
            r_squared: model.r_squared,
            samples: samples.len(),
            model,
        })
    }

    /// Applies the correction to a raw prediction. Corrections are clamped
    /// to stay positive (a negative predicted duration is never meaningful).
    pub fn correct(&self, raw_secs: f64, dop: u32) -> f64 {
        let corrected = self.model.predict(&features(raw_secs, dop));
        if corrected.is_finite() && corrected > 0.0 {
            corrected
        } else {
            raw_secs
        }
    }

    /// The fitted coefficients `[β₀, β₁ (raw), β₂ (raw·log2 dop)]` —
    /// exposed for explainability reports.
    pub fn coefficients(&self) -> &[f64] {
        &self.model.beta
    }
}

fn features(raw: f64, dop: u32) -> Vec<f64> {
    vec![raw, raw * (dop.max(1) as f64).log2()]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(bias: f64, scale: f64, dop_slope: f64) -> Vec<Sample> {
        let mut out = Vec::new();
        for &dop in &[1u32, 2, 4, 8, 16] {
            for i in 1..20 {
                let raw = i as f64 * 0.05;
                let actual = bias + scale * raw + dop_slope * raw * (dop as f64).log2();
                out.push(Sample {
                    predicted_secs: raw,
                    dop,
                    actual_secs: actual,
                });
            }
        }
        out
    }

    #[test]
    fn recovers_systematic_underprediction() {
        // Engine is consistently 1.2x the analytic model plus DOP drift.
        let samples = synth(0.01, 1.2, 0.05);
        let c = Calibration::fit(&samples).unwrap();
        assert!(c.r_squared > 0.999, "r2 = {}", c.r_squared);
        let corrected = c.correct(1.0, 8);
        let expected = 0.01 + 1.2 + 0.05 * 3.0;
        assert!((corrected - expected).abs() < 1e-6, "{corrected}");
    }

    #[test]
    fn identity_when_model_is_perfect() {
        let samples = synth(0.0, 1.0, 0.0);
        let c = Calibration::fit(&samples).unwrap();
        for &(raw, dop) in &[(0.1, 1u32), (0.5, 4), (2.0, 16)] {
            let corrected = c.correct(raw, dop);
            assert!((corrected - raw).abs() < 1e-9);
        }
    }

    #[test]
    fn too_few_samples_rejected() {
        let s = Sample {
            predicted_secs: 1.0,
            dop: 2,
            actual_secs: 1.1,
        };
        assert!(Calibration::fit(&[s; 3]).is_err());
    }

    #[test]
    fn nonsense_correction_falls_back_to_raw() {
        // Fit a wildly negative model on adversarial data.
        let samples = vec![
            Sample {
                predicted_secs: 1.0,
                dop: 1,
                actual_secs: -5.0,
            },
            Sample {
                predicted_secs: 2.0,
                dop: 2,
                actual_secs: -10.0,
            },
            Sample {
                predicted_secs: 3.0,
                dop: 4,
                actual_secs: -15.0,
            },
            Sample {
                predicted_secs: 4.0,
                dop: 8,
                actual_secs: -20.0,
            },
            Sample {
                predicted_secs: 5.0,
                dop: 16,
                actual_secs: -25.0,
            },
        ];
        let c = Calibration::fit(&samples).unwrap();
        // Prediction would be negative; fall back to the raw estimate.
        assert_eq!(c.correct(1.0, 4), 1.0);
    }

    #[test]
    fn coefficients_exposed() {
        let c = Calibration::fit(&synth(0.0, 1.5, 0.0)).unwrap();
        assert_eq!(c.coefficients().len(), 3);
        assert!((c.coefficients()[1] - 1.5).abs() < 1e-6);
    }
}
