//! Regression calibration of the analytic models.
//!
//! §3.1: "To improve the prediction accuracy for more complex operators
//! (typically involve data exchange between nodes), we pre-train regression
//! models for them with synthetic workloads that cover the parameter space."
//!
//! The calibration here is a linear correction
//! `actual ≈ β₀ + β₁·raw + β₂·raw·log2(dop)` fitted by ordinary least
//! squares over (raw analytic prediction, DOP, measured duration) samples
//! collected from engine runs of synthetic workloads. Linear in named
//! features — an engineer can read the fitted coefficients and see, e.g.,
//! "we under-predict exchange-heavy pipelines by 12% per doubling of DOP".

use std::collections::BTreeMap;

use ci_cloud::work::WorkModels;
use ci_types::regression::{fit, LinearModel};
use ci_types::{CiError, Result};

/// One calibration sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Raw analytic prediction (seconds).
    pub predicted_secs: f64,
    /// DOP the pipeline ran with.
    pub dop: u32,
    /// Measured duration (seconds).
    pub actual_secs: f64,
}

/// A fitted correction model.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    model: LinearModel,
    /// Training R² (goodness of fit on the calibration workload).
    pub r_squared: f64,
    /// Number of samples used.
    pub samples: usize,
}

impl Calibration {
    /// Fits a correction from calibration samples. Requires at least four
    /// samples spanning more than one DOP.
    pub fn fit(samples: &[Sample]) -> Result<Calibration> {
        if samples.len() < 4 {
            return Err(CiError::Config(format!(
                "calibration needs >= 4 samples, got {}",
                samples.len()
            )));
        }
        let rows: Vec<Vec<f64>> = samples
            .iter()
            .map(|s| features(s.predicted_secs, s.dop))
            .collect();
        let ys: Vec<f64> = samples.iter().map(|s| s.actual_secs).collect();
        let model = fit(&rows, &ys)?;
        Ok(Calibration {
            r_squared: model.r_squared,
            samples: samples.len(),
            model,
        })
    }

    /// Applies the correction to a raw prediction. Corrections are clamped
    /// to stay positive (a negative predicted duration is never meaningful).
    pub fn correct(&self, raw_secs: f64, dop: u32) -> f64 {
        let corrected = self.model.predict(&features(raw_secs, dop));
        if corrected.is_finite() && corrected > 0.0 {
            corrected
        } else {
            raw_secs
        }
    }

    /// The fitted coefficients `[β₀, β₁ (raw), β₂ (raw·log2 dop)]` —
    /// exposed for explainability reports.
    pub fn coefficients(&self) -> &[f64] {
        &self.model.beta
    }
}

fn features(raw: f64, dop: u32) -> Vec<f64> {
    vec![raw, raw * (dop.max(1) as f64).log2()]
}

/// Measured per-operator-class hardware rates, aggregated from the parallel
/// runtime's `OpSample` stream (crate `ci-exec`).
///
/// The parallel engine times every operator-kernel invocation on a single
/// worker thread and emits `(op, units, wall_ns)` samples. This collector
/// turns them into *units per second per core* — dimensionally the same
/// quantity as the `HardwareProfile` `*_per_sec_per_core` rates, because
/// each sample is one thread's throughput — and [`MeasuredRates::seed`]
/// rewrites a [`WorkModels`] with them, closing the calibrate-from-reality
/// loop the paper's §3.1 hardware calibration describes.
///
/// Aggregation is the **lower median** of per-sample rates under a total
/// order on `f64` — deterministic for a given multiset of samples no matter
/// what order the workers produced them in, and robust to the long upper
/// tail that first-touch/cold-cache morsels put on wall-clock.
///
/// Op-class names are shared with the exec crate by convention (the two
/// crates are DAG siblings): `"filter"`, `"probe"`, `"build"`, `"agg"`,
/// `"exchange"`, `"sort"` (whose units are `n·log2(n)` row-comparisons,
/// matching `sort_rows_log_per_sec_per_core`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MeasuredRates {
    /// Per-sample units/sec by operator class. `BTreeMap` keeps iteration
    /// (and hence any derived report) in a stable key order.
    rates: BTreeMap<String, Vec<f64>>,
}

impl MeasuredRates {
    /// An empty collector.
    pub fn new() -> MeasuredRates {
        MeasuredRates::default()
    }

    /// Folds one measured kernel invocation in. Samples that cannot yield a
    /// meaningful rate (zero/negative units, zero wall-clock, non-finite
    /// values) are dropped — a kernel too fast for the clock tick carries no
    /// rate information.
    pub fn record(&mut self, op: &str, units: f64, wall_ns: u64) {
        if wall_ns == 0 || units <= 0.0 || !units.is_finite() {
            return;
        }
        let per_sec = units / (wall_ns as f64 * 1e-9);
        if per_sec.is_finite() && per_sec > 0.0 {
            self.rates.entry(op.to_string()).or_default().push(per_sec);
        }
    }

    /// The aggregated rate (units/sec/core) for one operator class: the
    /// lower median of its per-sample rates. `None` until at least one
    /// usable sample was recorded.
    pub fn rate(&self, op: &str) -> Option<f64> {
        let v = self.rates.get(op)?;
        if v.is_empty() {
            return None;
        }
        let mut sorted = v.clone();
        sorted.sort_by(f64::total_cmp);
        Some(sorted[(sorted.len() - 1) / 2])
    }

    /// Number of usable samples recorded for one operator class.
    pub fn samples(&self, op: &str) -> usize {
        self.rates.get(op).map_or(0, Vec::len)
    }

    /// Operator classes with at least one sample, in stable order.
    pub fn ops(&self) -> impl Iterator<Item = &str> {
        self.rates.keys().map(String::as_str)
    }

    /// Serializes the collector to a JSON object mapping each operator
    /// class to its raw per-sample rates (`{"filter":[1e9,5e8],...}`).
    /// Hand-rolled (the workspace has no serde); keys emit in `BTreeMap`
    /// order, so equal collectors serialize identically — a calibration run
    /// can be persisted and diffed. Rates are written with Rust's shortest
    /// round-trip float formatting, so [`MeasuredRates::from_json`] restores
    /// the collector bit-for-bit.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (op, rates)) in self.rates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Op names come from a fixed set of identifiers; escape the two
            // JSON-significant characters anyway so the writer is total.
            out.push('"');
            for c in op.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    _ => out.push(c),
                }
            }
            out.push_str("\":[");
            for (j, r) in rates.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{r:?}"));
            }
            out.push(']');
        }
        out.push('}');
        out
    }

    /// Parses the [`MeasuredRates::to_json`] format back into a collector.
    /// Strict: malformed JSON, duplicate keys, and non-finite or
    /// non-positive rates are errors — a corrupted calibration file must
    /// not silently seed the estimator with garbage.
    pub fn from_json(s: &str) -> Result<MeasuredRates> {
        let bad = |what: &str| CiError::Config(format!("measured-rates json: {what}"));
        let mut chars = s.char_indices().peekable();
        let skip_ws = |chars: &mut std::iter::Peekable<std::str::CharIndices>| {
            while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
                chars.next();
            }
        };
        skip_ws(&mut chars);
        if !matches!(chars.next(), Some((_, '{'))) {
            return Err(bad("expected '{'"));
        }
        let mut rates: BTreeMap<String, Vec<f64>> = BTreeMap::new();
        skip_ws(&mut chars);
        if matches!(chars.peek(), Some((_, '}'))) {
            chars.next();
        } else {
            loop {
                skip_ws(&mut chars);
                if !matches!(chars.next(), Some((_, '"'))) {
                    return Err(bad("expected key string"));
                }
                let mut key = String::new();
                loop {
                    match chars.next() {
                        Some((_, '"')) => break,
                        Some((_, '\\')) => match chars.next() {
                            Some((_, c @ ('"' | '\\'))) => key.push(c),
                            _ => return Err(bad("unsupported escape in key")),
                        },
                        Some((_, c)) => key.push(c),
                        None => return Err(bad("unterminated key")),
                    }
                }
                skip_ws(&mut chars);
                if !matches!(chars.next(), Some((_, ':'))) {
                    return Err(bad("expected ':'"));
                }
                skip_ws(&mut chars);
                if !matches!(chars.next(), Some((_, '['))) {
                    return Err(bad("expected '['"));
                }
                let mut vals = Vec::new();
                skip_ws(&mut chars);
                if matches!(chars.peek(), Some((_, ']'))) {
                    chars.next();
                } else {
                    loop {
                        skip_ws(&mut chars);
                        let start = match chars.peek() {
                            Some(&(i, _)) => i,
                            None => return Err(bad("unterminated array")),
                        };
                        let mut end = start;
                        while matches!(
                            chars.peek(),
                            Some((_, c)) if c.is_ascii_digit()
                                || matches!(c, '-' | '+' | '.' | 'e' | 'E')
                        ) {
                            let (i, c) = chars.next().expect("peeked");
                            end = i + c.len_utf8();
                        }
                        let v: f64 = s[start..end]
                            .parse()
                            .map_err(|_| bad("unparsable number"))?;
                        if !v.is_finite() || v <= 0.0 {
                            return Err(bad("rate must be finite and positive"));
                        }
                        vals.push(v);
                        skip_ws(&mut chars);
                        match chars.next() {
                            Some((_, ',')) => continue,
                            Some((_, ']')) => break,
                            _ => return Err(bad("expected ',' or ']'")),
                        }
                    }
                }
                if rates.insert(key, vals).is_some() {
                    return Err(bad("duplicate operator key"));
                }
                skip_ws(&mut chars);
                match chars.next() {
                    Some((_, ',')) => continue,
                    Some((_, '}')) => break,
                    _ => return Err(bad("expected ',' or '}'")),
                }
            }
        }
        skip_ws(&mut chars);
        if chars.next().is_some() {
            return Err(bad("trailing characters"));
        }
        Ok(MeasuredRates { rates })
    }

    /// Writes the collector to `path` in the [`MeasuredRates::to_json`]
    /// format (atomic enough for a single writer: plain `fs::write`).
    pub fn save_path(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.to_json())
            .map_err(|e| CiError::Config(format!("cannot write rates to {}: {e}", path.display())))
    }

    /// Loads a collector from `path`. A missing file is `Ok(None)` — the
    /// load-if-exists half of the persistence contract; any other I/O or
    /// parse failure is an error (a corrupted calibration file must be
    /// noticed, not silently ignored).
    pub fn load_path(path: &std::path::Path) -> Result<Option<MeasuredRates>> {
        match std::fs::read_to_string(path) {
            Ok(s) => MeasuredRates::from_json(&s).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(CiError::Config(format!(
                "cannot read rates from {}: {e}",
                path.display()
            ))),
        }
    }

    /// Loads the collector named by the `CI_RATES_PATH` env var. Unset or
    /// empty means persistence is off (`Ok(None)`), as does a path that
    /// does not exist yet.
    pub fn load_env() -> Result<Option<MeasuredRates>> {
        match std::env::var("CI_RATES_PATH") {
            Ok(p) if !p.trim().is_empty() => {
                MeasuredRates::load_path(std::path::Path::new(p.trim()))
            }
            _ => Ok(None),
        }
    }

    /// Saves the collector to the `CI_RATES_PATH` env var's path, returning
    /// whether anything was written (`false` when the var is unset/empty).
    pub fn save_env(&self) -> Result<bool> {
        match std::env::var("CI_RATES_PATH") {
            Ok(p) if !p.trim().is_empty() => {
                self.save_path(std::path::Path::new(p.trim()))?;
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    /// A copy of `base` with every measured per-core compute rate replaced
    /// by its aggregate. Classes without samples keep the base calibration —
    /// seeding is incremental, one workload need not exercise every kernel.
    pub fn seed(&self, base: &WorkModels) -> WorkModels {
        let mut m = base.clone();
        let slots: [(&str, &mut f64); 6] = [
            ("filter", &mut m.hw.filter_rows_per_sec_per_core),
            ("probe", &mut m.hw.hash_probe_rows_per_sec_per_core),
            ("build", &mut m.hw.hash_build_rows_per_sec_per_core),
            ("agg", &mut m.hw.agg_rows_per_sec_per_core),
            ("exchange", &mut m.hw.exchange_part_rows_per_sec_per_core),
            ("sort", &mut m.hw.sort_rows_log_per_sec_per_core),
        ];
        for (op, slot) in slots {
            if let Some(r) = self.rate(op) {
                *slot = r;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(bias: f64, scale: f64, dop_slope: f64) -> Vec<Sample> {
        let mut out = Vec::new();
        for &dop in &[1u32, 2, 4, 8, 16] {
            for i in 1..20 {
                let raw = i as f64 * 0.05;
                let actual = bias + scale * raw + dop_slope * raw * (dop as f64).log2();
                out.push(Sample {
                    predicted_secs: raw,
                    dop,
                    actual_secs: actual,
                });
            }
        }
        out
    }

    #[test]
    fn recovers_systematic_underprediction() {
        // Engine is consistently 1.2x the analytic model plus DOP drift.
        let samples = synth(0.01, 1.2, 0.05);
        let c = Calibration::fit(&samples).unwrap();
        assert!(c.r_squared > 0.999, "r2 = {}", c.r_squared);
        let corrected = c.correct(1.0, 8);
        let expected = 0.01 + 1.2 + 0.05 * 3.0;
        assert!((corrected - expected).abs() < 1e-6, "{corrected}");
    }

    #[test]
    fn identity_when_model_is_perfect() {
        let samples = synth(0.0, 1.0, 0.0);
        let c = Calibration::fit(&samples).unwrap();
        for &(raw, dop) in &[(0.1, 1u32), (0.5, 4), (2.0, 16)] {
            let corrected = c.correct(raw, dop);
            assert!((corrected - raw).abs() < 1e-9);
        }
    }

    #[test]
    fn too_few_samples_rejected() {
        let s = Sample {
            predicted_secs: 1.0,
            dop: 2,
            actual_secs: 1.1,
        };
        assert!(Calibration::fit(&[s; 3]).is_err());
    }

    #[test]
    fn nonsense_correction_falls_back_to_raw() {
        // Fit a wildly negative model on adversarial data.
        let samples = vec![
            Sample {
                predicted_secs: 1.0,
                dop: 1,
                actual_secs: -5.0,
            },
            Sample {
                predicted_secs: 2.0,
                dop: 2,
                actual_secs: -10.0,
            },
            Sample {
                predicted_secs: 3.0,
                dop: 4,
                actual_secs: -15.0,
            },
            Sample {
                predicted_secs: 4.0,
                dop: 8,
                actual_secs: -20.0,
            },
            Sample {
                predicted_secs: 5.0,
                dop: 16,
                actual_secs: -25.0,
            },
        ];
        let c = Calibration::fit(&samples).unwrap();
        // Prediction would be negative; fall back to the raw estimate.
        assert_eq!(c.correct(1.0, 4), 1.0);
    }

    #[test]
    fn coefficients_exposed() {
        let c = Calibration::fit(&synth(0.0, 1.5, 0.0)).unwrap();
        assert_eq!(c.coefficients().len(), 3);
        assert!((c.coefficients()[1] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn measured_rate_is_lower_median_and_order_free() {
        // 1000 rows in 1µs = 1e9 rows/s; 1000 in 2µs = 5e8; 1000 in 10µs = 1e8.
        let mut a = MeasuredRates::new();
        a.record("filter", 1000.0, 1_000);
        a.record("filter", 1000.0, 2_000);
        a.record("filter", 1000.0, 10_000);
        let mut b = MeasuredRates::new();
        b.record("filter", 1000.0, 10_000);
        b.record("filter", 1000.0, 1_000);
        b.record("filter", 1000.0, 2_000);
        let close = |x: Option<f64>, want: f64| {
            let x = x.expect("rate present");
            (x / want - 1.0).abs() < 1e-12
        };
        // Odd count: the true median, regardless of arrival order.
        assert!(close(a.rate("filter"), 5e8), "{:?}", a.rate("filter"));
        assert_eq!(a.rate("filter"), b.rate("filter"));
        // Even count: the *lower* median (deterministic, no averaging).
        a.record("filter", 1000.0, 4_000);
        assert!(close(a.rate("filter"), 2.5e8), "{:?}", a.rate("filter"));
        assert_eq!(a.samples("filter"), 4);
        assert_eq!(a.rate("sort"), None);
    }

    #[test]
    fn unusable_samples_dropped() {
        let mut r = MeasuredRates::new();
        r.record("agg", 100.0, 0); // clock too coarse
        r.record("agg", 0.0, 100); // no work
        r.record("agg", -5.0, 100);
        r.record("agg", f64::NAN, 100);
        assert_eq!(r.rate("agg"), None);
        assert_eq!(r.samples("agg"), 0);
    }

    #[test]
    fn seed_overrides_only_measured_classes() {
        let base = WorkModels::standard();
        let mut r = MeasuredRates::new();
        r.record("probe", 1_000_000.0, 1_000_000); // 1M rows in 1ms = 1e9/s
        r.record("sort", 64_000.0, 1_000_000); // 64k cmp in 1ms = 6.4e7/s
        let seeded = r.seed(&base);
        assert_eq!(
            seeded.hw.hash_probe_rows_per_sec_per_core,
            r.rate("probe").unwrap()
        );
        assert_eq!(
            seeded.hw.sort_rows_log_per_sec_per_core,
            r.rate("sort").unwrap()
        );
        assert!((seeded.hw.hash_probe_rows_per_sec_per_core / 1e9 - 1.0).abs() < 1e-12);
        // Unmeasured classes keep the base calibration.
        assert_eq!(
            seeded.hw.filter_rows_per_sec_per_core,
            base.hw.filter_rows_per_sec_per_core
        );
        assert_eq!(
            seeded.hw.hash_build_rows_per_sec_per_core,
            base.hw.hash_build_rows_per_sec_per_core
        );
        // Network/store models are untouched.
        assert_eq!(seeded.net, base.net);
        assert_eq!(seeded.store, base.store);
        // Faster measured probe rate means less probe time.
        assert!(seeded.probe_secs(1e6) < base.probe_secs(1e6));
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut r = MeasuredRates::new();
        r.record("filter", 1000.0, 1_000);
        r.record("filter", 1000.0, 3_000); // non-terminating decimal rate
        r.record("probe", 1_000_000.0, 1_234_567);
        r.record("sort", 64_000.0, 7);
        let json = r.to_json();
        let back = MeasuredRates::from_json(&json).unwrap();
        assert_eq!(back, r, "shortest float formatting must round-trip bits");
        assert_eq!(back.to_json(), json);
        assert_eq!(back.rate("filter"), r.rate("filter"));

        // Empty collector round-trips too.
        let empty = MeasuredRates::new();
        assert_eq!(empty.to_json(), "{}");
        assert_eq!(MeasuredRates::from_json("{}").unwrap(), empty);
        // Whitespace tolerated on re-read.
        let spaced = " { \"agg\" : [ 1.5 , 2.0 ] } ";
        let m = MeasuredRates::from_json(spaced).unwrap();
        assert_eq!(m.samples("agg"), 2);
    }

    #[test]
    fn malformed_json_rejected() {
        for bad in [
            "",
            "{",
            "[]",
            "{\"filter\":}",
            "{\"filter\":[1.0}",
            "{\"filter\":[1.0],}",
            "{\"filter\":[nope]}",
            "{\"filter\":[0.0]}",        // non-positive rate
            "{\"filter\":[-1.0]}",       // negative rate
            "{\"a\":[1.0],\"a\":[2.0]}", // duplicate key
            "{} trailing",
        ] {
            assert!(
                MeasuredRates::from_json(bad).is_err(),
                "should reject: {bad}"
            );
        }
    }

    #[test]
    fn path_persistence_round_trips_and_tolerates_absence() {
        let path = std::env::temp_dir().join(format!("ci-rates-test-{}.json", std::process::id()));
        // Missing file: load-if-exists says None, not an error.
        assert_eq!(MeasuredRates::load_path(&path).unwrap(), None);

        let mut r = MeasuredRates::new();
        r.record("filter", 1000.0, 3_000);
        r.record("probe", 1_000_000.0, 1_234_567);
        r.save_path(&path).unwrap();
        let back = MeasuredRates::load_path(&path).unwrap().expect("saved");
        assert_eq!(back, r, "file round-trip must be bit-exact");

        // Corruption is a loud error, not a silent empty collector.
        std::fs::write(&path, "{\"filter\":[-1.0]}").unwrap();
        assert!(MeasuredRates::load_path(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ops_iterate_in_stable_order() {
        let mut r = MeasuredRates::new();
        r.record("sort", 1.0, 1);
        r.record("agg", 1.0, 1);
        r.record("filter", 1.0, 1);
        let ops: Vec<&str> = r.ops().collect();
        assert_eq!(ops, vec!["agg", "filter", "sort"]);
    }
}
