//! Cross-validation: the cost estimator's predictions vs the engine's
//! measurements, on clean (oracle) cardinalities. This is the substance of
//! the paper's §3.1 accuracy requirement and the basis of experiment E2.

use std::sync::Arc;

use ci_catalog::{Catalog, ErrorInjector};
use ci_cost::{Calibration, CostEstimator, EstimatorConfig};
use ci_exec::{ExecutionConfig, Executor, NoScaling};
use ci_plan::{bind, JoinTree, PhysicalPlan, PipelineGraph};
use ci_sql::parse;
use ci_storage::batch::RecordBatch;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema};
use ci_storage::table::TableBuilder;
use ci_storage::value::DataType;
use ci_types::stats::relative_error;
use ci_types::TableId;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Arc::new(Schema::of(vec![
        Field::new("id", DataType::Int64),
        Field::new("grp", DataType::Int64),
        Field::new("val", DataType::Float64),
    ]));
    let n = 400_000i64;
    let mut b = TableBuilder::new(TableId::new(0), "facts", schema.clone(), 16_384).unwrap();
    b.append(
        RecordBatch::new(
            schema,
            vec![
                ColumnData::Int64((0..n).collect()),
                ColumnData::Int64((0..n).map(|i| (i * 7919) % 2000).collect()),
                ColumnData::Float64((0..n).map(|i| (i % 1000) as f64).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());
    let dim = Arc::new(Schema::of(vec![
        Field::new("d_id", DataType::Int64),
        Field::new("d_cat", DataType::Utf8),
    ]));
    let mut b = TableBuilder::new(TableId::new(1), "dims", dim.clone(), 512).unwrap();
    b.append(
        RecordBatch::new(
            dim,
            vec![
                ColumnData::Int64((0..2000).collect()),
                ColumnData::Utf8((0..2000).map(|i| format!("c{}", i % 20)).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());
    c
}

fn planned(cat: &Catalog, sql: &str) -> (PhysicalPlan, PipelineGraph) {
    let b = bind(&parse(sql).unwrap(), cat).unwrap();
    let tree = JoinTree::left_deep(&(0..b.relations.len()).collect::<Vec<_>>());
    let plan = ci_plan::physical::build_plan(&b, &tree, cat, &mut ErrorInjector::oracle()).unwrap();
    let graph = PipelineGraph::decompose(&plan).unwrap();
    (plan, graph)
}

const QUERIES: &[&str] = &[
    "SELECT id FROM facts WHERE val < 100.0",
    "SELECT COUNT(*) FROM facts",
    "SELECT grp, COUNT(*), SUM(val) FROM facts GROUP BY grp",
    "SELECT d_cat, SUM(val) FROM facts f JOIN dims d ON f.grp = d.d_id GROUP BY d_cat",
    "SELECT id, val FROM facts WHERE val > 900.0 ORDER BY val DESC LIMIT 100",
];

#[test]
fn predictions_track_measurements_within_tolerance() {
    let cat = catalog();
    let est = CostEstimator::new(&cat, EstimatorConfig::default());
    let exec = Executor::new(&cat, ExecutionConfig::default());

    let mut errors = Vec::new();
    for sql in QUERIES {
        for dop in [1u32, 4, 16] {
            let (plan, graph) = planned(&cat, sql);
            let dops = vec![dop; graph.len()];
            let predicted = est.estimate(&plan, &graph, &dops).unwrap();
            let measured = exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap();
            let e = relative_error(
                predicted.latency.as_secs_f64(),
                measured.metrics.latency.as_secs_f64(),
            );
            errors.push(e);
            // No single configuration should be wildly off on clean stats.
            assert!(
                e < 0.6,
                "{sql} at dop {dop}: predicted {} vs measured {} (err {e:.2})",
                predicted.latency,
                measured.metrics.latency
            );
        }
    }
    errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = errors[errors.len() / 2];
    assert!(
        median < 0.25,
        "median latency error should be small, got {median:.3} ({errors:?})"
    );
}

#[test]
fn cost_predictions_track_billing() {
    let cat = catalog();
    let est = CostEstimator::new(&cat, EstimatorConfig::default());
    let exec = Executor::new(&cat, ExecutionConfig::default());
    for sql in QUERIES {
        let (plan, graph) = planned(&cat, sql);
        let dops = vec![4; graph.len()];
        let predicted = est.estimate(&plan, &graph, &dops).unwrap();
        let measured = exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap();
        let e = relative_error(predicted.cost.amount(), measured.metrics.cost.amount());
        assert!(
            e < 0.6,
            "{sql}: predicted {} vs billed {} (err {e:.2})",
            predicted.cost,
            measured.metrics.cost
        );
    }
}

#[test]
fn calibration_reduces_error() {
    let cat = catalog();
    let est = CostEstimator::new(&cat, EstimatorConfig::default());
    let exec = Executor::new(&cat, ExecutionConfig::default());

    // Collect calibration samples from a synthetic sweep (§3.1: pre-train
    // on synthetic workloads covering the parameter space).
    let mut samples = Vec::new();
    for sql in QUERIES {
        for dop in [1u32, 2, 8, 32] {
            let (plan, graph) = planned(&cat, sql);
            let dops = vec![dop; graph.len()];
            let measured = exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap();
            for (p, pm) in graph.pipelines.iter().zip(&measured.metrics.pipelines) {
                let w = est.pipeline_work(&plan, p).unwrap();
                let raw = est.pipeline_duration(&w, dop).as_secs_f64();
                let actual = pm.finish.saturating_since(pm.start).as_secs_f64()
                    - exec.config.resize_latency.as_secs_f64();
                if actual > 0.0 {
                    samples.push(ci_cost::calibration::Sample {
                        predicted_secs: raw,
                        dop,
                        actual_secs: actual,
                    });
                }
            }
        }
    }
    let cal = Calibration::fit(&samples).unwrap();
    let calibrated = CostEstimator::new(&cat, EstimatorConfig::default()).with_calibration(cal);

    // Held-out config: dop 16.
    let mut raw_err = Vec::new();
    let mut cal_err = Vec::new();
    for sql in QUERIES {
        let (plan, graph) = planned(&cat, sql);
        let dops = vec![16u32; graph.len()];
        let measured = exec.execute(&plan, &graph, &dops, &mut NoScaling).unwrap();
        let actual = measured.metrics.latency.as_secs_f64();
        raw_err.push(relative_error(
            est.estimate(&plan, &graph, &dops)
                .unwrap()
                .latency
                .as_secs_f64(),
            actual,
        ));
        cal_err.push(relative_error(
            calibrated
                .estimate(&plan, &graph, &dops)
                .unwrap()
                .latency
                .as_secs_f64(),
            actual,
        ));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&cal_err) <= mean(&raw_err) * 1.10,
        "calibration should not hurt: raw {:.3} vs calibrated {:.3}",
        mean(&raw_err),
        mean(&cal_err)
    );
}
