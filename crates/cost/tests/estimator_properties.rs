//! Property tests on cost-estimator invariants: predictions must be finite,
//! positive, monotone in work, and the DAG schedule must respect
//! dependencies for arbitrary DOP assignments.

use std::sync::Arc;

use ci_catalog::{Catalog, ErrorInjector};
use ci_cost::{CostEstimator, EstimatorConfig, PipelineWork};
use ci_plan::{bind, JoinTree, PipelineGraph};
use ci_sql::parse;
use ci_storage::batch::RecordBatch;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema};
use ci_storage::table::TableBuilder;
use ci_storage::value::DataType;
use ci_types::TableId;
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    let schema = Arc::new(Schema::of(vec![
        Field::new("k", DataType::Int64),
        Field::new("v", DataType::Float64),
    ]));
    let n = 50_000i64;
    let mut b = TableBuilder::new(TableId::new(0), "t", schema.clone(), 4096).unwrap();
    b.append(
        RecordBatch::new(
            schema,
            vec![
                ColumnData::Int64((0..n).map(|i| i % 500).collect()),
                ColumnData::Float64((0..n).map(|i| (i % 97) as f64).collect()),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(b.finish().unwrap());
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Estimates are finite and positive for any DOP vector, and the
    /// schedule respects pipeline dependencies.
    #[test]
    fn estimates_are_sane_for_any_dops(seed_dops in proptest::collection::vec(1u32..300, 3)) {
        let cat = catalog();
        let bound = bind(
            &parse("SELECT k, SUM(v) FROM t WHERE v < 50.0 GROUP BY k ORDER BY k").unwrap(),
            &cat,
        )
        .unwrap();
        let plan = ci_plan::physical::build_plan(
            &bound,
            &JoinTree::left_deep(&[0]),
            &cat,
            &mut ErrorInjector::oracle(),
        )
        .unwrap();
        let graph = PipelineGraph::decompose(&plan).unwrap();
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let dops: Vec<u32> = (0..graph.len())
            .map(|i| seed_dops[i % seed_dops.len()])
            .collect();
        let q = est.estimate(&plan, &graph, &dops).unwrap();
        prop_assert!(q.latency.as_secs_f64() > 0.0);
        prop_assert!(q.cost.amount() > 0.0 && q.cost.is_finite());
        prop_assert!(q.machine_time >= q.latency, "machine time < latency is impossible at dop >= 1");
        // Schedule sanity: each pipeline starts at/after its deps finish.
        for p in &graph.pipelines {
            let (start, finish, release) = q.spans[p.id.index()];
            prop_assert!(finish >= start);
            prop_assert!(release >= finish);
            for d in &p.deps {
                prop_assert!(start >= q.spans[d.index()].1);
            }
        }
    }

    /// Pipeline duration is monotone non-decreasing in every work term.
    #[test]
    fn duration_monotone_in_work(
        rows in 1.0f64..1e8,
        bytes in 1.0f64..1e10,
        dop in 1u32..256,
        scale in 1.01f64..10.0,
    ) {
        let cat = catalog();
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let base = PipelineWork {
            fetch_bytes: bytes,
            fetch_objects: (bytes / 16e6).ceil(),
            decode_bytes: bytes,
            filter_rows: rows,
            exchange_rows: rows / 2.0,
            exchange_bytes: bytes / 2.0,
            probe_rows: rows / 3.0,
            morsels: (bytes / 16e6).ceil().max(1.0),
            source_rows: rows,
            ..PipelineWork::default()
        };
        let mut bigger = base.clone();
        bigger.filter_rows *= scale;
        bigger.exchange_bytes *= scale;
        bigger.probe_rows *= scale;
        let d_base = est.pipeline_duration(&base, dop);
        let d_big = est.pipeline_duration(&bigger, dop);
        prop_assert!(d_big >= d_base, "{d_big} < {d_base} after scaling work by {scale}");
    }

    /// Throughput never decreases when work shrinks; duration at dop d+
    /// never beats the morsel floor.
    #[test]
    fn dop_scaling_bounded_by_floor(rows in 1e3f64..1e7, dop in 1u32..512) {
        let cat = catalog();
        let est = CostEstimator::new(&cat, EstimatorConfig::default());
        let w = PipelineWork {
            filter_rows: rows,
            morsels: 4.0,
            source_rows: rows,
            ..PipelineWork::default()
        };
        let d = est.pipeline_duration(&w, dop).as_secs_f64();
        let floor = est.pipeline_duration(&w, u32::MAX).as_secs_f64();
        prop_assert!(d + 1e-12 >= floor, "duration {d} beat the granularity floor {floor}");
    }
}
