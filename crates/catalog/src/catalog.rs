//! The catalog: name → table + statistics.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use ci_storage::table::Table;
use ci_storage::tiers::{ObjectStoreDir, TierStore};
use ci_types::{CiError, Result, TableId};

use crate::tstats::TableStats;

/// A registered table with its statistics.
#[derive(Debug, Clone)]
pub struct TableEntry {
    /// The table data (shared; executors read it concurrently).
    pub table: Arc<Table>,
    /// Statistics computed at registration.
    pub stats: Arc<TableStats>,
}

/// The warehouse catalog. Name lookup is case-insensitive (names are
/// normalized to lowercase, matching the SQL front end).
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    by_name: HashMap<String, TableEntry>,
    by_id: HashMap<TableId, String>,
    /// Lazily-created on-disk page store (`CIPF` files). Clones of the
    /// catalog share the same store, so scratch copies (what-if analyses)
    /// don't re-materialize files.
    store: OnceLock<Arc<ObjectStoreDir>>,
    /// Lazily-created physical tier stack over `store`.
    tiers: OnceLock<Arc<TierStore>>,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Registers a table, dictionary-encoding its string columns ("interned
    /// per table at load") and computing its statistics. Replaces any
    /// existing table of the same name (re-registration models background
    /// refresh, e.g. after a recluster tuning action).
    pub fn register(&mut self, table: Table) -> TableEntry {
        let table = table.dict_encoded();
        let stats = Arc::new(TableStats::compute(&table));
        let name = table.name.to_lowercase();
        let id = table.id;
        let entry = TableEntry {
            table: Arc::new(table),
            stats,
        };
        self.by_id.insert(id, name.clone());
        self.by_name.insert(name, entry.clone());
        // Write-through: if the on-disk page store is already materialized,
        // keep it in sync so a tiered executor never reads stale files.
        // Best-effort by design — `register` predates fallible storage, and
        // the executor's own `ensure_table` surfaces any write error at
        // query time.
        if let Some(store) = self.store.get() {
            let _ = store.ensure_table(&entry.table);
        }
        entry
    }

    /// The on-disk page store backing `CI_PAGE_SOURCE=disk|tiered`, created
    /// under a temp directory on first use. Errors surface as
    /// [`CiError::Storage`].
    pub fn page_store(&self) -> Result<Arc<ObjectStoreDir>> {
        if let Some(s) = self.store.get() {
            return Ok(s.clone());
        }
        let built = Arc::new(ObjectStoreDir::temp()?);
        Ok(self.store.get_or_init(|| built).clone())
    }

    /// The physical tier stack (memory / SSD cache over [`page_store`]),
    /// created on first use.
    ///
    /// [`page_store`]: Catalog::page_store
    pub fn tier_store(&self) -> Result<Arc<TierStore>> {
        if let Some(t) = self.tiers.get() {
            return Ok(t.clone());
        }
        let built = Arc::new(TierStore::new(self.page_store()?)?);
        Ok(self.tiers.get_or_init(|| built).clone())
    }

    /// Looks a table up by name.
    pub fn get(&self, name: &str) -> Result<&TableEntry> {
        self.by_name
            .get(&name.to_lowercase())
            .ok_or_else(|| CiError::Catalog(format!("unknown table '{name}'")))
    }

    /// Looks a table up by id.
    pub fn get_by_id(&self, id: TableId) -> Result<&TableEntry> {
        let name = self
            .by_id
            .get(&id)
            .ok_or_else(|| CiError::Catalog(format!("unknown table id {id}")))?;
        self.get(name)
    }

    /// Iterates over all registered tables.
    pub fn tables(&self) -> impl Iterator<Item = (&str, &TableEntry)> {
        self.by_name.iter().map(|(n, e)| (n.as_str(), e))
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.by_name.len()
    }

    /// `true` when the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.by_name.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc as StdArc;

    use ci_storage::batch::RecordBatch;
    use ci_storage::column::ColumnData;
    use ci_storage::schema::{Field, Schema};
    use ci_storage::table::table_from_batch;
    use ci_storage::value::DataType;

    use super::*;

    fn sample(name: &str, id: u32) -> Table {
        let schema = StdArc::new(Schema::of(vec![Field::new("id", DataType::Int64)]));
        table_from_batch(
            TableId::new(id),
            name,
            RecordBatch::new(schema, vec![ColumnData::Int64(vec![1, 2, 3])]).unwrap(),
        )
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        c.register(sample("Orders", 0));
        assert_eq!(c.len(), 1);
        let e = c.get("orders").unwrap();
        assert_eq!(e.stats.row_count, 3);
        // Case-insensitive.
        assert!(c.get("ORDERS").is_ok());
        assert!(c.get("nope").is_err());
    }

    #[test]
    fn lookup_by_id() {
        let mut c = Catalog::new();
        c.register(sample("t1", 7));
        assert!(c.get_by_id(TableId::new(7)).is_ok());
        assert!(c.get_by_id(TableId::new(8)).is_err());
    }

    #[test]
    fn reregistration_replaces() {
        let mut c = Catalog::new();
        c.register(sample("t", 0));
        let schema = StdArc::new(Schema::of(vec![Field::new("id", DataType::Int64)]));
        let bigger = table_from_batch(
            TableId::new(0),
            "t",
            RecordBatch::new(schema, vec![ColumnData::Int64(vec![1, 2, 3, 4, 5])]).unwrap(),
        );
        c.register(bigger);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get("t").unwrap().stats.row_count, 5);
    }

    #[test]
    fn iteration() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register(sample("a", 0));
        c.register(sample("b", 1));
        let mut names: Vec<_> = c.tables().map(|(n, _)| n.to_owned()).collect();
        names.sort();
        assert_eq!(names, vec!["a", "b"]);
    }
}
