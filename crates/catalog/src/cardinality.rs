//! Cardinality estimation with controllable error injection.
//!
//! Estimates follow the classic System-R playbook (histogram selectivities,
//! NDV-based join estimates, independence across conjuncts) — good enough to
//! plan with, wrong enough to matter. The [`ErrorInjector`] deterministically
//! perturbs estimates to emulate the misestimation regimes of §3.3, letting
//! experiments dial q-error from 1 (oracle) upward and measure how each
//! auto-scaling policy copes.

use ci_storage::pruning::ColumnBound;
use ci_types::DetRng;

use crate::tstats::TableStats;

/// Selectivity assumed for predicates we cannot model (e.g. string ranges
/// without histograms).
pub const DEFAULT_SELECTIVITY: f64 = 0.1;

/// Pure estimation routines over table statistics.
#[derive(Debug, Clone, Default)]
pub struct CardinalityEstimator;

impl CardinalityEstimator {
    /// New estimator.
    pub fn new() -> Self {
        CardinalityEstimator
    }

    /// Estimated selectivity of one bound on one column.
    pub fn bound_selectivity(&self, stats: &TableStats, bound: &ColumnBound) -> f64 {
        match stats.columns.get(bound.column) {
            None => DEFAULT_SELECTIVITY,
            Some(col) => {
                // Equality on a column with known NDV: 1/ndv beats the
                // histogram point estimate.
                if let (
                    ci_storage::pruning::Endpoint::Inclusive(lo),
                    ci_storage::pruning::Endpoint::Inclusive(hi),
                ) = (&bound.lower, &bound.upper)
                {
                    if lo == hi {
                        // Dict-encoded string column: the dictionary is the
                        // exact value domain. A literal absent from it
                        // matches nothing; estimate one row (conservative
                        // floor, never zero) instead of rows/ndv.
                        if let (Some(dict), ci_storage::value::Value::Str(s)) =
                            (&col.dictionary, lo)
                        {
                            return if dict.id_of(s).is_some() {
                                1.0 / col.ndv.max(1) as f64
                            } else {
                                1.0 / stats.row_count.max(1) as f64
                            };
                        }
                        if col.ndv > 0 {
                            return 1.0 / col.ndv as f64;
                        }
                    }
                }
                match &col.histogram {
                    Some(h) => h.bound_selectivity(bound),
                    None => DEFAULT_SELECTIVITY,
                }
            }
        }
    }

    /// Estimated output rows of a conjunctive filter (independence assumed).
    pub fn filter_rows(&self, stats: &TableStats, bounds: &[ColumnBound]) -> f64 {
        let sel: f64 = bounds
            .iter()
            .map(|b| self.bound_selectivity(stats, b))
            .product();
        (stats.row_count as f64 * sel).max(0.0)
    }

    /// Estimated equi-join output: `|L|·|R| / max(ndv_L, ndv_R)`.
    pub fn join_rows(&self, left_rows: f64, left_ndv: u64, right_rows: f64, right_ndv: u64) -> f64 {
        let denom = left_ndv.max(right_ndv).max(1) as f64;
        (left_rows * right_rows / denom).max(0.0)
    }

    /// Estimated group count of an aggregation over columns with the given
    /// NDVs, capped by input rows (and damped for multi-column keys, since
    /// the full cross product never materializes).
    pub fn group_rows(&self, input_rows: f64, ndvs: &[u64]) -> f64 {
        if ndvs.is_empty() {
            return 1.0; // global aggregate
        }
        let mut product = 1.0f64;
        for &n in ndvs {
            product *= n.max(1) as f64;
        }
        // Classic attenuation: cap by input size.
        product.min(input_rows).max(1.0)
    }
}

/// Deterministically injects multiplicative error into cardinality
/// estimates. `factor_bound = 1.0` is the oracle; `4.0` draws a log-uniform
/// factor in `[1/4, 4]` per estimation site.
#[derive(Debug, Clone)]
pub struct ErrorInjector {
    rng: DetRng,
    factor_bound: f64,
}

impl ErrorInjector {
    /// Oracle injector: no error.
    pub fn oracle() -> ErrorInjector {
        ErrorInjector {
            rng: DetRng::seed_from_u64(0),
            factor_bound: 1.0,
        }
    }

    /// Injector drawing factors in `[1/bound, bound]` from `seed`.
    pub fn with_bound(seed: u64, factor_bound: f64) -> ErrorInjector {
        assert!(factor_bound >= 1.0);
        ErrorInjector {
            rng: DetRng::seed_from_u64(seed),
            factor_bound,
        }
    }

    /// The configured error bound.
    pub fn bound(&self) -> f64 {
        self.factor_bound
    }

    /// Perturbs one estimate. Consecutive calls advance the stream, so each
    /// estimation site in a plan gets its own factor, deterministically.
    pub fn perturb(&mut self, estimate: f64) -> f64 {
        if self.factor_bound <= 1.0 {
            return estimate;
        }
        estimate * self.rng.error_factor(self.factor_bound)
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ci_storage::batch::RecordBatch;
    use ci_storage::column::ColumnData;
    use ci_storage::schema::{Field, Schema};
    use ci_storage::table::table_from_batch;
    use ci_storage::value::{DataType, Value};
    use ci_types::TableId;

    use super::*;

    fn stats() -> TableStats {
        let schema = Arc::new(Schema::of(vec![
            Field::new("k", DataType::Int64),
            Field::new("v", DataType::Float64),
        ]));
        let ks: Vec<i64> = (0..1000).map(|i| i % 100).collect();
        let vs: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let t = table_from_batch(
            TableId::new(0),
            "t",
            RecordBatch::new(schema, vec![ColumnData::Int64(ks), ColumnData::Float64(vs)]).unwrap(),
        );
        TableStats::compute(&t)
    }

    #[test]
    fn equality_uses_ndv() {
        let s = stats();
        let est = CardinalityEstimator::new();
        let sel = est.bound_selectivity(&s, &ColumnBound::eq(0, Value::Int(5)));
        assert!((sel - 0.01).abs() < 1e-9, "1/ndv = 1/100, got {sel}");
        let rows = est.filter_rows(&s, &[ColumnBound::eq(0, Value::Int(5))]);
        assert!((rows - 10.0).abs() < 1e-6);
    }

    #[test]
    fn string_equality_probes_dictionary_domain() {
        let schema = Arc::new(Schema::of(vec![Field::new("g", DataType::Utf8)]));
        let gs: Vec<String> = (0..1000).map(|i| format!("g{}", i % 25)).collect();
        let t = table_from_batch(
            TableId::new(0),
            "t",
            RecordBatch::new(schema, vec![ColumnData::Utf8(gs)]).unwrap(),
        )
        .dict_encoded();
        let s = TableStats::compute(&t);
        let est = CardinalityEstimator::new();
        // Present literal: exact 1/ndv.
        let hit = est.bound_selectivity(&s, &ColumnBound::eq(0, Value::from("g7")));
        assert!((hit - 1.0 / 25.0).abs() < 1e-12, "hit {hit}");
        // Absent literal: the dictionary proves zero matches; estimate a
        // one-row floor instead of rows/ndv.
        let miss = est.bound_selectivity(&s, &ColumnBound::eq(0, Value::from("nope")));
        assert!((miss - 1.0 / 1000.0).abs() < 1e-12, "miss {miss}");
        assert!(
            (est.filter_rows(&s, &[ColumnBound::eq(0, Value::from("nope"))]) - 1.0).abs() < 1e-9
        );
    }

    #[test]
    fn range_uses_histogram() {
        let s = stats();
        let est = CardinalityEstimator::new();
        let b = ColumnBound::range(
            1,
            Some((Value::Float(0.0), true)),
            Some((Value::Float(249.0), true)),
        );
        let rows = est.filter_rows(&s, &[b]);
        assert!((rows - 250.0).abs() < 30.0, "rows {rows}");
    }

    #[test]
    fn conjunction_multiplies() {
        let s = stats();
        let est = CardinalityEstimator::new();
        let rows = est.filter_rows(
            &s,
            &[
                ColumnBound::eq(0, Value::Int(5)),
                ColumnBound::range(
                    1,
                    Some((Value::Float(0.0), true)),
                    Some((Value::Float(499.0), true)),
                ),
            ],
        );
        // 0.01 * ~0.5 * 1000 = ~5.
        assert!((rows - 5.0).abs() < 1.5, "rows {rows}");
    }

    #[test]
    fn join_estimate_formula() {
        let est = CardinalityEstimator::new();
        let j = est.join_rows(1000.0, 100, 500.0, 50);
        assert!((j - 5000.0).abs() < 1e-9);
        // Degenerate NDVs don't divide by zero.
        assert!(est.join_rows(10.0, 0, 10.0, 0).is_finite());
    }

    #[test]
    fn group_estimates() {
        let est = CardinalityEstimator::new();
        assert_eq!(est.group_rows(1000.0, &[]), 1.0);
        assert_eq!(est.group_rows(1000.0, &[10]), 10.0);
        assert_eq!(est.group_rows(1000.0, &[100, 100]), 1000.0); // capped
        assert_eq!(est.group_rows(0.0, &[10]), 1.0);
    }

    #[test]
    fn oracle_injector_is_identity() {
        let mut inj = ErrorInjector::oracle();
        assert_eq!(inj.perturb(123.0), 123.0);
        assert_eq!(inj.perturb(123.0), 123.0);
    }

    #[test]
    fn injector_is_deterministic_and_bounded() {
        let mut a = ErrorInjector::with_bound(7, 4.0);
        let mut b = ErrorInjector::with_bound(7, 4.0);
        for _ in 0..100 {
            let x = a.perturb(100.0);
            assert_eq!(x, b.perturb(100.0));
            assert!((25.0..=400.0).contains(&x), "x = {x}");
        }
    }

    #[test]
    fn injector_actually_errs() {
        let mut inj = ErrorInjector::with_bound(3, 4.0);
        let vals: Vec<u64> = (0..10).map(|_| inj.perturb(100.0).to_bits()).collect();
        let uniq: std::collections::BTreeSet<_> = vals.into_iter().collect();
        assert!(uniq.len() > 5, "expected diverse factors");
    }
}
