//! Equi-width histograms for numeric columns.

use ci_storage::pruning::{ColumnBound, Endpoint};
use ci_storage::value::Value;

/// An equi-width histogram over a numeric domain.
///
/// Buckets span `[lo, hi]` uniformly; counts are exact at build time.
/// Selectivity of a range bound is estimated with the uniform-within-bucket
/// assumption — the textbook estimator, intentionally fallible so the DOP
/// monitor has realistic errors to correct.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram with `buckets` buckets from numeric samples.
    /// Returns `None` for empty input or a degenerate (single-point) domain
    /// handled as a one-bucket histogram.
    pub fn build(values: impl Iterator<Item = f64>, buckets: usize) -> Option<Histogram> {
        let vals: Vec<f64> = values.filter(|v| v.is_finite()).collect();
        if vals.is_empty() || buckets == 0 {
            return None;
        }
        let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if lo == hi {
            return Some(Histogram {
                lo,
                hi,
                counts: vec![vals.len() as u64],
                total: vals.len() as u64,
            });
        }
        let mut counts = vec![0u64; buckets];
        let width = (hi - lo) / buckets as f64;
        for v in &vals {
            let mut b = ((v - lo) / width) as usize;
            if b >= buckets {
                b = buckets - 1; // v == hi lands in the last bucket
            }
            counts[b] += 1;
        }
        Some(Histogram {
            lo,
            hi,
            counts,
            total: vals.len() as u64,
        })
    }

    /// Total row count the histogram covers.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Domain minimum.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Domain maximum.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Estimated fraction of rows with value in `[a, b]` (clamped to the
    /// domain), using uniform interpolation inside buckets.
    pub fn range_selectivity(&self, a: f64, b: f64) -> f64 {
        if self.total == 0 || b < a {
            return 0.0;
        }
        let a = a.max(self.lo);
        let b = b.min(self.hi);
        if b < a {
            return 0.0;
        }
        if self.lo == self.hi {
            // Single-point domain: all rows match iff the point is inside.
            return if a <= self.lo && self.lo <= b {
                1.0
            } else {
                0.0
            };
        }
        let width = (self.hi - self.lo) / self.counts.len() as f64;
        let mut matched = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let b_lo = self.lo + i as f64 * width;
            let b_hi = b_lo + width;
            let ov_lo = a.max(b_lo);
            let ov_hi = b.min(b_hi);
            if ov_hi > ov_lo {
                matched += c as f64 * (ov_hi - ov_lo) / width;
            } else if ov_hi == ov_lo && (ov_lo == b_lo || ov_hi == b_hi) && a == b {
                // Point query on a bucket boundary: attribute to this bucket once.
                matched += c as f64 * 0.0;
            }
        }
        // Point queries (a == b) match zero measure under the continuous
        // model; fall back to 1/total-scaled bucket density.
        if a == b {
            let mut bkt = ((a - self.lo) / width) as usize;
            if bkt >= self.counts.len() {
                bkt = self.counts.len() - 1;
            }
            return (self.counts[bkt] as f64 / width.max(1e-12)).min(self.total as f64)
                / self.total as f64
                * 1.0_f64.min(width);
        }
        (matched / self.total as f64).clamp(0.0, 1.0)
    }

    /// Selectivity of a [`ColumnBound`] against this histogram. Non-numeric
    /// bound values fall back to a default selectivity of `0.1`.
    pub fn bound_selectivity(&self, bound: &ColumnBound) -> f64 {
        let num = |v: &Value| v.as_f64();
        let lo = match &bound.lower {
            Endpoint::Unbounded => Some(f64::NEG_INFINITY),
            Endpoint::Inclusive(v) | Endpoint::Exclusive(v) => num(v),
        };
        let hi = match &bound.upper {
            Endpoint::Unbounded => Some(f64::INFINITY),
            Endpoint::Inclusive(v) | Endpoint::Exclusive(v) => num(v),
        };
        match (lo, hi) {
            (Some(a), Some(b)) => self.range_selectivity(a, b),
            _ => 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform() -> Histogram {
        Histogram::build((0..1000).map(|i| i as f64), 10).unwrap()
    }

    #[test]
    fn uniform_range_selectivity() {
        let h = uniform();
        assert!((h.range_selectivity(0.0, 999.0) - 1.0).abs() < 0.01);
        let half = h.range_selectivity(0.0, 499.5);
        assert!((half - 0.5).abs() < 0.01, "half = {half}");
        let tenth = h.range_selectivity(100.0, 199.9);
        assert!((tenth - 0.1).abs() < 0.01, "tenth = {tenth}");
    }

    #[test]
    fn out_of_domain_ranges() {
        let h = uniform();
        assert_eq!(h.range_selectivity(2000.0, 3000.0), 0.0);
        assert_eq!(h.range_selectivity(-10.0, -1.0), 0.0);
        assert_eq!(h.range_selectivity(500.0, 100.0), 0.0);
    }

    #[test]
    fn skewed_data_buckets() {
        // 90% of mass in [0, 10), 10% in [90, 100).
        let vals = (0..900)
            .map(|i| (i % 10) as f64)
            .chain((0..100).map(|i| 90.0 + (i % 10) as f64));
        let h = Histogram::build(vals, 10).unwrap();
        let head = h.range_selectivity(0.0, 9.99);
        assert!(head > 0.8, "head {head}");
        let tail = h.range_selectivity(90.0, 99.99);
        assert!(tail < 0.2, "tail {tail}");
    }

    #[test]
    fn single_point_domain() {
        let h = Histogram::build(std::iter::repeat_n(5.0, 10), 4).unwrap();
        assert_eq!(h.range_selectivity(0.0, 10.0), 1.0);
        assert_eq!(h.range_selectivity(6.0, 10.0), 0.0);
    }

    #[test]
    fn empty_input_is_none() {
        assert!(Histogram::build(std::iter::empty(), 8).is_none());
        assert!(Histogram::build([1.0].into_iter(), 0).is_none());
    }

    #[test]
    fn bound_selectivity_uses_endpoints() {
        let h = uniform();
        let b = ColumnBound::range(0, Some((Value::Int(0), true)), Some((Value::Int(99), true)));
        let s = h.bound_selectivity(&b);
        assert!((s - 0.1).abs() < 0.02, "s = {s}");
        // String bound on numeric histogram: default fallback.
        let sb = ColumnBound::eq(0, Value::from("x"));
        assert_eq!(h.bound_selectivity(&sb), 0.1);
    }
}
