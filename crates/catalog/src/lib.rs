//! Metadata service (Figure 3): catalog, table statistics, and cardinality
//! estimation.
//!
//! The paper leans on this component twice:
//!
//! * §3.1 — the cost estimator consumes "logical information such as the plan
//!   shape and the input/output cardinality for each operator", which come
//!   from here;
//! * §3.3 — "a static DOP assignment produced in query optimization could
//!   suffer from errors in cardinality estimations", which the DOP monitor
//!   corrects at run time. To evaluate that (experiment E6) we must be able
//!   to *inject* controlled estimation error; [`cardinality::ErrorInjector`]
//!   is that knob.

pub mod cardinality;
pub mod catalog;
pub mod histogram;
pub mod tstats;

pub use cardinality::{CardinalityEstimator, ErrorInjector};
pub use catalog::{Catalog, TableEntry};
pub use histogram::Histogram;
pub use tstats::{ColumnStats, TableStats};
