//! Table and column statistics.
//!
//! The metadata service keeps "low-latency access to ... table statistics
//! necessary for query planning" (§3). Statistics are computed once at load
//! (or refreshed by background compute) and read by the cardinality
//! estimator and cost models.

use std::collections::HashSet;
use std::sync::Arc;

use ci_storage::column::ColumnData;
use ci_storage::dict::Dictionary;
use ci_storage::table::Table;
use ci_storage::value::Value;

use crate::histogram::Histogram;

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Number of distinct values (exact at build time; for dict-encoded
    /// string columns this is counted directly from the dictionary ids, no
    /// hashing involved).
    pub ndv: u64,
    /// Minimum value, if the column is non-empty.
    pub min: Option<Value>,
    /// Maximum value, if the column is non-empty.
    pub max: Option<Value>,
    /// Equi-width histogram for numeric columns.
    pub histogram: Option<Histogram>,
    /// Average decoded (logical) width in bytes — what a row of this column
    /// occupies once decoded into operators.
    pub avg_width: f64,
    /// Average *encoded* width in bytes per row under the size-picked page
    /// codec, excluding dictionary sections (those ship once, not per row).
    /// The wire width exchange and gather cost terms charge.
    pub avg_encoded_width: f64,
    /// The table-wide dictionary, when the column is dict-encoded. The
    /// exact value domain: [`crate::CardinalityEstimator`] probes it to give
    /// string-equality predicates `1/ndv` selectivity on hits and a one-row
    /// floor on literals provably absent from the column.
    pub dictionary: Option<Arc<Dictionary>>,
}

/// Statistics for one table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Total rows.
    pub row_count: u64,
    /// Total logical (decoded) bytes.
    pub total_bytes: u64,
    /// Total encoded bytes — the billed object-store footprint.
    pub total_encoded_bytes: u64,
    /// Number of micro-partitions.
    pub partition_count: usize,
    /// Per-column stats, in schema order.
    pub columns: Vec<ColumnStats>,
}

/// Number of histogram buckets used at stats-build time.
const HISTOGRAM_BUCKETS: usize = 64;

impl TableStats {
    /// Computes full statistics by scanning the table once.
    pub fn compute(table: &Table) -> TableStats {
        let arity = table.schema.arity();
        let row_count = table.row_count();
        let mut columns = Vec::with_capacity(arity);
        for col_idx in 0..arity {
            columns.push(Self::column_stats(table, col_idx));
        }
        TableStats {
            row_count,
            total_bytes: table.total_bytes(),
            total_encoded_bytes: table.total_encoded_bytes(),
            partition_count: table.partition_count(),
            columns,
        }
    }

    fn column_stats(table: &Table, col_idx: usize) -> ColumnStats {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut bytes = 0usize;
        let mut rows = 0usize;
        // Encoded payload bytes from the partitions' page accounting,
        // excluding inline dictionary sections (wire exchanges ship those
        // once per column, not per row).
        let encoded_payload: u64 = table
            .partitions
            .iter()
            .filter_map(|p| p.pages.get(col_idx))
            .map(|pg| pg.encoded_bytes - pg.dict_bytes)
            .sum();

        // NDV: dict-encoded columns count referenced ids against the shared
        // dictionary (exact, no hashing); everything else hashes a canonical
        // encoding of each value. The seen-ids fast path covers both string
        // and int dictionaries.
        let shared_dict = table.column_dictionary(col_idx).cloned();
        let shared_int_dict = table.column_int_dictionary(col_idx).cloned();
        let shared_entries = shared_dict
            .as_ref()
            .map(|d| d.len())
            .or(shared_int_dict.as_ref().map(|d| d.len()));
        let mut seen_ids = vec![false; shared_entries.unwrap_or(0)];
        let mut distinct: HashSet<u64> = HashSet::new();
        let mut numeric: Vec<f64> = Vec::new();
        let mut is_numeric = true;

        for part in &table.partitions {
            let col = part.batch.column(col_idx);
            rows += col.len();
            bytes += col.byte_size();
            if let Some((pmin, pmax)) = col.min_max() {
                min = Some(match min {
                    None => pmin.clone(),
                    Some(m) => m.min_sql(pmin.clone()),
                });
                max = Some(match max {
                    None => pmax,
                    Some(m) => m.max_sql(pmax),
                });
            }
            match col {
                ColumnData::Int64(v) => {
                    for &x in v {
                        distinct.insert(x as u64);
                        numeric.push(x as f64);
                    }
                }
                ColumnData::Float64(v) => {
                    for &x in v {
                        distinct.insert(x.to_bits());
                        numeric.push(x);
                    }
                }
                ColumnData::Utf8(v) => {
                    is_numeric = false;
                    for s in v {
                        distinct.insert(fnv1a(s.as_bytes()));
                    }
                }
                ColumnData::Bool(v) => {
                    is_numeric = false;
                    for &b in v {
                        distinct.insert(b as u64);
                    }
                }
                ColumnData::Dict { ids, dict } => {
                    is_numeric = false;
                    if shared_dict.is_some() {
                        for &id in ids {
                            seen_ids[id as usize] = true;
                        }
                    } else {
                        // Partitions carry unrelated dictionaries: fall back
                        // to value hashing so ids from different dicts never
                        // collide.
                        for &id in ids {
                            distinct.insert(fnv1a(dict.get(id).as_bytes()));
                        }
                    }
                }
                ColumnData::DictInt { ids, dict } => {
                    if shared_int_dict.is_some() {
                        for &id in ids {
                            seen_ids[id as usize] = true;
                            numeric.push(dict.get(id) as f64);
                        }
                    } else {
                        for &id in ids {
                            let x = dict.get(id);
                            distinct.insert(x as u64);
                            numeric.push(x as f64);
                        }
                    }
                }
            }
        }

        let ndv = if shared_entries.is_some() {
            seen_ids.iter().filter(|&&s| s).count() as u64
        } else {
            distinct.len() as u64
        };
        let histogram = if is_numeric {
            Histogram::build(numeric.into_iter(), HISTOGRAM_BUCKETS)
        } else {
            None
        };
        ColumnStats {
            ndv,
            min,
            max,
            histogram,
            avg_width: if rows == 0 {
                0.0
            } else {
                bytes as f64 / rows as f64
            },
            avg_encoded_width: if rows == 0 {
                0.0
            } else {
                encoded_payload as f64 / rows as f64
            },
            dictionary: shared_dict,
        }
    }

    /// Average row width in bytes.
    pub fn avg_row_width(&self) -> f64 {
        self.columns.iter().map(|c| c.avg_width).sum()
    }
}

/// FNV-1a for string NDV hashing (collision odds negligible at our scales).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ci_storage::batch::RecordBatch;
    use ci_storage::schema::{Field, Schema};
    use ci_storage::table::TableBuilder;
    use ci_storage::value::DataType;
    use ci_types::TableId;

    use super::*;

    fn table() -> Table {
        let schema = Arc::new(Schema::of(vec![
            Field::new("id", DataType::Int64),
            Field::new("grp", DataType::Utf8),
        ]));
        let mut b = TableBuilder::new(TableId::new(0), "t", schema.clone(), 16).unwrap();
        let ids: Vec<i64> = (0..100).collect();
        let grps: Vec<String> = (0..100).map(|i| format!("g{}", i % 5)).collect();
        b.append(
            RecordBatch::new(schema, vec![ColumnData::Int64(ids), ColumnData::Utf8(grps)]).unwrap(),
        )
        .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn basic_table_stats() {
        let s = TableStats::compute(&table());
        assert_eq!(s.row_count, 100);
        assert_eq!(s.partition_count, 7); // 6 * 16 + 4
        assert_eq!(s.columns.len(), 2);
    }

    #[test]
    fn ndv_exact() {
        let s = TableStats::compute(&table());
        assert_eq!(s.columns[0].ndv, 100);
        assert_eq!(s.columns[1].ndv, 5);
    }

    #[test]
    fn min_max_span_partitions() {
        let s = TableStats::compute(&table());
        assert_eq!(s.columns[0].min, Some(Value::Int(0)));
        assert_eq!(s.columns[0].max, Some(Value::Int(99)));
        assert_eq!(s.columns[1].min, Some(Value::from("g0")));
        assert_eq!(s.columns[1].max, Some(Value::from("g4")));
    }

    #[test]
    fn histogram_only_for_numeric() {
        let s = TableStats::compute(&table());
        assert!(s.columns[0].histogram.is_some());
        assert!(s.columns[1].histogram.is_none());
        let h = s.columns[0].histogram.as_ref().unwrap();
        let sel = h.range_selectivity(0.0, 49.0);
        assert!((sel - 0.5).abs() < 0.05, "sel {sel}");
    }

    #[test]
    fn widths_are_positive() {
        let s = TableStats::compute(&table());
        assert!((s.columns[0].avg_width - 8.0).abs() < 1e-9);
        assert!(s.columns[1].avg_width > 0.0);
        assert!(s.avg_row_width() > 8.0);
    }

    #[test]
    fn encoded_widths_reflect_compression() {
        let s = TableStats::compute(&table().dict_encoded());
        // grp has 5 distinct values: ids bit-pack to 3 bits, far under the
        // decoded "g0"-string width of 6 bytes.
        assert!(
            s.columns[1].avg_encoded_width < s.columns[1].avg_width / 2.0,
            "encoded {} vs decoded {}",
            s.columns[1].avg_encoded_width,
            s.columns[1].avg_width
        );
        assert!(s.columns[1].avg_encoded_width > 0.0);
        // The table-level encoded footprint beats the logical one.
        assert!(s.total_encoded_bytes > 0);
        assert!(s.total_encoded_bytes < s.total_bytes);
    }

    #[test]
    fn int_avg_encoded_width_reflects_delta_pages() {
        // The id column is sorted within each partition, so its pages
        // collapse under the Delta codec: the per-row wire width the
        // exchange cost terms charge drops far below the 8-byte decoded
        // width, without any dictionary in play.
        let s = TableStats::compute(&table());
        assert!((s.columns[0].avg_width - 8.0).abs() < 1e-9);
        assert!(
            s.columns[0].avg_encoded_width < s.columns[0].avg_width / 2.0,
            "sorted ints must encode below half their decoded width: {}",
            s.columns[0].avg_encoded_width
        );
        assert!(s.columns[0].avg_encoded_width > 0.0);
        assert!(s.total_encoded_bytes < s.total_bytes);
    }

    #[test]
    fn dict_encoded_table_reports_exact_ndv_from_dictionary() {
        let t = table().dict_encoded();
        let s = TableStats::compute(&t);
        assert_eq!(s.columns[1].ndv, 5);
        let dict = s.columns[1].dictionary.as_ref().expect("shared dictionary");
        assert_eq!(dict.len(), 5);
        // Non-string columns carry no dictionary.
        assert!(s.columns[0].dictionary.is_none());
        // Value-level stats are encoding-independent.
        let naive = TableStats::compute(&table());
        assert_eq!(s.columns[1].min, naive.columns[1].min);
        assert_eq!(s.columns[1].max, naive.columns[1].max);
        assert!((s.columns[1].avg_width - naive.columns[1].avg_width).abs() < 1e-12);
    }

    #[test]
    fn empty_table_stats() {
        let schema = Arc::new(Schema::of(vec![Field::new("id", DataType::Int64)]));
        let t = TableBuilder::new(TableId::new(1), "e", schema, 8)
            .unwrap()
            .finish()
            .unwrap();
        let s = TableStats::compute(&t);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.columns[0].ndv, 0);
        assert_eq!(s.columns[0].min, None);
        assert!(s.columns[0].histogram.is_none());
    }
}
