//! CAB — the Cloud Analytics Bench used by every experiment.
//!
//! The paper motivates its architecture with analytical star-schema
//! workloads on elastic clouds but (being a vision paper) ships no
//! benchmark. CAB is this reproduction's stand-in: a deterministic,
//! scale-factor-parameterized TPC-H-flavoured star schema
//! ([`gen::CabGenerator`]), twelve parameterized query templates spanning
//! the operator space ([`queries`]), and workload traces mixing recurring
//! and ad-hoc queries with Poisson arrivals ([`trace`]) — the recurring
//! structure is what the Statistics Service summarizes and the What-If
//! Service monetizes (§4).

pub mod gen;
pub mod queries;
pub mod trace;

pub use gen::{CabConfig, CabGenerator};
pub use queries::{QueryTemplate, TEMPLATES};
pub use trace::{TraceConfig, TraceEntry, WorkloadTrace};
