//! Workload traces: recurring + ad-hoc query streams over virtual time.

use ci_types::{DetRng, SimTime};

use crate::gen::CabGenerator;
use crate::queries::{canonical, instantiate, TEMPLATES};

/// Trace generation parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Total trace span in hours of virtual time.
    pub hours: f64,
    /// Arrival rate of recurring queries, per hour.
    pub recurring_per_hour: f64,
    /// Arrival rate of ad-hoc (fresh-parameter) queries, per hour.
    pub adhoc_per_hour: f64,
    /// Which template ids recur (with canonical parameters).
    pub recurring_templates: Vec<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            hours: 24.0,
            recurring_per_hour: 20.0,
            adhoc_per_hour: 5.0,
            recurring_templates: vec![1, 3, 6, 9, 12],
            seed: 7,
        }
    }
}

/// One query arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Arrival time.
    pub at: SimTime,
    /// SQL text.
    pub sql: String,
    /// Template id.
    pub template: usize,
    /// `true` when part of the recurring workload (canonical parameters).
    pub recurring: bool,
}

/// A generated workload trace, sorted by arrival time.
#[derive(Debug, Clone)]
pub struct WorkloadTrace {
    /// Arrivals in time order.
    pub entries: Vec<TraceEntry>,
}

impl WorkloadTrace {
    /// Generates a trace with Poisson arrivals for both streams.
    pub fn generate(config: &TraceConfig, gen: &CabGenerator) -> WorkloadTrace {
        let mut rng = DetRng::seed_from_u64(config.seed);
        let mut entries = Vec::new();
        let span_secs = config.hours * 3600.0;

        // Recurring stream: canonical instances of the chosen templates.
        if config.recurring_per_hour > 0.0 && !config.recurring_templates.is_empty() {
            let rate_per_sec = config.recurring_per_hour / 3600.0;
            let mut t = 0.0;
            let mut r = rng.fork(1);
            loop {
                t += r.exponential(rate_per_sec);
                if t >= span_secs {
                    break;
                }
                let id = *r.choose(&config.recurring_templates);
                entries.push(TraceEntry {
                    at: SimTime::from_secs_f64(t),
                    sql: canonical(id, gen),
                    template: id,
                    recurring: true,
                });
            }
        }

        // Ad-hoc stream: any template, fresh parameters each time.
        if config.adhoc_per_hour > 0.0 {
            let rate_per_sec = config.adhoc_per_hour / 3600.0;
            let mut t = 0.0;
            let mut r = rng.fork(2);
            loop {
                t += r.exponential(rate_per_sec);
                if t >= span_secs {
                    break;
                }
                let id = r.choose(&TEMPLATES).id;
                entries.push(TraceEntry {
                    at: SimTime::from_secs_f64(t),
                    sql: instantiate(id, &mut r, gen),
                    template: id,
                    recurring: false,
                });
            }
        }

        entries.sort_by_key(|e| e.at);
        WorkloadTrace { entries }
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_counts_near_expectation() {
        let gen = CabGenerator::at_scale(1.0);
        let cfg = TraceConfig {
            hours: 50.0,
            recurring_per_hour: 10.0,
            adhoc_per_hour: 2.0,
            ..TraceConfig::default()
        };
        let trace = WorkloadTrace::generate(&cfg, &gen);
        let expected = 50.0 * 12.0;
        let n = trace.len() as f64;
        assert!(
            (n - expected).abs() / expected < 0.2,
            "got {n}, expected ~{expected}"
        );
    }

    #[test]
    fn sorted_by_time_and_deterministic() {
        let gen = CabGenerator::at_scale(1.0);
        let cfg = TraceConfig::default();
        let a = WorkloadTrace::generate(&cfg, &gen);
        let b = WorkloadTrace::generate(&cfg, &gen);
        assert_eq!(a.entries, b.entries);
        for w in a.entries.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn recurring_entries_repeat_exact_sql() {
        let gen = CabGenerator::at_scale(1.0);
        let cfg = TraceConfig {
            hours: 20.0,
            recurring_per_hour: 30.0,
            adhoc_per_hour: 0.0,
            recurring_templates: vec![3],
            ..TraceConfig::default()
        };
        let trace = WorkloadTrace::generate(&cfg, &gen);
        assert!(!trace.is_empty());
        let first = &trace.entries[0].sql;
        for e in &trace.entries {
            assert!(e.recurring);
            assert_eq!(&e.sql, first, "canonical instances must be identical");
        }
    }

    #[test]
    fn adhoc_entries_vary() {
        let gen = CabGenerator::at_scale(1.0);
        let cfg = TraceConfig {
            hours: 30.0,
            recurring_per_hour: 0.0,
            adhoc_per_hour: 10.0,
            ..TraceConfig::default()
        };
        let trace = WorkloadTrace::generate(&cfg, &gen);
        let distinct: std::collections::BTreeSet<&str> =
            trace.entries.iter().map(|e| e.sql.as_str()).collect();
        assert!(
            distinct.len() > trace.len() / 2,
            "ad-hoc queries should vary"
        );
    }
}
