//! CAB data generation.
//!
//! Star schema:
//!
//! * `customer(c_id, c_region, c_segment)` — SF × 5 000 rows;
//! * `part(p_id, p_category, p_price)` — SF × 10 000 rows;
//! * `orders(o_id, o_cust, o_date, o_total)` — SF × 50 000 rows;
//! * `lineitem(l_order, l_part, l_qty, l_price, l_discount)` — SF × 200 000
//!   rows, Zipf-skewed part references (hot products).
//!
//! Everything derives deterministically from a seed, so every experiment is
//! exactly reproducible.

use std::sync::Arc;

use ci_catalog::Catalog;
use ci_storage::batch::RecordBatch;
use ci_storage::column::ColumnData;
use ci_storage::schema::{Field, Schema};
use ci_storage::table::TableBuilder;
use ci_storage::value::DataType;
use ci_types::{DetRng, Result, TableId};

/// Regions used for `c_region`.
pub const REGIONS: [&str; 5] = ["AMER", "EMEA", "APAC", "LATAM", "AFRICA"];
/// Market segments used for `c_segment`.
pub const SEGMENTS: [&str; 4] = ["retail", "wholesale", "online", "enterprise"];
/// Part categories.
pub const CATEGORIES: [&str; 8] = [
    "tools", "toys", "food", "media", "garden", "auto", "office", "apparel",
];
/// Number of distinct order dates (days).
pub const DATE_DOMAIN: i64 = 2_400;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct CabConfig {
    /// Scale factor: row counts scale linearly.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Rows per micro-partition.
    pub rows_per_partition: usize,
    /// Zipf skew of part references in lineitem (0 = uniform).
    pub part_skew: f64,
}

impl Default for CabConfig {
    fn default() -> Self {
        CabConfig {
            scale: 1.0,
            seed: 42,
            rows_per_partition: 8_192,
            part_skew: 0.6,
        }
    }
}

/// The CAB data generator.
#[derive(Debug, Clone)]
pub struct CabGenerator {
    config: CabConfig,
}

impl CabGenerator {
    /// New generator.
    pub fn new(config: CabConfig) -> CabGenerator {
        CabGenerator { config }
    }

    /// Convenience: generator at a given scale with default knobs.
    pub fn at_scale(scale: f64) -> CabGenerator {
        CabGenerator::new(CabConfig {
            scale,
            ..CabConfig::default()
        })
    }

    /// Row counts at the configured scale: (customer, part, orders, lineitem).
    pub fn row_counts(&self) -> (u64, u64, u64, u64) {
        let s = self.config.scale;
        (
            (s * 5_000.0).max(1.0) as u64,
            (s * 10_000.0).max(1.0) as u64,
            (s * 50_000.0).max(1.0) as u64,
            (s * 200_000.0).max(1.0) as u64,
        )
    }

    /// Generates all four tables into a fresh catalog.
    pub fn build_catalog(&self) -> Result<Catalog> {
        let mut catalog = Catalog::new();
        let mut rng = DetRng::seed_from_u64(self.config.seed);
        let (n_cust, n_part, n_orders, n_items) = self.row_counts();

        // customer
        {
            let schema = Arc::new(Schema::of(vec![
                Field::new("c_id", DataType::Int64),
                Field::new("c_region", DataType::Utf8),
                Field::new("c_segment", DataType::Utf8),
            ]));
            let mut r = rng.fork(1);
            let mut b = TableBuilder::new(
                TableId::new(0),
                "customer",
                schema.clone(),
                self.config.rows_per_partition,
            )?;
            b.append(RecordBatch::new(
                schema,
                vec![
                    ColumnData::Int64((0..n_cust as i64).collect()),
                    ColumnData::Utf8(
                        (0..n_cust)
                            .map(|_| (*r.choose(&REGIONS)).to_owned())
                            .collect(),
                    ),
                    ColumnData::Utf8(
                        (0..n_cust)
                            .map(|_| (*r.choose(&SEGMENTS)).to_owned())
                            .collect(),
                    ),
                ],
            )?)?;
            catalog.register(b.finish()?);
        }

        // part
        {
            let schema = Arc::new(Schema::of(vec![
                Field::new("p_id", DataType::Int64),
                Field::new("p_category", DataType::Utf8),
                Field::new("p_price", DataType::Float64),
            ]));
            let mut r = rng.fork(2);
            let mut b = TableBuilder::new(
                TableId::new(1),
                "part",
                schema.clone(),
                self.config.rows_per_partition,
            )?;
            b.append(RecordBatch::new(
                schema,
                vec![
                    ColumnData::Int64((0..n_part as i64).collect()),
                    ColumnData::Utf8(
                        (0..n_part)
                            .map(|_| (*r.choose(&CATEGORIES)).to_owned())
                            .collect(),
                    ),
                    ColumnData::Float64((0..n_part).map(|_| r.range_f64(1.0, 1000.0)).collect()),
                ],
            )?)?;
            catalog.register(b.finish()?);
        }

        // orders
        {
            let schema = Arc::new(Schema::of(vec![
                Field::new("o_id", DataType::Int64),
                Field::new("o_cust", DataType::Int64),
                Field::new("o_date", DataType::Int64),
                Field::new("o_total", DataType::Float64),
            ]));
            let mut r = rng.fork(3);
            let mut b = TableBuilder::new(
                TableId::new(2),
                "orders",
                schema.clone(),
                self.config.rows_per_partition,
            )?;
            b.append(RecordBatch::new(
                schema,
                vec![
                    ColumnData::Int64((0..n_orders as i64).collect()),
                    ColumnData::Int64(
                        (0..n_orders)
                            .map(|_| r.range_i64(0, n_cust as i64))
                            .collect(),
                    ),
                    ColumnData::Int64((0..n_orders).map(|_| r.range_i64(0, DATE_DOMAIN)).collect()),
                    ColumnData::Float64((0..n_orders).map(|_| r.range_f64(10.0, 5000.0)).collect()),
                ],
            )?)?;
            catalog.register(b.finish()?);
        }

        // lineitem
        {
            let schema = Arc::new(Schema::of(vec![
                Field::new("l_order", DataType::Int64),
                Field::new("l_part", DataType::Int64),
                Field::new("l_qty", DataType::Int64),
                Field::new("l_price", DataType::Float64),
                Field::new("l_discount", DataType::Float64),
            ]));
            let mut r = rng.fork(4);
            let mut b = TableBuilder::new(
                TableId::new(3),
                "lineitem",
                schema.clone(),
                self.config.rows_per_partition,
            )?;
            b.append(RecordBatch::new(
                schema,
                vec![
                    ColumnData::Int64(
                        (0..n_items)
                            .map(|_| r.range_i64(0, n_orders as i64))
                            .collect(),
                    ),
                    ColumnData::Int64(
                        (0..n_items)
                            .map(|_| r.zipf(n_part as usize, self.config.part_skew) as i64)
                            .collect(),
                    ),
                    ColumnData::Int64((0..n_items).map(|_| r.range_i64(1, 50)).collect()),
                    ColumnData::Float64((0..n_items).map(|_| r.range_f64(1.0, 500.0)).collect()),
                    ColumnData::Float64((0..n_items).map(|_| r.range_f64(0.0, 0.1)).collect()),
                ],
            )?)?;
            catalog.register(b.finish()?);
        }

        Ok(catalog)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_counts_scale_linearly() {
        let g1 = CabGenerator::at_scale(1.0);
        let g2 = CabGenerator::at_scale(2.0);
        let (c1, p1, o1, l1) = g1.row_counts();
        let (c2, p2, o2, l2) = g2.row_counts();
        assert_eq!((c2, p2, o2, l2), (c1 * 2, p1 * 2, o1 * 2, l1 * 2));
    }

    #[test]
    fn catalog_has_all_tables_and_rows() {
        let g = CabGenerator::at_scale(0.1);
        let cat = g.build_catalog().unwrap();
        assert_eq!(cat.len(), 4);
        let (c, p, o, l) = g.row_counts();
        assert_eq!(cat.get("customer").unwrap().stats.row_count, c);
        assert_eq!(cat.get("part").unwrap().stats.row_count, p);
        assert_eq!(cat.get("orders").unwrap().stats.row_count, o);
        assert_eq!(cat.get("lineitem").unwrap().stats.row_count, l);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CabGenerator::at_scale(0.05).build_catalog().unwrap();
        let b = CabGenerator::at_scale(0.05).build_catalog().unwrap();
        let ta = a.get("orders").unwrap().table.to_batch().unwrap();
        let tb = b.get("orders").unwrap().table.to_batch().unwrap();
        assert_eq!(ta, tb);
    }

    #[test]
    fn foreign_keys_in_domain() {
        let g = CabGenerator::at_scale(0.05);
        let cat = g.build_catalog().unwrap();
        let (n_cust, n_part, n_orders, _) = g.row_counts();
        let orders = cat.get("orders").unwrap().table.to_batch().unwrap();
        for &c in orders.column(1).as_i64().unwrap() {
            assert!((0..n_cust as i64).contains(&c));
        }
        let items = cat.get("lineitem").unwrap().table.to_batch().unwrap();
        for &o in items.column(0).as_i64().unwrap() {
            assert!((0..n_orders as i64).contains(&o));
        }
        for &p in items.column(1).as_i64().unwrap() {
            assert!((0..n_part as i64).contains(&p));
        }
    }

    #[test]
    fn part_references_are_skewed() {
        let g = CabGenerator::at_scale(0.2);
        let cat = g.build_catalog().unwrap();
        let items = cat.get("lineitem").unwrap().table.to_batch().unwrap();
        let parts = items.column(1).as_i64().unwrap();
        let n_part = g.row_counts().1 as i64;
        let head = parts.iter().filter(|&&p| p < n_part / 10).count();
        let share = head as f64 / parts.len() as f64;
        assert!(
            share > 0.2,
            "top-decile part share {share} should exceed uniform 0.1"
        );
    }

    #[test]
    fn stats_support_histograms_on_dates() {
        let cat = CabGenerator::at_scale(0.1).build_catalog().unwrap();
        let stats = &cat.get("orders").unwrap().stats;
        let h = stats.columns[2]
            .histogram
            .as_ref()
            .expect("o_date histogram");
        let sel = h.range_selectivity(0.0, (DATE_DOMAIN / 2) as f64);
        assert!((sel - 0.5).abs() < 0.05, "half-domain selectivity {sel}");
    }
}
