//! CAB query templates Q1–Q12.
//!
//! Twelve parameterized templates spanning the operator space: selective
//! scans, scan-heavy aggregation, 2–4-way star joins, top-k sorts, count-
//! distinct, and HAVING. Templates with the same id share a fingerprint
//! (only literals differ), which is what makes the Statistics Service's
//! recurrence detection and the What-If Service's matching work.

use ci_types::DetRng;

use crate::gen::{CabGenerator, CATEGORIES, DATE_DOMAIN, REGIONS, SEGMENTS};

/// One parameterized query template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTemplate {
    /// Template id (1-based, Q1..Q12).
    pub id: usize,
    /// Short description.
    pub name: &'static str,
}

/// The CAB template catalog.
pub const TEMPLATES: [QueryTemplate; 12] = [
    QueryTemplate {
        id: 1,
        name: "pricing-summary",
    },
    QueryTemplate {
        id: 2,
        name: "date-window-scan",
    },
    QueryTemplate {
        id: 3,
        name: "revenue-by-region",
    },
    QueryTemplate {
        id: 4,
        name: "segment-analysis",
    },
    QueryTemplate {
        id: 5,
        name: "top-orders",
    },
    QueryTemplate {
        id: 6,
        name: "forecast-revenue-change",
    },
    QueryTemplate {
        id: 7,
        name: "category-volume",
    },
    QueryTemplate {
        id: 8,
        name: "distinct-customers",
    },
    QueryTemplate {
        id: 9,
        name: "star-rollup",
    },
    QueryTemplate {
        id: 10,
        name: "big-sort",
    },
    QueryTemplate {
        id: 11,
        name: "order-lookup",
    },
    QueryTemplate {
        id: 12,
        name: "having-filter",
    },
];

/// Instantiates template `id` with parameters drawn from `rng`, sized for
/// the generator's domains.
pub fn instantiate(id: usize, rng: &mut DetRng, gen: &CabGenerator) -> String {
    let (n_cust, _n_part, n_orders, _) = gen.row_counts();
    match id {
        1 => format!(
            "SELECT l_qty, COUNT(*) AS n, SUM(l_price) AS revenue, AVG(l_discount) AS avg_disc \
             FROM lineitem WHERE l_discount <= {:.3} GROUP BY l_qty ORDER BY l_qty",
            rng.range_f64(0.04, 0.09)
        ),
        2 => {
            let start = rng.range_i64(0, DATE_DOMAIN - 40);
            format!(
                "SELECT o_id, o_total FROM orders WHERE o_date BETWEEN {start} AND {}",
                start + 30
            )
        }
        3 => format!(
            "SELECT c_region, SUM(o_total) AS revenue FROM orders o \
             JOIN customer c ON o.o_cust = c.c_id \
             WHERE o_date >= {} GROUP BY c_region ORDER BY revenue DESC",
            rng.range_i64(0, DATE_DOMAIN / 2)
        ),
        4 => format!(
            "SELECT c_segment, COUNT(*) AS n, SUM(l_price) AS spend FROM lineitem l \
             JOIN orders o ON l.l_order = o.o_id \
             JOIN customer c ON o.o_cust = c.c_id \
             WHERE l_qty > {} GROUP BY c_segment",
            rng.range_i64(5, 30)
        ),
        5 => format!(
            "SELECT o_id, o_total FROM orders WHERE o_cust < {} \
             ORDER BY o_total DESC LIMIT 20",
            rng.range_i64(n_cust as i64 / 4, n_cust as i64)
        ),
        6 => format!(
            "SELECT SUM(l_price * l_discount) AS potential FROM lineitem \
             WHERE l_discount BETWEEN {:.3} AND {:.3} AND l_qty < {}",
            0.02,
            rng.range_f64(0.05, 0.09),
            rng.range_i64(20, 45)
        ),
        7 => format!(
            "SELECT p_category, SUM(l_qty) AS volume FROM lineitem l \
             JOIN part p ON l.l_part = p.p_id \
             WHERE p_price > {:.1} GROUP BY p_category ORDER BY volume DESC",
            rng.range_f64(100.0, 600.0)
        ),
        8 => format!(
            "SELECT c_region, COUNT(DISTINCT o_cust) AS custs FROM orders o \
             JOIN customer c ON o.o_cust = c.c_id \
             WHERE o_total > {:.1} GROUP BY c_region",
            rng.range_f64(500.0, 3000.0)
        ),
        9 => format!(
            "SELECT c_region, p_category, SUM(l_price) AS revenue FROM lineitem l \
             JOIN orders o ON l.l_order = o.o_id \
             JOIN customer c ON o.o_cust = c.c_id \
             JOIN part p ON l.l_part = p.p_id \
             WHERE c_segment = '{}' GROUP BY c_region, p_category",
            rng.choose(&SEGMENTS)
        ),
        10 => "SELECT o_id, o_cust, o_total FROM orders ORDER BY o_total DESC, o_id LIMIT 100"
            .to_owned(),
        11 => format!(
            "SELECT o_id, o_cust, o_total FROM orders WHERE o_id = {}",
            rng.range_i64(0, n_orders as i64)
        ),
        12 => format!(
            "SELECT o_cust, SUM(o_total) AS spend FROM orders GROUP BY o_cust \
             HAVING SUM(o_total) > {:.1} ORDER BY spend DESC LIMIT 50",
            rng.range_f64(5_000.0, 20_000.0)
        ),
        other => panic!("unknown CAB template Q{other}"),
    }
}

/// A canonical (fixed-parameter) instance of each template, for tests and
/// recurring-workload experiments. `region`/`category` parameters use the
/// first domain value.
pub fn canonical(id: usize, gen: &CabGenerator) -> String {
    let mut rng = DetRng::seed_from_u64(0xCAB + id as u64);
    let _ = (REGIONS, CATEGORIES); // domains documented here for reference
    instantiate(id, &mut rng, gen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_templates() {
        assert_eq!(TEMPLATES.len(), 12);
        for (i, t) in TEMPLATES.iter().enumerate() {
            assert_eq!(t.id, i + 1);
        }
    }

    #[test]
    fn instantiation_is_deterministic() {
        let gen = CabGenerator::at_scale(1.0);
        let mut r1 = DetRng::seed_from_u64(5);
        let mut r2 = DetRng::seed_from_u64(5);
        for t in &TEMPLATES {
            assert_eq!(
                instantiate(t.id, &mut r1, &gen),
                instantiate(t.id, &mut r2, &gen)
            );
        }
    }

    #[test]
    fn same_template_same_fingerprint_shape() {
        // Different parameters, same structure: fingerprints must collide.
        let gen = CabGenerator::at_scale(1.0);
        let mut r = DetRng::seed_from_u64(1);
        for t in &TEMPLATES {
            let a = instantiate(t.id, &mut r, &gen);
            let b = instantiate(t.id, &mut r, &gen);
            // Cheap structural check: identical after removing numeric
            // literals and quoted string contents.
            let strip = |s: &str| {
                let mut out = String::new();
                let mut in_str = false;
                for c in s.chars() {
                    if c == '\'' {
                        in_str = !in_str;
                        out.push('?');
                    } else if !in_str && !c.is_ascii_digit() && c != '.' {
                        out.push(c);
                    }
                }
                out
            };
            assert_eq!(strip(&a), strip(&b), "Q{} not parameter-stable", t.id);
        }
    }

    #[test]
    #[should_panic(expected = "unknown CAB template")]
    fn unknown_template_panics() {
        let gen = CabGenerator::at_scale(1.0);
        let mut r = DetRng::seed_from_u64(1);
        instantiate(99, &mut r, &gen);
    }
}
