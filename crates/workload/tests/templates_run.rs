//! Every CAB template must parse, bind, plan, and execute correctly on a
//! small scale factor.

use ci_catalog::ErrorInjector;
use ci_exec::{ExecutionConfig, Executor, NoScaling};
use ci_plan::{bind, JoinTree, PipelineGraph};
use ci_sql::parse;
use ci_types::DetRng;
use ci_workload::{gen::CabGenerator, queries, TEMPLATES};

#[test]
fn all_templates_execute() {
    let gen = CabGenerator::at_scale(0.05);
    let cat = gen.build_catalog().unwrap();
    let exec = Executor::new(&cat, ExecutionConfig::default());
    let mut rng = DetRng::seed_from_u64(99);
    for t in &TEMPLATES {
        let sql = queries::instantiate(t.id, &mut rng, &gen);
        let bound = bind(
            &parse(&sql).unwrap_or_else(|e| panic!("Q{}: {e}\n{sql}", t.id)),
            &cat,
        )
        .unwrap_or_else(|e| panic!("Q{} bind: {e}\n{sql}", t.id));
        let tree = JoinTree::left_deep(&(0..bound.relations.len()).collect::<Vec<_>>());
        let plan = ci_plan::physical::build_plan(&bound, &tree, &cat, &mut ErrorInjector::oracle())
            .unwrap_or_else(|e| panic!("Q{} plan: {e}\n{sql}", t.id));
        let graph = PipelineGraph::decompose(&plan).unwrap();
        let out = exec
            .execute(&plan, &graph, &vec![2; graph.len()], &mut NoScaling)
            .unwrap_or_else(|e| panic!("Q{} exec: {e}\n{sql}", t.id));
        // Sanity: schema non-empty, latency and cost positive.
        assert!(out.result.schema().arity() > 0, "Q{}", t.id);
        assert!(out.metrics.latency.as_secs_f64() > 0.0, "Q{}", t.id);
        assert!(out.metrics.cost.amount() > 0.0, "Q{}", t.id);
    }
}

#[test]
fn canonical_instances_are_stable() {
    let gen = CabGenerator::at_scale(0.05);
    for t in &TEMPLATES {
        assert_eq!(
            queries::canonical(t.id, &gen),
            queries::canonical(t.id, &gen)
        );
    }
}

#[test]
fn selective_template_returns_subset() {
    let gen = CabGenerator::at_scale(0.05);
    let cat = gen.build_catalog().unwrap();
    let exec = Executor::new(&cat, ExecutionConfig::default());
    let sql = queries::canonical(2, &gen); // date-window scan
    let bound = bind(&parse(&sql).unwrap(), &cat).unwrap();
    let tree = JoinTree::left_deep(&[0]);
    let plan =
        ci_plan::physical::build_plan(&bound, &tree, &cat, &mut ErrorInjector::oracle()).unwrap();
    let graph = PipelineGraph::decompose(&plan).unwrap();
    let out = exec
        .execute(&plan, &graph, &vec![2; graph.len()], &mut NoScaling)
        .unwrap();
    let total = cat.get("orders").unwrap().stats.row_count;
    assert!(out.result.rows() > 0);
    assert!(
        (out.result.rows() as u64) < total / 10,
        "31-day window is selective"
    );
}
