//! The What-If Service (§4): dollar-denominated evaluation of tuning actions.

use ci_catalog::{Catalog, ErrorInjector};
use ci_cost::{
    CostEstimator, EstimatorConfig, PipelineWork, TierCostModel, TierLevel, TierPricing,
};
use ci_plan::binder::bind;
use ci_plan::jointree::JoinTree;
use ci_plan::physical::build_plan;
use ci_plan::pipeline::PipelineGraph;
use ci_sql::parse;
use ci_types::money::Dollars;
use ci_types::{CiError, Result};

use crate::predictor::PredictedQuery;
use crate::statsvc::fingerprint_sql;

/// A physical tuning action under consideration.
#[derive(Debug, Clone, PartialEq)]
pub enum TuningAction {
    /// Materialize the result of a recurring query.
    CreateMaterializedView {
        /// MV name.
        name: String,
        /// The defining query.
        definition_sql: String,
        /// How often the MV must be refreshed, per hour.
        refresh_per_hour: f64,
    },
    /// Physically re-sort a table by one column (tightens zone maps; §4's
    /// "recluster (or repartition) a petabyte-sized table" example).
    Recluster {
        /// Table name.
        table: String,
        /// Cluster column name.
        column: String,
    },
    /// Pin a table into a cache tier: every scan of it is served at that
    /// tier's latency, and the table pays the tier's occupancy rent for as
    /// long as the pin stands. The benefit is saved fetch dollars — faster
    /// machine-seconds plus the object-store GET/transfer charges the cache
    /// absorbs; the cost is rent. Exactly the recluster trade, with
    /// residency in place of sort order.
    PinTable {
        /// Table name.
        table: String,
        /// Which cache tier holds it (`Mem` or `Ssd`; pinning to `Object`
        /// is rejected — everything already lives there).
        tier: TierLevel,
    },
    /// Resize the cache budget: expected hit rates scale with how much of
    /// the workload's working set the tiers can hold, and rent scales with
    /// the bytes actually occupied.
    CacheBudget {
        /// Memory-tier budget in bytes.
        mem_bytes: u64,
        /// SSD-tier budget in bytes.
        ssd_bytes: u64,
    },
}

impl TuningAction {
    /// Short display label.
    pub fn label(&self) -> String {
        match self {
            TuningAction::CreateMaterializedView { name, .. } => format!("CREATE MV {name}"),
            TuningAction::Recluster { table, column } => {
                format!("RECLUSTER {table} BY {column}")
            }
            TuningAction::PinTable { table, tier } => {
                let t = match tier {
                    TierLevel::Mem => "MEMORY",
                    TierLevel::Ssd => "SSD",
                    TierLevel::Object => "OBJECT",
                };
                format!("PIN {table} IN {t}")
            }
            TuningAction::CacheBudget {
                mem_bytes,
                ssd_bytes,
            } => {
                format!(
                    "CACHE BUDGET mem={:.1}MB ssd={:.1}MB",
                    *mem_bytes as f64 / 1e6,
                    *ssd_bytes as f64 / 1e6
                )
            }
        }
    }
}

/// What-If Service configuration.
#[derive(Debug, Clone)]
pub struct WhatIfConfig {
    /// Cost-estimator configuration shared with the optimizer.
    pub estimator: EstimatorConfig,
    /// Object-store price, $/GB/hour (S3-standard-like ≈ $0.023/GB/month).
    pub storage_dollars_per_gb_hour: f64,
    /// Incremental-refresh cost as a fraction of a full MV rebuild.
    pub mv_refresh_factor: f64,
    /// Ongoing recluster maintenance, per hour, as a fraction of the
    /// one-time rewrite (new data arriving unsorted must be merged).
    pub recluster_maintenance_factor_per_hour: f64,
    /// DOP ladder used when costing queries.
    pub dop_ladder: Vec<u32>,
    /// Tier menu used when pricing cache actions (capacities, service
    /// times, occupancy rents, object GET/transfer charges).
    pub tier_pricing: TierPricing,
}

impl Default for WhatIfConfig {
    fn default() -> Self {
        WhatIfConfig {
            estimator: EstimatorConfig::default(),
            storage_dollars_per_gb_hour: 0.023 / 730.0,
            mv_refresh_factor: 0.1,
            recluster_maintenance_factor_per_hour: 0.002,
            dop_ladder: (0..=8).map(|i| 1u32 << i).collect(),
            tier_pricing: TierPricing::standard(),
        }
    }
}

/// The dollar verdict on one tuning proposal — the "report that uses the
/// dollar benefit/cost as the bridge" (§2) presented to users.
#[derive(Debug, Clone)]
pub struct ProposalReport {
    /// The evaluated action.
    pub action: TuningAction,
    /// `x`: predicted savings rate, $/hour.
    pub benefit_rate: Dollars,
    /// `y`: predicted ongoing cost rate (storage + maintenance), $/hour.
    pub cost_rate: Dollars,
    /// `x − y`.
    pub net_rate: Dollars,
    /// One-time cost to apply the action.
    pub one_time_cost: Dollars,
    /// Hours until the one-time cost is repaid (`None` if never).
    pub break_even_hours: Option<f64>,
    /// The §4 acceptance rule: `x − y > 0`.
    pub accepted: bool,
    /// Human-readable explanation.
    pub narrative: String,
}

/// The What-If Service.
pub struct WhatIfService<'a> {
    catalog: &'a Catalog,
    /// Configuration (public for experiment sweeps).
    pub config: WhatIfConfig,
}

impl<'a> WhatIfService<'a> {
    /// New service over a catalog.
    pub fn new(catalog: &'a Catalog, config: WhatIfConfig) -> WhatIfService<'a> {
        WhatIfService { catalog, config }
    }

    /// Evaluates a tuning action against the predicted workload.
    pub fn evaluate(
        &self,
        action: &TuningAction,
        workload: &[PredictedQuery],
    ) -> Result<ProposalReport> {
        match action {
            TuningAction::CreateMaterializedView {
                definition_sql,
                refresh_per_hour,
                ..
            } => self.evaluate_mv(action, definition_sql, *refresh_per_hour, workload),
            TuningAction::Recluster { table, column } => {
                self.evaluate_recluster(action, table, column, workload)
            }
            TuningAction::PinTable { table, tier } => {
                self.evaluate_pin(action, table, *tier, workload)
            }
            TuningAction::CacheBudget {
                mem_bytes,
                ssd_bytes,
            } => self.evaluate_budget(action, *mem_bytes, *ssd_bytes, workload),
        }
    }

    /// Estimated dollars and latency for one query under a given catalog.
    fn query_cost(&self, catalog: &Catalog, sql: &str) -> Result<(Dollars, f64)> {
        self.query_cost_with(catalog, &self.config.estimator, sql)
    }

    /// Same, under an explicit estimator configuration — how cache what-ifs
    /// price "the same query, but with this tier model".
    fn query_cost_with(
        &self,
        catalog: &Catalog,
        cfg: &EstimatorConfig,
        sql: &str,
    ) -> Result<(Dollars, f64)> {
        let bound = bind(&parse(sql)?, catalog)?;
        let tree = JoinTree::left_deep(&(0..bound.relations.len()).collect::<Vec<_>>());
        let plan = build_plan(&bound, &tree, catalog, &mut ErrorInjector::oracle())?;
        let graph = PipelineGraph::decompose(&plan)?;
        let est = CostEstimator::new(catalog, cfg.clone());
        let dops: Vec<u32> = graph
            .pipelines
            .iter()
            .map(|p| {
                est.pipeline_work(&plan, p)
                    .map(|w| est.machine_time_optimal_dop(&w, &self.config.dop_ladder))
            })
            .collect::<Result<Vec<_>>>()?;
        let q = est.estimate(&plan, &graph, &dops)?;
        Ok((q.cost, q.latency.as_secs_f64()))
    }

    /// The estimator configuration cache what-ifs start from: the standing
    /// one, with a cold tier model installed if none was set (so "before"
    /// and "after" differ only in the proposed residency).
    fn tiered_base_config(&self) -> EstimatorConfig {
        let mut cfg = self.config.estimator.clone();
        if cfg.tiers.is_none() {
            cfg.tiers = Some(TierCostModel::cold(self.config.tier_pricing.clone()));
        }
        cfg
    }

    fn evaluate_mv(
        &self,
        action: &TuningAction,
        definition_sql: &str,
        refresh_per_hour: f64,
        workload: &[PredictedQuery],
    ) -> Result<ProposalReport> {
        let est = CostEstimator::new(self.catalog, self.config.estimator.clone());
        // Size of the materialized result, from plan annotations.
        let bound = bind(&parse(definition_sql)?, self.catalog)?;
        let tree = JoinTree::left_deep(&(0..bound.relations.len()).collect::<Vec<_>>());
        let plan = build_plan(&bound, &tree, self.catalog, &mut ErrorInjector::oracle())?;
        let mv_rows = plan.nodes[plan.root].est_rows;
        // Decoded size drives CPU terms; the encoded size is what the object
        // store actually holds and bills at rest.
        let mv_bytes = mv_rows * plan.row_width(plan.root);
        let mv_encoded_bytes = mv_rows * plan.encoded_row_width(plan.root);
        let (build_cost, _) = self.query_cost(self.catalog, definition_sql)?;

        // Queries answered by the MV: same fingerprint as the definition.
        let def_fp = fingerprint_sql(definition_sql);
        let mut benefit = Dollars::ZERO;
        let mut matched = 0usize;
        // Serving cost: scan the MV instead of recomputing.
        let scan_work = PipelineWork {
            fetch_bytes: mv_encoded_bytes,
            fetch_objects: (mv_encoded_bytes / 16e6).ceil().max(1.0),
            decode_bytes: mv_bytes,
            filter_rows: mv_rows,
            morsels: (mv_encoded_bytes / 16e6).ceil().max(1.0),
            source_rows: mv_rows,
            ..PipelineWork::default()
        };
        let serve_dop = est.machine_time_optimal_dop(&scan_work, &self.config.dop_ladder);
        let serve_secs =
            est.pipeline_duration(&scan_work, serve_dop).as_secs_f64() * serve_dop as f64;
        let serve_cost = self
            .config
            .estimator
            .rate
            .bill(ci_types::SimDuration::from_secs_f64(serve_secs));

        for q in workload {
            if q.fingerprint != def_fp {
                continue;
            }
            matched += 1;
            let (before, _) = self.query_cost(self.catalog, &q.sql)?;
            let saved = (before - serve_cost).max(Dollars::ZERO);
            benefit += saved * q.rate_per_hour;
        }

        let storage_rate =
            Dollars::new(mv_encoded_bytes / 1e9 * self.config.storage_dollars_per_gb_hour);
        let refresh_rate = build_cost * self.config.mv_refresh_factor * refresh_per_hour;
        let cost_rate = storage_rate + refresh_rate;
        self.finish_report(action, benefit, cost_rate, build_cost, matched)
    }

    fn evaluate_recluster(
        &self,
        action: &TuningAction,
        table: &str,
        column: &str,
        workload: &[PredictedQuery],
    ) -> Result<ProposalReport> {
        let entry = self.catalog.get(table)?;
        let col_idx = entry.table.schema.index_of(column)?;
        let rows_per_part = entry
            .table
            .partitions
            .first()
            .map(|p| p.rows().max(1))
            .unwrap_or(1);

        // Physically recluster a clone and register it in a scratch catalog:
        // the what-if world. (The data is identical; only zone maps change.)
        let reclustered = entry.table.reclustered_by(col_idx, rows_per_part)?;
        let mut scratch = self.catalog.clone();
        scratch.register(reclustered);

        let mut benefit = Dollars::ZERO;
        let mut matched = 0usize;
        for q in workload {
            // Only queries touching the table can benefit; cheap pre-filter.
            if !q.sql.to_lowercase().contains(&table.to_lowercase()) {
                continue;
            }
            let (before, _) = self.query_cost(self.catalog, &q.sql)?;
            let (after, _) = self.query_cost(&scratch, &q.sql)?;
            if after < before {
                matched += 1;
                benefit += (before - after) * q.rate_per_hour;
            }
        }

        // One-time rewrite: read + write the whole table once (object I/O
        // moves encoded bytes).
        let bytes = entry.table.total_encoded_bytes() as f64;
        let m = &self.config.estimator.models;
        let rewrite_secs = 2.0 * bytes / m.hw.node_scan_bytes_per_sec()
            + bytes * (entry.table.row_count().max(1) as f64).log2().max(1.0)
                / (m.hw.sort_rows_log_per_sec_per_core
                    * m.hw.node.cores as f64
                    * m.hw.node.memory_bytes.max(1) as f64)
                    .max(1.0);
        let one_time = self
            .config
            .estimator
            .rate
            .bill(ci_types::SimDuration::from_secs_f64(rewrite_secs));
        let cost_rate = one_time * self.config.recluster_maintenance_factor_per_hour;
        self.finish_report(action, benefit, cost_rate, one_time, matched)
    }

    fn evaluate_pin(
        &self,
        action: &TuningAction,
        table: &str,
        tier: TierLevel,
        workload: &[PredictedQuery],
    ) -> Result<ProposalReport> {
        let entry = self.catalog.get(table)?;
        let id = entry.table.id;
        let pricing = &self.config.tier_pricing;
        // Residency footprint: the memory tier holds decoded batches, the
        // SSD tier holds encoded partition files.
        let (spec, resident_bytes) = match tier {
            TierLevel::Mem => (&pricing.mem, entry.table.total_bytes()),
            TierLevel::Ssd => (&pricing.ssd, entry.table.total_encoded_bytes()),
            TierLevel::Object => {
                return Err(CiError::Tuning(
                    "pinning to the object tier is a no-op: data already lives there".into(),
                ))
            }
        };
        if resident_bytes > spec.capacity_bytes {
            return Err(CiError::Tuning(format!(
                "cannot pin '{table}': {resident_bytes} B exceeds the tier's \
                 {} B capacity",
                spec.capacity_bytes
            )));
        }

        let before_cfg = self.tiered_base_config();
        let mut after_cfg = before_cfg.clone();
        let model = after_cfg
            .tiers
            .as_mut()
            .expect("tiered_base_config sets it");
        match tier {
            TierLevel::Mem => model.pinned_mem.insert(id),
            TierLevel::Ssd => model.pinned_ssd.insert(id),
            TierLevel::Object => unreachable!("rejected above"),
        };

        // Saved fetch dollars, per §4's x: faster machine-seconds (the scan
        // is served at tier latency) plus the object-store GET and transfer
        // charges every cache-served scan no longer pays.
        let encoded = entry.table.total_encoded_bytes() as f64;
        let parts = entry.table.partitions.len() as f64;
        let egress_per_exec = parts * pricing.object_get_dollars
            + encoded / 1e9 * pricing.object_transfer_dollars_per_gb;
        let mut benefit = Dollars::ZERO;
        let mut matched = 0usize;
        for q in workload {
            if !q.sql.to_lowercase().contains(&table.to_lowercase()) {
                continue;
            }
            let (before, _) = self.query_cost_with(self.catalog, &before_cfg, &q.sql)?;
            let (after, _) = self.query_cost_with(self.catalog, &after_cfg, &q.sql)?;
            let saved = (before - after).max(Dollars::ZERO) + Dollars::new(egress_per_exec);
            if saved > Dollars::ZERO {
                matched += 1;
                benefit += saved * q.rate_per_hour;
            }
        }

        // y: occupancy rent for as long as the pin stands.
        let cost_rate = Dollars::new(spec.rent_per_hour(resident_bytes));
        // One-time: fill the tier once from the object store (transfer
        // charges plus the machine time of the fill scan).
        let fill_secs = encoded / self.config.estimator.models.hw.node_scan_bytes_per_sec();
        let one_time = self
            .config
            .estimator
            .rate
            .bill(ci_types::SimDuration::from_secs_f64(fill_secs))
            + Dollars::new(egress_per_exec);
        self.finish_report(action, benefit, cost_rate, one_time, matched)
    }

    fn evaluate_budget(
        &self,
        action: &TuningAction,
        mem_bytes: u64,
        ssd_bytes: u64,
        workload: &[PredictedQuery],
    ) -> Result<ProposalReport> {
        let pricing = &self.config.tier_pricing;
        // Working set: encoded bytes of every table the workload touches.
        let lowered: Vec<String> = workload.iter().map(|q| q.sql.to_lowercase()).collect();
        let mut working_set = 0u64;
        for (name, entry) in self.catalog.tables() {
            if lowered.iter().any(|s| s.contains(name)) {
                working_set += entry.table.total_encoded_bytes();
            }
        }
        if working_set == 0 {
            return self.finish_report(action, Dollars::ZERO, Dollars::ZERO, Dollars::ZERO, 0);
        }
        let ws = working_set as f64;
        // Hit-rate model: each tier serves the fraction of the working set
        // it can hold; memory claims its share first.
        let mem_frac = (mem_bytes as f64 / ws).min(1.0);
        let ssd_frac = (ssd_bytes as f64 / ws).min(1.0 - mem_frac);

        let before_cfg = self.tiered_base_config();
        let mut after_cfg = before_cfg.clone();
        {
            let model = after_cfg
                .tiers
                .as_mut()
                .expect("tiered_base_config sets it");
            model.mem_hit_rate = mem_frac;
            model.ssd_hit_rate = ssd_frac;
        }

        let mut benefit = Dollars::ZERO;
        let mut matched = 0usize;
        for q in workload {
            let (before, _) = self.query_cost_with(self.catalog, &before_cfg, &q.sql)?;
            let (after, _) = self.query_cost_with(self.catalog, &after_cfg, &q.sql)?;
            if after < before {
                matched += 1;
                benefit += (before - after) * q.rate_per_hour;
            }
        }

        // Rent is charged on occupied bytes, not the configured budget — a
        // budget bigger than the working set buys nothing and costs nothing
        // extra.
        let mem_used = (mem_frac * ws).min(mem_bytes as f64) as u64;
        let ssd_used = (ssd_frac * ws).min(ssd_bytes as f64) as u64;
        let cost_rate =
            Dollars::new(pricing.mem.rent_per_hour(mem_used) + pricing.ssd.rent_per_hour(ssd_used));
        // The cache fills lazily on misses the workload pays anyway.
        self.finish_report(action, benefit, cost_rate, Dollars::ZERO, matched)
    }

    fn finish_report(
        &self,
        action: &TuningAction,
        benefit_rate: Dollars,
        cost_rate: Dollars,
        one_time_cost: Dollars,
        matched: usize,
    ) -> Result<ProposalReport> {
        if !benefit_rate.is_finite() || !cost_rate.is_finite() {
            return Err(CiError::Tuning("non-finite dollar estimate".into()));
        }
        let net_rate = benefit_rate - cost_rate;
        let accepted = net_rate > Dollars::ZERO;
        let break_even_hours = if net_rate > Dollars::ZERO {
            Some(one_time_cost.amount() / net_rate.amount())
        } else {
            None
        };
        let narrative = format!(
            "{}: saves x = {}/h across {matched} matched recurring quer{}, costs \
             y = {}/h to maintain; net {}/h => {}. One-time cost {}{}.",
            action.label(),
            benefit_rate,
            if matched == 1 { "y" } else { "ies" },
            cost_rate,
            net_rate,
            if accepted { "ACCEPT" } else { "REJECT" },
            one_time_cost,
            match break_even_hours {
                Some(h) => format!(", breaks even after {h:.1} h"),
                None => ", never breaks even".to_owned(),
            }
        );
        Ok(ProposalReport {
            action: action.clone(),
            benefit_rate,
            cost_rate,
            net_rate,
            one_time_cost,
            break_even_hours,
            accepted,
            narrative,
        })
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ci_storage::batch::RecordBatch;
    use ci_storage::column::ColumnData;
    use ci_storage::schema::{Field, Schema};
    use ci_storage::table::TableBuilder;
    use ci_storage::value::DataType;
    use ci_types::{DetRng, TableId};

    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let schema = Arc::new(Schema::of(vec![
            Field::new("id", DataType::Int64),
            Field::new("grp", DataType::Int64),
            Field::new("val", DataType::Float64),
        ]));
        let n = 400_000i64;
        // Shuffled ids so zone maps are useless before reclustering.
        let mut rng = DetRng::seed_from_u64(1);
        let mut ids: Vec<i64> = (0..n).collect();
        rng.shuffle(&mut ids);
        let mut b = TableBuilder::new(TableId::new(0), "facts", schema.clone(), 8_192).unwrap();
        b.append(
            RecordBatch::new(
                schema,
                vec![
                    ColumnData::Int64(ids.clone()),
                    ColumnData::Int64(ids.iter().map(|i| i % 500).collect()),
                    ColumnData::Float64(ids.iter().map(|i| (i % 1000) as f64).collect()),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.register(b.finish().unwrap());
        c
    }

    fn workload(sql: &str, rate: f64) -> Vec<PredictedQuery> {
        vec![PredictedQuery {
            fingerprint: fingerprint_sql(sql),
            sql: sql.to_owned(),
            rate_per_hour: rate,
            cost_per_execution: Dollars::new(0.01),
        }]
    }

    const AGG: &str = "SELECT grp, SUM(val) FROM facts GROUP BY grp";
    const SELECTIVE: &str = "SELECT val FROM facts WHERE id < 4000";

    #[test]
    fn mv_accepted_for_hot_query() {
        let cat = catalog();
        let svc = WhatIfService::new(&cat, WhatIfConfig::default());
        let action = TuningAction::CreateMaterializedView {
            name: "mv_rev".into(),
            definition_sql: AGG.into(),
            refresh_per_hour: 0.1,
        };
        let report = svc.evaluate(&action, &workload(AGG, 100.0)).unwrap();
        assert!(report.benefit_rate > Dollars::ZERO);
        assert!(
            report.accepted,
            "100 runs/hour should justify an MV: {}",
            report.narrative
        );
        assert!(report.break_even_hours.is_some());
        assert!(report.narrative.contains("ACCEPT"));
    }

    #[test]
    fn mv_rejected_for_cold_query() {
        let cat = catalog();
        let svc = WhatIfService::new(&cat, WhatIfConfig::default());
        let action = TuningAction::CreateMaterializedView {
            name: "mv_rev".into(),
            definition_sql: AGG.into(),
            // Rarely used but constantly refreshed: y > x.
            refresh_per_hour: 50.0,
        };
        let report = svc.evaluate(&action, &workload(AGG, 0.001)).unwrap();
        assert!(!report.accepted, "{}", report.narrative);
        assert!(report.break_even_hours.is_none());
    }

    #[test]
    fn mv_with_no_matching_queries_rejected() {
        let cat = catalog();
        let svc = WhatIfService::new(&cat, WhatIfConfig::default());
        let action = TuningAction::CreateMaterializedView {
            name: "mv".into(),
            definition_sql: AGG.into(),
            refresh_per_hour: 0.1,
        };
        let other = workload("SELECT id FROM facts WHERE val < 1.0", 50.0);
        let report = svc.evaluate(&action, &other).unwrap();
        assert_eq!(report.benefit_rate, Dollars::ZERO);
        assert!(!report.accepted);
    }

    #[test]
    fn recluster_accepted_when_predicates_align() {
        let cat = catalog();
        let svc = WhatIfService::new(&cat, WhatIfConfig::default());
        let action = TuningAction::Recluster {
            table: "facts".into(),
            column: "id".into(),
        };
        let report = svc.evaluate(&action, &workload(SELECTIVE, 200.0)).unwrap();
        assert!(
            report.benefit_rate > Dollars::ZERO,
            "clustering by id must help id-range scans: {}",
            report.narrative
        );
        assert!(report.accepted, "{}", report.narrative);
    }

    #[test]
    fn recluster_benefits_full_scans_via_compression_alone() {
        // Full scans see no zone-map pruning, but reclustering sorts the id
        // column, which collapses under the delta page codec — the second
        // lever (encoded-byte fetches shrink) rewards the action even
        // without a selective predicate.
        let cat = catalog();
        let svc = WhatIfService::new(&cat, WhatIfConfig::default());
        let action = TuningAction::Recluster {
            table: "facts".into(),
            column: "id".into(),
        };
        let report = svc.evaluate(&action, &workload(AGG, 100.0)).unwrap();
        assert!(
            report.benefit_rate > Dollars::ZERO,
            "compression lever must reward reclustering: {}",
            report.narrative
        );
    }

    #[test]
    fn recluster_rejected_without_benefiting_queries() {
        let cat = catalog();
        let svc = WhatIfService::new(&cat, WhatIfConfig::default());
        let action = TuningAction::Recluster {
            table: "facts".into(),
            column: "id".into(),
        };
        // Queries that never touch the table gain nothing from either
        // lever (pruning or compression).
        let other = workload("SELECT d_name FROM dims WHERE d_id < 5", 100.0);
        let report = svc.evaluate(&action, &other).unwrap();
        assert_eq!(report.benefit_rate, Dollars::ZERO);
        assert!(!report.accepted);
    }

    #[test]
    fn fault_profile_reprices_the_same_action() {
        // The failure-tax bridge: the same tuning action priced on a flaky
        // tier costs more to apply (every fetch/compute second carries
        // expected recovery), so tier reliability shows up in the same
        // dollar terms as the action itself.
        use ci_cost::FaultProfile;
        let cat = catalog();
        let action = TuningAction::CreateMaterializedView {
            name: "mv_rev".into(),
            definition_sql: AGG.into(),
            refresh_per_hour: 1.0,
        };
        let priced = |profile: Option<FaultProfile>| {
            let mut cfg = WhatIfConfig::default();
            cfg.estimator.fault_profile = profile;
            WhatIfService::new(&cat, cfg)
                .evaluate(&action, &workload(AGG, 10.0))
                .unwrap()
        };
        let reliable = priced(None);
        let mut storm = FaultProfile::light();
        storm.fetch_failure_rate = 0.5;
        storm.straggler_rate = 0.4;
        storm.worker_loss_rate = 0.2;
        let flaky = priced(Some(storm));
        assert!(
            flaky.one_time_cost > reliable.one_time_cost,
            "flaky tier must make the MV build pricier: {} vs {}",
            flaky.one_time_cost,
            reliable.one_time_cost
        );
        assert!(flaky.cost_rate > reliable.cost_rate);
    }

    #[test]
    fn net_rate_is_x_minus_y() {
        let cat = catalog();
        let svc = WhatIfService::new(&cat, WhatIfConfig::default());
        let action = TuningAction::CreateMaterializedView {
            name: "mv".into(),
            definition_sql: AGG.into(),
            refresh_per_hour: 1.0,
        };
        let r = svc.evaluate(&action, &workload(AGG, 10.0)).unwrap();
        assert!(r.net_rate.abs_diff(r.benefit_rate - r.cost_rate) < 1e-12);
        assert_eq!(r.accepted, r.net_rate > Dollars::ZERO);
    }

    #[test]
    fn unknown_table_errors() {
        let cat = catalog();
        let svc = WhatIfService::new(&cat, WhatIfConfig::default());
        let action = TuningAction::Recluster {
            table: "nope".into(),
            column: "id".into(),
        };
        assert!(svc.evaluate(&action, &[]).is_err());
    }

    #[test]
    fn pin_accepted_for_hot_table_rejected_when_rent_dominates() {
        let cat = catalog();
        let action = TuningAction::PinTable {
            table: "facts".into(),
            tier: TierLevel::Ssd,
        };
        let priced = |rate_per_hour: f64, ssd_price_per_gb_hour: f64| {
            let mut cfg = WhatIfConfig::default();
            cfg.tier_pricing.ssd.price_per_gb_hour = ssd_price_per_gb_hour;
            WhatIfService::new(&cat, cfg)
                .evaluate(&action, &workload(AGG, rate_per_hour))
                .unwrap()
        };
        // A hot table at standard rent: the saved fetch dollars win.
        let hot = priced(500.0, TierPricing::standard().ssd.price_per_gb_hour);
        assert!(hot.benefit_rate > Dollars::ZERO, "{}", hot.narrative);
        assert!(hot.accepted, "{}", hot.narrative);
        // Same workload, rent cranked until occupancy dominates: REJECT.
        let pricey = priced(500.0, 1e9);
        assert!(!pricey.accepted, "{}", pricey.narrative);
        assert_eq!(
            hot.benefit_rate, pricey.benefit_rate,
            "rent must not change the benefit side"
        );
    }

    #[test]
    fn pin_rejects_object_tier_and_over_capacity() {
        let cat = catalog();
        let svc = WhatIfService::new(&cat, WhatIfConfig::default());
        let obj = TuningAction::PinTable {
            table: "facts".into(),
            tier: TierLevel::Object,
        };
        assert!(svc.evaluate(&obj, &workload(AGG, 1.0)).is_err());

        let mut tiny = WhatIfConfig::default();
        tiny.tier_pricing.mem.capacity_bytes = 16;
        let svc = WhatIfService::new(&cat, tiny);
        let mem = TuningAction::PinTable {
            table: "facts".into(),
            tier: TierLevel::Mem,
        };
        assert!(svc.evaluate(&mem, &workload(AGG, 1.0)).is_err());
    }

    #[test]
    fn pin_without_touching_queries_rejected() {
        let cat = catalog();
        let svc = WhatIfService::new(&cat, WhatIfConfig::default());
        let action = TuningAction::PinTable {
            table: "facts".into(),
            tier: TierLevel::Ssd,
        };
        let other = workload("SELECT d_name FROM dims WHERE d_id < 5", 100.0);
        let report = svc.evaluate(&action, &other).unwrap();
        assert_eq!(report.benefit_rate, Dollars::ZERO);
        assert!(!report.accepted);
    }

    #[test]
    fn cache_budget_scales_benefit_with_size() {
        let cat = catalog();
        let svc = WhatIfService::new(&cat, WhatIfConfig::default());
        let ws = cat.get("facts").unwrap().table.total_encoded_bytes();
        let wl = workload(AGG, 200.0);
        let report_at = |mem: u64| {
            let action = TuningAction::CacheBudget {
                mem_bytes: mem,
                ssd_bytes: 0,
            };
            svc.evaluate(&action, &wl).unwrap()
        };
        let none = report_at(0);
        let half = report_at(ws / 2);
        let full = report_at(ws);
        assert_eq!(none.benefit_rate, Dollars::ZERO);
        assert!(half.benefit_rate > Dollars::ZERO, "{}", half.narrative);
        assert!(full.benefit_rate > half.benefit_rate);
        // Rent tracks occupied bytes: a budget above the working set costs
        // the same as one exactly covering it.
        let over = report_at(ws * 10);
        assert_eq!(over.cost_rate, full.cost_rate);
        assert_eq!(over.benefit_rate, full.benefit_rate);
    }

    #[test]
    fn cache_action_labels_are_descriptive() {
        let pin = TuningAction::PinTable {
            table: "facts".into(),
            tier: TierLevel::Mem,
        };
        assert_eq!(pin.label(), "PIN facts IN MEMORY");
        let budget = TuningAction::CacheBudget {
            mem_bytes: 64_000_000,
            ssd_bytes: 0,
        };
        assert!(budget.label().contains("mem=64.0MB"));
    }
}
