//! The Statistics Service (§4).
//!
//! "For each database instance, the Statistics Service collects the query
//! execution logs from all the tenants to form the 'ground truth' for
//! understanding workload behaviors. The service computes in the background
//! ... queryable workload summaries, including file/attribute-access counts
//! and weighted join graphs for training workload-prediction models and
//! run-time resource usage for modeling the performance and monetary cost."

use std::collections::HashMap;

use ci_types::money::Dollars;
use ci_types::{DetRng, SimDuration, SimTime, TableId};

/// A `(table, column)` attribute reference.
pub type AttrRef = (TableId, usize);
/// An undirected join-graph edge between two attributes.
pub type JoinEdge = (AttrRef, AttrRef);

/// One query execution log record.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryLogRecord {
    /// Normalized query fingerprint (literals stripped).
    pub fingerprint: String,
    /// Representative SQL text for this fingerprint.
    pub sql: String,
    /// Virtual completion time.
    pub finished_at: SimTime,
    /// Query latency.
    pub latency: SimDuration,
    /// Machine time billed.
    pub machine_time: SimDuration,
    /// Dollars billed.
    pub cost: Dollars,
    /// (table, column) attribute accesses.
    pub attributes: Vec<AttrRef>,
    /// Equi-join column pairs exercised.
    pub joins: Vec<JoinEdge>,
}

/// Sampling and metering configuration.
#[derive(Debug, Clone)]
pub struct StatsConfig {
    /// Probability of recording a query (counts are scaled by `1/rate`).
    pub sampling_rate: f64,
    /// Modeled ingest cost per recorded query (the service's own bill, §4).
    pub ingest_cost_per_record: Dollars,
    /// Maximum distinct fingerprints kept exactly; colder entries collapse
    /// into an aggregate bucket (hot/cold tiering, §4).
    pub hot_capacity: usize,
    /// RNG seed for sampling decisions.
    pub seed: u64,
}

impl Default for StatsConfig {
    fn default() -> Self {
        StatsConfig {
            sampling_rate: 1.0,
            ingest_cost_per_record: Dollars::new(2e-7), // ~0.4 node-ms at $2/h
            hot_capacity: 10_000,
            seed: 0,
        }
    }
}

/// Per-fingerprint workload summary.
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintStats {
    /// Representative SQL.
    pub sql: String,
    /// Estimated executions (scaled by inverse sampling rate).
    pub count: f64,
    /// Estimated total dollars spent on this fingerprint.
    pub total_cost: Dollars,
    /// Mean latency over sampled executions.
    pub mean_latency: SimDuration,
    /// Earliest and latest observation.
    pub first_seen: SimTime,
    /// Latest observation.
    pub last_seen: SimTime,
}

/// The Statistics Service.
#[derive(Debug)]
pub struct StatisticsService {
    config: StatsConfig,
    rng: DetRng,
    /// Attribute access counts (scaled).
    attr_counts: HashMap<AttrRef, f64>,
    /// Weighted join graph: vertices are (table, column), weights are scaled
    /// access counts (§4's "weighted join graph").
    join_graph: HashMap<JoinEdge, f64>,
    fingerprints: HashMap<String, FingerprintStats>,
    /// Executions that were observed but not recorded (sampling misses).
    skipped: u64,
    recorded: u64,
    /// Aggregate bucket for evicted (cold) fingerprints.
    cold_count: f64,
    cold_cost: Dollars,
    /// The service's own accumulated ingest bill.
    ingest_spend: Dollars,
    /// Total resource usage observed across the workload.
    total_machine_time: SimDuration,
    total_cost: Dollars,
}

impl StatisticsService {
    /// New service with the given configuration.
    pub fn new(config: StatsConfig) -> StatisticsService {
        let rng = DetRng::seed_from_u64(config.seed);
        StatisticsService {
            config,
            rng,
            attr_counts: HashMap::new(),
            join_graph: HashMap::new(),
            fingerprints: HashMap::new(),
            skipped: 0,
            recorded: 0,
            cold_count: 0.0,
            cold_cost: Dollars::ZERO,
            ingest_spend: Dollars::ZERO,
            total_machine_time: SimDuration::ZERO,
            total_cost: Dollars::ZERO,
        }
    }

    /// Ingests one query log record, subject to sampling.
    pub fn ingest(&mut self, rec: QueryLogRecord) {
        if self.config.sampling_rate < 1.0 && !self.rng.bool_with(self.config.sampling_rate) {
            self.skipped += 1;
            return;
        }
        self.recorded += 1;
        self.ingest_spend += self.config.ingest_cost_per_record;
        let scale = 1.0 / self.config.sampling_rate.max(1e-9);

        for &(t, c) in &rec.attributes {
            *self.attr_counts.entry((t, c)).or_insert(0.0) += scale;
        }
        for &(a, b) in &rec.joins {
            let key = if a <= b { (a, b) } else { (b, a) };
            *self.join_graph.entry(key).or_insert(0.0) += scale;
        }
        self.total_machine_time += rec.machine_time;
        self.total_cost += rec.cost * scale;

        let entry = self
            .fingerprints
            .entry(rec.fingerprint.clone())
            .or_insert_with(|| FingerprintStats {
                sql: rec.sql.clone(),
                count: 0.0,
                total_cost: Dollars::ZERO,
                mean_latency: SimDuration::ZERO,
                first_seen: rec.finished_at,
                last_seen: rec.finished_at,
            });
        // Running mean of latency over recorded samples.
        let n_before = entry.count / scale;
        let mean = (entry.mean_latency.as_secs_f64() * n_before + rec.latency.as_secs_f64())
            / (n_before + 1.0);
        entry.mean_latency = SimDuration::from_secs_f64(mean);
        entry.count += scale;
        entry.total_cost += rec.cost * scale;
        entry.last_seen = entry.last_seen.max(rec.finished_at);
        entry.first_seen = entry.first_seen.min(rec.finished_at);

        self.evict_cold_if_needed();
    }

    /// Hot/cold tiering: when over capacity, the coldest (cheapest) half of
    /// fingerprints collapses into an aggregate bucket.
    fn evict_cold_if_needed(&mut self) {
        if self.fingerprints.len() <= self.config.hot_capacity {
            return;
        }
        let mut entries: Vec<(String, f64)> = self
            .fingerprints
            .iter()
            .map(|(k, v)| (k.clone(), v.total_cost.amount()))
            .collect();
        entries.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite cost"));
        let evict = entries.len() - self.config.hot_capacity / 2;
        for (k, _) in entries.into_iter().take(evict) {
            if let Some(v) = self.fingerprints.remove(&k) {
                self.cold_count += v.count;
                self.cold_cost += v.total_cost;
            }
        }
    }

    /// Top attributes by access count, descending.
    pub fn hot_attributes(&self, k: usize) -> Vec<(AttrRef, f64)> {
        let mut v: Vec<_> = self.attr_counts.iter().map(|(a, c)| (*a, *c)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }

    /// Join-graph edges by weight, descending.
    pub fn join_edges(&self) -> Vec<(JoinEdge, f64)> {
        let mut v: Vec<_> = self.join_graph.iter().map(|(e, w)| (*e, *w)).collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
        v
    }

    /// Fingerprints by total cost, descending — "where do the dollars go".
    pub fn top_fingerprints(&self, k: usize) -> Vec<(&str, &FingerprintStats)> {
        let mut v: Vec<_> = self
            .fingerprints
            .iter()
            .map(|(f, s)| (f.as_str(), s))
            .collect();
        v.sort_by(|a, b| {
            b.1.total_cost
                .partial_cmp(&a.1.total_cost)
                .expect("finite")
                .then(a.0.cmp(b.0))
        });
        v.truncate(k);
        v
    }

    /// Summary for one fingerprint.
    pub fn fingerprint(&self, fp: &str) -> Option<&FingerprintStats> {
        self.fingerprints.get(fp)
    }

    /// All fingerprints currently tracked.
    pub fn fingerprints(&self) -> impl Iterator<Item = (&str, &FingerprintStats)> {
        self.fingerprints.iter().map(|(f, s)| (f.as_str(), s))
    }

    /// (recorded, skipped) ingest decisions.
    pub fn ingest_counts(&self) -> (u64, u64) {
        (self.recorded, self.skipped)
    }

    /// The service's own accumulated cost (E9's overhead axis).
    pub fn ingest_spend(&self) -> Dollars {
        self.ingest_spend
    }

    /// Total (scaled) dollars observed across the workload.
    pub fn workload_cost(&self) -> Dollars {
        self.total_cost
    }

    /// Total machine time observed (recorded samples only).
    pub fn observed_machine_time(&self) -> SimDuration {
        self.total_machine_time
    }
}

/// Normalizes SQL into a workload fingerprint: lowercase, whitespace
/// collapsed, numeric and string literals replaced by `?`.
pub fn fingerprint_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut chars = sql.chars().peekable();
    let mut last_space = true;
    while let Some(c) = chars.next() {
        if c == '\'' {
            // Skip string literal.
            for d in chars.by_ref() {
                if d == '\'' {
                    break;
                }
            }
            out.push('?');
            last_space = false;
        } else if c.is_ascii_digit()
            && !out
                .chars()
                .last()
                .is_some_and(|p| p.is_ascii_alphanumeric() || p == '_')
        {
            while chars
                .peek()
                .is_some_and(|d| d.is_ascii_digit() || *d == '.')
            {
                chars.next();
            }
            out.push('?');
            last_space = false;
        } else if c.is_whitespace() {
            if !last_space {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(c.to_ascii_lowercase());
            last_space = false;
        }
    }
    out.trim().to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(fp: &str, cost: f64, t: f64) -> QueryLogRecord {
        QueryLogRecord {
            fingerprint: fp.to_owned(),
            sql: fp.to_owned(),
            finished_at: SimTime::from_secs_f64(t),
            latency: SimDuration::from_secs(1),
            machine_time: SimDuration::from_secs(4),
            cost: Dollars::new(cost),
            attributes: vec![(TableId::new(0), 1), (TableId::new(0), 2)],
            joins: vec![((TableId::new(0), 1), (TableId::new(1), 0))],
        }
    }

    #[test]
    fn full_sampling_counts_exactly() {
        let mut s = StatisticsService::new(StatsConfig::default());
        for i in 0..10 {
            s.ingest(rec("q1", 0.01, i as f64));
        }
        let fp = s.fingerprint("q1").unwrap();
        assert!((fp.count - 10.0).abs() < 1e-9);
        assert!(fp.total_cost.abs_diff(Dollars::new(0.1)) < 1e-9);
        assert_eq!(s.ingest_counts(), (10, 0));
        // Attribute counts scaled by 1.
        assert_eq!(s.hot_attributes(1)[0].1, 10.0);
        // Join edge weight.
        assert_eq!(s.join_edges()[0].1, 10.0);
    }

    #[test]
    fn sampling_unbiased_in_expectation() {
        let cfg = StatsConfig {
            sampling_rate: 0.25,
            seed: 42,
            ..Default::default()
        };
        let mut s = StatisticsService::new(cfg);
        for i in 0..4000 {
            s.ingest(rec("q1", 0.01, i as f64));
        }
        let fp = s.fingerprint("q1").unwrap();
        // Scaled estimate should be close to the true 4000.
        assert!(
            (fp.count - 4000.0).abs() / 4000.0 < 0.1,
            "estimated count {}",
            fp.count
        );
        let (recorded, skipped) = s.ingest_counts();
        assert_eq!(recorded + skipped, 4000);
        // Sampling cuts the service's own bill proportionally.
        assert!(
            s.ingest_spend().amount()
                < StatsConfig::default().ingest_cost_per_record.amount() * 2000.0
        );
    }

    #[test]
    fn hot_cold_tiering_preserves_totals() {
        let cfg = StatsConfig {
            hot_capacity: 10,
            ..Default::default()
        };
        let mut s = StatisticsService::new(cfg);
        for i in 0..50 {
            // Fingerprint i has cost proportional to i: high-i stay hot.
            s.ingest(rec(&format!("q{i}"), 0.001 * (i + 1) as f64, i as f64));
        }
        assert!(s.fingerprints.len() <= 10);
        // The expensive fingerprints survive.
        assert!(s.fingerprint("q49").is_some());
        assert!(s.fingerprint("q0").is_none());
        // Evicted mass is preserved in the cold bucket.
        assert!(s.cold_count > 0.0);
    }

    #[test]
    fn top_fingerprints_ranked_by_cost() {
        let mut s = StatisticsService::new(StatsConfig::default());
        s.ingest(rec("cheap", 0.001, 0.0));
        s.ingest(rec("dear", 1.0, 1.0));
        let top = s.top_fingerprints(2);
        assert_eq!(top[0].0, "dear");
    }

    #[test]
    fn fingerprint_normalization() {
        assert_eq!(
            fingerprint_sql("SELECT  a FROM t WHERE x = 42 AND s = 'foo'"),
            "select a from t where x = ? and s = ?"
        );
        // Identifiers containing digits survive.
        assert_eq!(fingerprint_sql("SELECT c1 FROM t2"), "select c1 from t2");
        // Same shape, different literals -> same fingerprint.
        assert_eq!(
            fingerprint_sql("SELECT a FROM t WHERE x < 10"),
            fingerprint_sql("SELECT a FROM t WHERE x < 99999")
        );
    }

    #[test]
    fn mean_latency_running_average() {
        let mut s = StatisticsService::new(StatsConfig::default());
        let mut r1 = rec("q", 0.01, 0.0);
        r1.latency = SimDuration::from_secs(1);
        let mut r2 = rec("q", 0.01, 1.0);
        r2.latency = SimDuration::from_secs(3);
        s.ingest(r1);
        s.ingest(r2);
        let fp = s.fingerprint("q").unwrap();
        assert!((fp.mean_latency.as_secs_f64() - 2.0).abs() < 1e-9);
    }
}
