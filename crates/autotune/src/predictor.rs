//! Workload prediction (§4).
//!
//! "To estimate the above dollar benefits/costs for a tuning action, the
//! system must be able to predict future workloads." We use the simple,
//! explainable predictor the paper's architecture enables: per-fingerprint
//! arrival rates estimated from the Statistics Service's observation
//! windows, exponentially smoothed. (The paper cites fancier ML \[22]; the
//! *interface* — rates per fingerprint — is what the What-If Service needs.)

use ci_types::money::Dollars;
use ci_types::SimTime;

use crate::statsvc::StatisticsService;

/// A predicted recurring query.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictedQuery {
    /// Workload fingerprint.
    pub fingerprint: String,
    /// Representative SQL text.
    pub sql: String,
    /// Predicted executions per hour.
    pub rate_per_hour: f64,
    /// Observed average dollars per execution.
    pub cost_per_execution: Dollars,
}

/// Frequency-based workload predictor.
#[derive(Debug, Clone)]
pub struct WorkloadPredictor {
    /// Minimum observed executions for a fingerprint to be predicted as
    /// recurring (ad-hoc queries are not extrapolated).
    pub min_count: f64,
}

impl Default for WorkloadPredictor {
    fn default() -> Self {
        WorkloadPredictor { min_count: 3.0 }
    }
}

impl WorkloadPredictor {
    /// New predictor with defaults.
    pub fn new() -> WorkloadPredictor {
        WorkloadPredictor::default()
    }

    /// Predicts the recurring workload as of `now` from service summaries.
    /// Rate = count / observation span, for fingerprints seen at least
    /// `min_count` times over a non-trivial span.
    pub fn predict(&self, stats: &StatisticsService, now: SimTime) -> Vec<PredictedQuery> {
        let mut out = Vec::new();
        for (fp, s) in stats.fingerprints() {
            if s.count < self.min_count {
                continue;
            }
            let span_h = now
                .saturating_since(s.first_seen)
                .as_hours_f64()
                .max(1.0 / 60.0);
            let rate = s.count / span_h;
            if rate <= 0.0 {
                continue;
            }
            out.push(PredictedQuery {
                fingerprint: fp.to_owned(),
                sql: s.sql.clone(),
                rate_per_hour: rate,
                cost_per_execution: s.total_cost / s.count.max(1.0),
            });
        }
        out.sort_by(|a, b| {
            let ca = a.rate_per_hour * a.cost_per_execution.amount();
            let cb = b.rate_per_hour * b.cost_per_execution.amount();
            cb.partial_cmp(&ca)
                .expect("finite")
                .then(a.fingerprint.cmp(&b.fingerprint))
        });
        out
    }

    /// Total predicted spend rate ($/hour) of the recurring workload.
    pub fn predicted_spend_rate(&self, predicted: &[PredictedQuery]) -> Dollars {
        predicted
            .iter()
            .map(|p| p.cost_per_execution * p.rate_per_hour)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use ci_types::{SimDuration, TableId};

    use crate::statsvc::{QueryLogRecord, StatsConfig};

    use super::*;

    fn rec(fp: &str, t_hours: f64, cost: f64) -> QueryLogRecord {
        QueryLogRecord {
            fingerprint: fp.to_owned(),
            sql: fp.to_owned(),
            finished_at: SimTime::from_secs_f64(t_hours * 3600.0),
            latency: SimDuration::from_secs(1),
            machine_time: SimDuration::from_secs(2),
            cost: Dollars::new(cost),
            attributes: vec![(TableId::new(0), 0)],
            joins: vec![],
        }
    }

    #[test]
    fn rate_estimation_from_span() {
        let mut s = StatisticsService::new(StatsConfig::default());
        // 10 executions over 9 hours -> rate just over 1/hour.
        for i in 0..10 {
            s.ingest(rec("hourly", i as f64, 0.02));
        }
        let p = WorkloadPredictor::new();
        let predicted = p.predict(&s, SimTime::from_secs_f64(9.0 * 3600.0));
        assert_eq!(predicted.len(), 1);
        let q = &predicted[0];
        assert!(
            (q.rate_per_hour - 10.0 / 9.0).abs() < 0.01,
            "rate {}",
            q.rate_per_hour
        );
        assert!(q.cost_per_execution.abs_diff(Dollars::new(0.02)) < 1e-9);
    }

    #[test]
    fn ad_hoc_queries_not_extrapolated() {
        let mut s = StatisticsService::new(StatsConfig::default());
        s.ingest(rec("oneoff", 1.0, 5.0));
        s.ingest(rec("twice", 1.0, 0.1));
        s.ingest(rec("twice", 2.0, 0.1));
        for i in 0..5 {
            s.ingest(rec("steady", i as f64, 0.1));
        }
        let p = WorkloadPredictor::new();
        let predicted = p.predict(&s, SimTime::from_secs_f64(10.0 * 3600.0));
        let names: Vec<&str> = predicted.iter().map(|q| q.fingerprint.as_str()).collect();
        assert_eq!(names, vec!["steady"]);
    }

    #[test]
    fn spend_rate_totals() {
        let p = WorkloadPredictor::new();
        let predicted = vec![
            PredictedQuery {
                fingerprint: "a".into(),
                sql: "a".into(),
                rate_per_hour: 10.0,
                cost_per_execution: Dollars::new(0.05),
            },
            PredictedQuery {
                fingerprint: "b".into(),
                sql: "b".into(),
                rate_per_hour: 2.0,
                cost_per_execution: Dollars::new(1.0),
            },
        ];
        let rate = p.predicted_spend_rate(&predicted);
        assert!(rate.abs_diff(Dollars::new(2.5)) < 1e-12);
    }

    #[test]
    fn ranking_by_spend() {
        let mut s = StatisticsService::new(StatsConfig::default());
        for i in 0..5 {
            s.ingest(rec("cheap_frequent", i as f64, 0.001));
            s.ingest(rec("dear_frequent", i as f64, 1.0));
        }
        let p = WorkloadPredictor::new();
        let predicted = p.predict(&s, SimTime::from_secs_f64(10.0 * 3600.0));
        assert_eq!(predicted[0].fingerprint, "dear_frequent");
    }
}
