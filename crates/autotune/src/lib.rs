//! Cost-oriented auto-tuning (§4): the Statistics Service, workload
//! predictor, and What-If Service.
//!
//! The paper's key move: "leverage the elastic resources to guarantee the
//! same or better performance after applying a tuning action and then
//! evaluate whether this action reduces the operational cost of the system
//! in the long run" — every tuning decision reduces to dollars:
//!
//! > "the computation saved by substituting the MV into queries is worth
//! > `x` dollars per time unit, and the extra cost of storing and updating
//! > the MV is `y` dollars per time unit. If `x − y > 0`, this tuning
//! > action is likely to be beneficial."
//!
//! * [`statsvc::StatisticsService`] — ingests query execution logs (with a
//!   tunable sampling rate), maintains file/attribute access counts, the
//!   **weighted join graph**, per-fingerprint workload summaries, and
//!   run-time resource usage; its own ingest cost is metered (§4 requires
//!   the service itself to be cost-efficient).
//! * [`predictor::WorkloadPredictor`] — frequency-based forecast of
//!   queries/hour per fingerprint from the service's summaries.
//! * [`whatif::WhatIfService`] — evaluates [`whatif::TuningAction`]s
//!   (materialized views, reclustering) against the predicted workload using
//!   the cost estimator, producing a dollar-denominated
//!   [`whatif::ProposalReport`] with `x`, `y`, the one-time build cost, and
//!   the break-even horizon — the "customer-understandable measure" the
//!   paper says today's tuners lack.

pub mod predictor;
pub mod statsvc;
pub mod whatif;

pub use predictor::{PredictedQuery, WorkloadPredictor};
pub use statsvc::{QueryLogRecord, StatisticsService, StatsConfig};
pub use whatif::{ProposalReport, TuningAction, WhatIfConfig, WhatIfService};
