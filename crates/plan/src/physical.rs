//! Physical plans: an arena tree of operators with cardinality annotations.
//!
//! The builder takes a [`BoundQuery`] plus a [`JoinTree`] shape and produces
//! the distributed operator tree: scans with pushed-down filters and pruned
//! partition lists, hash joins with exchange (repartition) decorations on
//! both inputs, hash aggregation, final projection, sort, gather and limit.
//! Every node carries estimated output rows/bytes, computed from catalog
//! statistics through the (optionally error-injecting) cardinality
//! estimator — these estimates are exactly what DOP planning consumes and
//! what the DOP monitor later compares against observation (§3.3).

use std::collections::BTreeSet;

use ci_catalog::{CardinalityEstimator, Catalog, ErrorInjector};
use ci_storage::pages::dictionary_page_bytes;
use ci_storage::value::DataType;
use ci_types::{CiError, Result, TableId};

use crate::binder::{BoundQuery, JoinEdge};
use crate::expr::{AggExpr, PlanExpr};
use crate::jointree::JoinTree;

/// Physical operator kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalOp {
    /// Scan of a base table with zone-map-pruned partitions and a pushed
    /// filter.
    Scan {
        /// Relation index in the bound query.
        rel: usize,
        /// Catalog table id.
        table_id: TableId,
        /// Indices of partitions surviving pruning.
        kept_parts: Vec<usize>,
        /// Pushed-down filter (over this relation's global slots).
        filter: Option<PlanExpr>,
    },
    /// Row filter.
    Filter {
        /// The predicate.
        pred: PlanExpr,
    },
    /// Projection producing fresh output slots.
    Project {
        /// Output expressions with names.
        exprs: Vec<(PlanExpr, String)>,
    },
    /// Hash repartition of the stream on key slots (streaming shuffle —
    /// no clean-cut materialization, per §3.3).
    ExchangeHash {
        /// Partitioning key slots (best effort; cost depends on bytes).
        key_slots: Vec<usize>,
    },
    /// Gather all partitions to one stream (final result collection or
    /// pre-merge for sorted output).
    Gather,
    /// Hash join; children are `[build, probe]`.
    HashJoin {
        /// Equi-join key pairs as (build-side slot, probe-side slot).
        keys: Vec<(usize, usize)>,
    },
    /// Hash aggregation.
    HashAgg {
        /// Group expressions over input slots.
        groups: Vec<PlanExpr>,
        /// Aggregates over input slots.
        aggs: Vec<AggExpr>,
        /// First output slot (groups then aggs).
        out_base: usize,
    },
    /// Sort by (slot, ascending) keys.
    Sort {
        /// Sort keys.
        keys: Vec<(usize, bool)>,
    },
    /// Row-count limit.
    Limit {
        /// Maximum rows.
        n: u64,
    },
}

impl PhysicalOp {
    /// Short operator name for plan display.
    pub fn name(&self) -> &'static str {
        match self {
            PhysicalOp::Scan { .. } => "Scan",
            PhysicalOp::Filter { .. } => "Filter",
            PhysicalOp::Project { .. } => "Project",
            PhysicalOp::ExchangeHash { .. } => "ExchangeHash",
            PhysicalOp::Gather => "Gather",
            PhysicalOp::HashJoin { .. } => "HashJoin",
            PhysicalOp::HashAgg { .. } => "HashAgg",
            PhysicalOp::Sort { .. } => "Sort",
            PhysicalOp::Limit { .. } => "Limit",
        }
    }

    /// `true` for operators that break a pipeline (consume all input before
    /// producing output): aggregation and sort. Hash-join builds break the
    /// *build* side only and are handled specially in decomposition.
    pub fn is_breaker(&self) -> bool {
        matches!(self, PhysicalOp::HashAgg { .. } | PhysicalOp::Sort { .. })
    }
}

/// One node of the physical plan arena.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalNode {
    /// The operator.
    pub op: PhysicalOp,
    /// Child node indices (evaluation inputs).
    pub children: Vec<usize>,
    /// Global slots carried in this node's output, in column order.
    pub out_slots: Vec<usize>,
    /// Estimated output rows.
    pub est_rows: f64,
    /// Estimated output bytes.
    pub est_bytes: f64,
}

/// A complete physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// Arena of nodes; children point into this vector.
    pub nodes: Vec<PhysicalNode>,
    /// Index of the root node.
    pub root: usize,
    /// Type of each slot (base, post-agg, then projection slots).
    pub slot_types: Vec<DataType>,
    /// Name of each slot.
    pub slot_names: Vec<String>,
    /// Average decoded width in bytes of each slot.
    pub slot_widths: Vec<f64>,
    /// Average *encoded* (wire) width in bytes of each slot — per-row page
    /// payload under the size-picked codec from catalog statistics,
    /// excluding one-time dictionary sections. Non-base slots fall back to
    /// the decoded type width.
    pub slot_encoded_widths: Vec<f64>,
    /// One-time dictionary transfer bytes of each slot (0 for non-dict
    /// columns): what an exchange of this slot ships once per stream before
    /// bit-packed ids take over.
    pub slot_dict_bytes: Vec<f64>,
}

impl PhysicalPlan {
    /// The node at `idx`.
    pub fn node(&self, idx: usize) -> &PhysicalNode {
        &self.nodes[idx]
    }

    /// Names of the query's output columns (root projection order).
    pub fn output_names(&self) -> Vec<String> {
        self.nodes[self.root]
            .out_slots
            .iter()
            .map(|&s| self.slot_names[s].clone())
            .collect()
    }

    /// Estimated decoded bytes per row of a node's output.
    pub fn row_width(&self, idx: usize) -> f64 {
        self.nodes[idx]
            .out_slots
            .iter()
            .map(|&s| self.slot_widths[s])
            .sum()
    }

    /// Estimated *encoded* (wire) bytes per row of a node's output — what an
    /// exchange actually puts on the fabric per row under the page codecs.
    pub fn encoded_row_width(&self, idx: usize) -> f64 {
        self.nodes[idx]
            .out_slots
            .iter()
            .map(|&s| self.slot_encoded_widths[s])
            .sum()
    }

    /// One-time dictionary bytes a wire transfer of this node's output ships
    /// before per-row ids take over (0 when no slot is dict-encoded).
    pub fn dict_wire_bytes(&self, idx: usize) -> f64 {
        self.nodes[idx]
            .out_slots
            .iter()
            .map(|&s| self.slot_dict_bytes[s])
            .sum()
    }

    /// Pretty-prints the plan as an indented tree (root first).
    pub fn display(&self) -> String {
        let mut out = String::new();
        self.fmt_node(self.root, 0, &mut out);
        out
    }

    fn fmt_node(&self, idx: usize, depth: usize, out: &mut String) {
        let n = &self.nodes[idx];
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} (rows≈{:.0}, bytes≈{:.0})\n",
            n.op.name(),
            n.est_rows,
            n.est_bytes
        ));
        for &c in &n.children {
            self.fmt_node(c, depth + 1, out);
        }
    }

    /// Structural sanity checks; used by tests and debug assertions.
    pub fn validate(&self) -> Result<()> {
        if self.root >= self.nodes.len() {
            return Err(CiError::Plan("root out of bounds".into()));
        }
        for (i, n) in self.nodes.iter().enumerate() {
            for &c in &n.children {
                if c >= i {
                    return Err(CiError::Plan(format!(
                        "node {i} has forward child {c} (not topological)"
                    )));
                }
            }
            let expected_children = match &n.op {
                PhysicalOp::Scan { .. } => 0,
                PhysicalOp::HashJoin { .. } => 2,
                _ => 1,
            };
            if n.children.len() != expected_children {
                return Err(CiError::Plan(format!(
                    "node {i} ({}) has {} children, expected {expected_children}",
                    n.op.name(),
                    n.children.len()
                )));
            }
            if !n.est_rows.is_finite() || n.est_rows < 0.0 {
                return Err(CiError::Plan(format!("node {i} has bad est_rows")));
            }
            for &s in &n.out_slots {
                if s >= self.slot_types.len() {
                    return Err(CiError::Plan(format!("node {i} carries unknown slot {s}")));
                }
            }
        }
        Ok(())
    }
}

/// Builds a physical plan for a bound query with the given join-tree shape.
///
/// `injector` perturbs filter/join estimates (pass
/// [`ErrorInjector::oracle`] for clean estimation). Estimation error flows
/// into DOP planning exactly as §3.3 describes.
pub fn build_plan(
    bound: &BoundQuery,
    tree: &JoinTree,
    catalog: &Catalog,
    injector: &mut ErrorInjector,
) -> Result<PhysicalPlan> {
    Builder {
        bound,
        catalog,
        est: CardinalityEstimator::new(),
        injector,
        nodes: Vec::new(),
        slot_types: bound.slot_types.clone(),
        slot_names: bound.slot_names.clone(),
        slot_widths: Vec::new(),
        slot_encoded_widths: Vec::new(),
        slot_dict_bytes: Vec::new(),
        applied_filters: Vec::new(),
    }
    .build(tree)
}

struct Builder<'a> {
    bound: &'a BoundQuery,
    catalog: &'a Catalog,
    est: CardinalityEstimator,
    injector: &'a mut ErrorInjector,
    nodes: Vec<PhysicalNode>,
    slot_types: Vec<DataType>,
    slot_names: Vec<String>,
    slot_widths: Vec<f64>,
    slot_encoded_widths: Vec<f64>,
    slot_dict_bytes: Vec<f64>,
    applied_filters: Vec<bool>,
}

impl<'a> Builder<'a> {
    fn build(mut self, tree: &JoinTree) -> Result<PhysicalPlan> {
        // Slot widths for base + post-agg slots, in both byte currencies.
        self.slot_widths = self.base_slot_widths()?;
        (self.slot_encoded_widths, self.slot_dict_bytes) = self.base_slot_encoded_widths()?;
        self.applied_filters = vec![false; self.bound.cross_filters.len()];

        if tree.relations().len() != self.bound.relations.len() {
            return Err(CiError::Plan(format!(
                "join tree covers {} relations, query has {}",
                tree.relations().len(),
                self.bound.relations.len()
            )));
        }

        let mut top = self.build_join(tree)?;

        // Constant cross filters (no relations referenced).
        for (i, (rels, pred)) in self.bound.cross_filters.iter().enumerate() {
            if !self.applied_filters[i] && rels.is_empty() {
                top = self.push_filter(top, pred.clone());
                self.applied_filters[i] = true;
            }
        }
        if let Some(missed) = self.applied_filters.iter().position(|a| !a) {
            return Err(CiError::Plan(format!(
                "cross filter {missed} never became applicable"
            )));
        }

        // Aggregation.
        if let Some(agg) = &self.bound.aggregate {
            let in_rows = self.nodes[top].est_rows;
            // Repartition on group keys before aggregating (skip for global
            // aggregates, which gather instead).
            let key_slots: Vec<usize> = agg
                .group_exprs
                .iter()
                .filter_map(|g| match g {
                    PlanExpr::Col(s) => Some(*s),
                    _ => None,
                })
                .collect();
            if agg.group_exprs.is_empty() {
                top = self.push_unary(
                    PhysicalOp::Gather,
                    top,
                    self.nodes[top].out_slots.clone(),
                    in_rows,
                );
            } else {
                top = self.push_unary(
                    PhysicalOp::ExchangeHash {
                        key_slots: key_slots.clone(),
                    },
                    top,
                    self.nodes[top].out_slots.clone(),
                    in_rows,
                );
            }
            let base = self.bound.base_slot_count();
            let ndvs: Vec<u64> = key_slots.iter().map(|&s| self.slot_ndv(s)).collect();
            let group_rows = if agg.group_exprs.is_empty() {
                1.0
            } else if ndvs.is_empty() {
                // Non-column group expressions: fall back to sqrt heuristic.
                in_rows.sqrt().max(1.0)
            } else {
                self.est.group_rows(in_rows, &ndvs)
            };
            let group_rows = self.injector.perturb(group_rows).max(1.0);
            let out_slots: Vec<usize> =
                (base..base + agg.group_exprs.len() + agg.aggs.len()).collect();
            top = self.push_node(
                PhysicalOp::HashAgg {
                    groups: agg.group_exprs.clone(),
                    aggs: agg.aggs.clone(),
                    out_base: base,
                },
                vec![top],
                out_slots,
                group_rows,
            );
            if let Some(h) = &agg.having {
                top = self.push_filter(top, h.clone());
            }
        }

        // Final projection: fresh slots.
        let proj_base = self.slot_types.len();
        let slot_ty = self.slot_type_fn();
        for (i, (e, name)) in self.bound.output.iter().enumerate() {
            let dt = e.data_type(&slot_ty)?;
            self.slot_types.push(dt);
            self.slot_names.push(name.clone());
            self.slot_widths.push(dt.width_estimate() as f64);
            // A projected bare column keeps its source slot's wire profile
            // (dict columns stay dict-encoded through projection); computed
            // expressions are charged at uncompressed type width.
            match e {
                PlanExpr::Col(s) if *s < self.slot_encoded_widths.len() => {
                    self.slot_encoded_widths.push(self.slot_encoded_widths[*s]);
                    self.slot_dict_bytes.push(self.slot_dict_bytes[*s]);
                }
                _ => {
                    self.slot_encoded_widths.push(dt.width_estimate() as f64);
                    self.slot_dict_bytes.push(0.0);
                }
            }
            let _ = i;
        }
        let out_slots: Vec<usize> = (proj_base..proj_base + self.bound.output.len()).collect();
        let rows = self.nodes[top].est_rows;
        top = self.push_node(
            PhysicalOp::Project {
                exprs: self.bound.output.clone(),
            },
            vec![top],
            out_slots,
            rows,
        );

        // Sort.
        if !self.bound.order_by.is_empty() {
            let keys: Vec<(usize, bool)> = self
                .bound
                .order_by
                .iter()
                .map(|&(out_idx, asc)| (proj_base + out_idx, asc))
                .collect();
            let rows = self.nodes[top].est_rows;
            let slots = self.nodes[top].out_slots.clone();
            top = self.push_unary(PhysicalOp::Sort { keys }, top, slots, rows);
        }

        // Gather to the client, then limit.
        let rows = self.nodes[top].est_rows;
        let slots = self.nodes[top].out_slots.clone();
        top = self.push_unary(PhysicalOp::Gather, top, slots, rows);
        if let Some(n) = self.bound.limit {
            let rows = self.nodes[top].est_rows.min(n as f64);
            let slots = self.nodes[top].out_slots.clone();
            top = self.push_unary(PhysicalOp::Limit { n }, top, slots, rows);
        }

        let plan = PhysicalPlan {
            nodes: self.nodes,
            root: top,
            slot_types: self.slot_types,
            slot_names: self.slot_names,
            slot_widths: self.slot_widths,
            slot_encoded_widths: self.slot_encoded_widths,
            slot_dict_bytes: self.slot_dict_bytes,
        };
        plan.validate()?;
        Ok(plan)
    }

    /// Recursively builds the join tree, inserting exchanges and applying
    /// cross filters as soon as their relations are covered.
    fn build_join(&mut self, tree: &JoinTree) -> Result<usize> {
        match tree {
            JoinTree::Leaf(rel) => self.build_scan(*rel),
            JoinTree::Join(l, r) => {
                // Right subtree is the build side, left the probe side
                // (see `JoinTree` docs).
                let probe = self.build_join(l)?;
                let build = self.build_join(r)?;
                let prels = l.relations();
                let brels = r.relations();

                // Join keys connecting the two sides: (build slot, probe slot).
                let keys: Vec<(usize, usize)> = self
                    .bound
                    .join_edges
                    .iter()
                    .filter_map(|e: &JoinEdge| {
                        if brels.contains(&e.left_rel) && prels.contains(&e.right_rel) {
                            Some((e.left_slot, e.right_slot))
                        } else if brels.contains(&e.right_rel) && prels.contains(&e.left_rel) {
                            Some((e.right_slot, e.left_slot))
                        } else {
                            None
                        }
                    })
                    .collect();
                if keys.is_empty() {
                    return Err(CiError::Plan(format!(
                        "join tree pairs unconnected relation sets {brels:?} and {prels:?} (cartesian products rejected)"
                    )));
                }

                // Repartition both sides on the join keys.
                let bslots = self.nodes[build].out_slots.clone();
                let brows = self.nodes[build].est_rows;
                let build = self.push_unary(
                    PhysicalOp::ExchangeHash {
                        key_slots: keys.iter().map(|k| k.0).collect(),
                    },
                    build,
                    bslots,
                    brows,
                );
                let pslots = self.nodes[probe].out_slots.clone();
                let prows = self.nodes[probe].est_rows;
                let probe = self.push_unary(
                    PhysicalOp::ExchangeHash {
                        key_slots: keys.iter().map(|k| k.1).collect(),
                    },
                    probe,
                    pslots,
                    prows,
                );

                // Join cardinality from the first key pair's NDVs.
                let (bk, pk) = keys[0];
                let j = self.est.join_rows(
                    self.nodes[build].est_rows,
                    self.slot_ndv(bk),
                    self.nodes[probe].est_rows,
                    self.slot_ndv(pk),
                );
                let j = self.injector.perturb(j);

                let mut out_slots = self.nodes[probe].out_slots.clone();
                out_slots.extend(&self.nodes[build].out_slots);
                let mut top = self.push_node(
                    PhysicalOp::HashJoin { keys },
                    vec![build, probe],
                    out_slots,
                    j,
                );

                // Cross filters now applicable?
                let covered: BTreeSet<usize> = prels.union(&brels).copied().collect();
                let filters: Vec<(usize, PlanExpr)> = self
                    .bound
                    .cross_filters
                    .iter()
                    .enumerate()
                    .filter(|(i, (rels, _))| {
                        !self.applied_filters[*i] && !rels.is_empty() && rels.is_subset(&covered)
                    })
                    .map(|(i, (_, p))| (i, p.clone()))
                    .collect();
                for (i, pred) in filters {
                    top = self.push_filter(top, pred);
                    self.applied_filters[i] = true;
                }
                Ok(top)
            }
        }
    }

    fn build_scan(&mut self, rel: usize) -> Result<usize> {
        let r = &self.bound.relations[rel];
        let entry = self.catalog.get(&r.table_name)?;
        let prune = entry.table.prune(&r.prune_bounds);
        // Rows surviving pruning are metadata-exact; selectivity on top is
        // estimated (and perturbable).
        let sel_rows = self.est.filter_rows(&entry.stats, &r.prune_bounds);
        let default_penalty =
            ci_catalog::cardinality::DEFAULT_SELECTIVITY.powi(r.unmodeled_filters as i32);
        let est_out = (sel_rows * default_penalty).max(1.0);
        let est_out = if r.local_filter.is_some() {
            self.injector.perturb(est_out)
        } else {
            est_out
        };
        let out_slots = self.bound.slots_of_relation(rel);
        Ok(self.push_node(
            PhysicalOp::Scan {
                rel,
                table_id: r.table_id,
                kept_parts: prune.kept,
                filter: r.local_filter.clone(),
            },
            Vec::new(),
            out_slots,
            est_out,
        ))
    }

    fn push_filter(&mut self, input: usize, pred: PlanExpr) -> usize {
        let in_rows = self.nodes[input].est_rows;
        let est = self
            .injector
            .perturb(in_rows * ci_catalog::cardinality::DEFAULT_SELECTIVITY)
            .max(1.0)
            .min(in_rows.max(1.0));
        let slots = self.nodes[input].out_slots.clone();
        self.push_node(PhysicalOp::Filter { pred }, vec![input], slots, est)
    }

    fn push_unary(
        &mut self,
        op: PhysicalOp,
        input: usize,
        out_slots: Vec<usize>,
        est_rows: f64,
    ) -> usize {
        self.push_node(op, vec![input], out_slots, est_rows)
    }

    fn push_node(
        &mut self,
        op: PhysicalOp,
        children: Vec<usize>,
        out_slots: Vec<usize>,
        est_rows: f64,
    ) -> usize {
        let width: f64 = out_slots.iter().map(|&s| self.slot_widths[s]).sum();
        self.nodes.push(PhysicalNode {
            op,
            children,
            out_slots,
            est_rows,
            est_bytes: est_rows * width,
        });
        self.nodes.len() - 1
    }

    /// NDV of a base slot from catalog statistics (1 for non-base slots).
    fn slot_ndv(&self, slot: usize) -> u64 {
        for r in &self.bound.relations {
            if slot >= r.global_offset && slot < r.global_offset + r.arity {
                if let Ok(entry) = self.catalog.get(&r.table_name) {
                    return entry.stats.columns[slot - r.global_offset].ndv.max(1);
                }
            }
        }
        1
    }

    fn base_slot_widths(&self) -> Result<Vec<f64>> {
        let mut widths = Vec::with_capacity(self.bound.slot_types.len());
        for r in &self.bound.relations {
            let entry = self.catalog.get(&r.table_name)?;
            for c in &entry.stats.columns {
                widths.push(if c.avg_width > 0.0 { c.avg_width } else { 8.0 });
            }
        }
        // Post-aggregate slots: width by type.
        for dt in &self.bound.slot_types[widths.len()..] {
            widths.push(dt.width_estimate() as f64);
        }
        Ok(widths)
    }

    /// Per-slot `(encoded wire width, one-time dictionary bytes)` from
    /// catalog statistics. Post-aggregate slots have no page stats and fall
    /// back to their decoded type width (conservative: exchanges of derived
    /// values are charged uncompressed).
    fn base_slot_encoded_widths(&self) -> Result<(Vec<f64>, Vec<f64>)> {
        let mut widths = Vec::with_capacity(self.bound.slot_types.len());
        let mut dict_bytes = Vec::with_capacity(self.bound.slot_types.len());
        for r in &self.bound.relations {
            let entry = self.catalog.get(&r.table_name)?;
            for c in &entry.stats.columns {
                widths.push(if c.avg_encoded_width > 0.0 {
                    c.avg_encoded_width
                } else if c.avg_width > 0.0 {
                    c.avg_width
                } else {
                    8.0
                });
                dict_bytes.push(
                    c.dictionary
                        .as_ref()
                        .map_or(0.0, |d| dictionary_page_bytes(d) as f64),
                );
            }
        }
        for dt in &self.bound.slot_types[widths.len()..] {
            widths.push(dt.width_estimate() as f64);
            dict_bytes.push(0.0);
        }
        Ok((widths, dict_bytes))
    }

    fn slot_type_fn(&self) -> impl Fn(usize) -> Result<DataType> + 'static {
        let types = self.slot_types.clone();
        move |s: usize| {
            types
                .get(s)
                .copied()
                .ok_or_else(|| CiError::Plan(format!("unknown slot {s}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use ci_sql::parse;
    use ci_storage::batch::RecordBatch;
    use ci_storage::column::ColumnData;
    use ci_storage::schema::{Field, Schema};
    use ci_storage::table::table_from_batch;

    use crate::binder::bind;

    use super::*;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let orders = Arc::new(Schema::of(vec![
            Field::new("o_id", DataType::Int64),
            Field::new("o_cust", DataType::Int64),
            Field::new("o_total", DataType::Float64),
        ]));
        let n = 1000i64;
        c.register(table_from_batch(
            TableId::new(0),
            "orders",
            RecordBatch::new(
                orders,
                vec![
                    ColumnData::Int64((0..n).collect()),
                    ColumnData::Int64((0..n).map(|i| i % 100).collect()),
                    ColumnData::Float64((0..n).map(|i| i as f64).collect()),
                ],
            )
            .unwrap(),
        ));
        let cust = Arc::new(Schema::of(vec![
            Field::new("c_id", DataType::Int64),
            Field::new("c_name", DataType::Utf8),
        ]));
        c.register(table_from_batch(
            TableId::new(1),
            "customers",
            RecordBatch::new(
                cust,
                vec![
                    ColumnData::Int64((0..100).collect()),
                    ColumnData::Utf8((0..100).map(|i| format!("c{i}")).collect()),
                ],
            )
            .unwrap(),
        ));
        let items = Arc::new(Schema::of(vec![
            Field::new("i_order", DataType::Int64),
            Field::new("i_qty", DataType::Int64),
        ]));
        c.register(table_from_batch(
            TableId::new(2),
            "items",
            RecordBatch::new(
                items,
                vec![
                    ColumnData::Int64((0..2000).map(|i| i % 1000).collect()),
                    ColumnData::Int64((0..2000).map(|i| i % 7).collect()),
                ],
            )
            .unwrap(),
        ));
        c
    }

    fn plan(sql: &str) -> PhysicalPlan {
        let cat = catalog();
        let b = bind(&parse(sql).unwrap(), &cat).unwrap();
        let order: Vec<usize> = (0..b.relations.len()).collect();
        let tree = JoinTree::left_deep(&order);
        build_plan(&b, &tree, &cat, &mut ErrorInjector::oracle()).unwrap()
    }

    #[test]
    fn single_table_plan_shape() {
        let p = plan("SELECT o_id FROM orders WHERE o_total > 500.0 LIMIT 10");
        p.validate().unwrap();
        let names: Vec<&str> = p.nodes.iter().map(|n| n.op.name()).collect();
        assert_eq!(names, vec!["Scan", "Project", "Gather", "Limit"]);
        // Scan estimate reflects the ~50% selectivity.
        assert!(
            (p.nodes[0].est_rows - 500.0).abs() < 60.0,
            "{}",
            p.nodes[0].est_rows
        );
        // Limit caps estimate.
        assert!(p.nodes[p.root].est_rows <= 10.0);
        assert_eq!(p.output_names(), vec!["o_id"]);
    }

    #[test]
    fn join_plan_has_exchanges_and_join() {
        let p = plan("SELECT o_id, c_name FROM orders o JOIN customers c ON o.o_cust = c.c_id");
        let names: Vec<&str> = p.nodes.iter().map(|n| n.op.name()).collect();
        assert_eq!(
            names,
            vec![
                "Scan",
                "Scan",
                "ExchangeHash",
                "ExchangeHash",
                "HashJoin",
                "Project",
                "Gather"
            ]
        );
        // Join estimate: 1000 * 100 / max(100, 100) = 1000.
        let join = p.nodes.iter().find(|n| n.op.name() == "HashJoin").unwrap();
        assert!((join.est_rows - 1000.0).abs() < 1.0, "{}", join.est_rows);
    }

    #[test]
    fn aggregate_plan_shape() {
        let p = plan(
            "SELECT o_cust, SUM(o_total) AS t FROM orders GROUP BY o_cust \
             HAVING SUM(o_total) > 100 ORDER BY t DESC LIMIT 5",
        );
        let names: Vec<&str> = p.nodes.iter().map(|n| n.op.name()).collect();
        assert_eq!(
            names,
            vec![
                "Scan",
                "ExchangeHash",
                "HashAgg",
                "Filter",
                "Project",
                "Sort",
                "Gather",
                "Limit"
            ]
        );
        let agg = p.nodes.iter().find(|n| n.op.name() == "HashAgg").unwrap();
        assert!((agg.est_rows - 100.0).abs() < 1.0, "{}", agg.est_rows);
    }

    #[test]
    fn global_aggregate_gathers() {
        let p = plan("SELECT COUNT(*) FROM orders");
        let names: Vec<&str> = p.nodes.iter().map(|n| n.op.name()).collect();
        assert_eq!(
            names,
            vec!["Scan", "Gather", "HashAgg", "Project", "Gather"]
        );
        let agg = p.nodes.iter().find(|n| n.op.name() == "HashAgg").unwrap();
        assert_eq!(agg.est_rows, 1.0);
    }

    #[test]
    fn three_way_join_left_deep() {
        let p = plan(
            "SELECT c_name, SUM(i_qty) FROM orders o \
             JOIN customers c ON o.o_cust = c.c_id \
             JOIN items i ON i.i_order = o.o_id \
             GROUP BY c_name",
        );
        p.validate().unwrap();
        let joins = p.nodes.iter().filter(|n| n.op.name() == "HashJoin").count();
        assert_eq!(joins, 2);
        let exchanges = p
            .nodes
            .iter()
            .filter(|n| n.op.name() == "ExchangeHash")
            .count();
        assert_eq!(exchanges, 5); // 2 per join + 1 before agg
    }

    #[test]
    fn bushy_tree_builds() {
        // items ⋈ orders on one side... need connectivity: (orders ⋈ customers) ⋈ items
        let cat = catalog();
        let b = bind(
            &parse(
                "SELECT o_id FROM orders o \
                 JOIN customers c ON o.o_cust = c.c_id \
                 JOIN items i ON i.i_order = o.o_id",
            )
            .unwrap(),
            &cat,
        )
        .unwrap();
        let bushy = JoinTree::Join(
            Box::new(JoinTree::Join(
                Box::new(JoinTree::Leaf(0)),
                Box::new(JoinTree::Leaf(1)),
            )),
            Box::new(JoinTree::Leaf(2)),
        );
        let p = build_plan(&b, &bushy, &cat, &mut ErrorInjector::oracle()).unwrap();
        p.validate().unwrap();
    }

    #[test]
    fn disconnected_tree_rejected() {
        let cat = catalog();
        let b = bind(
            &parse(
                "SELECT o_id FROM orders o \
                 JOIN customers c ON o.o_cust = c.c_id \
                 JOIN items i ON i.i_order = o.o_id",
            )
            .unwrap(),
            &cat,
        )
        .unwrap();
        // customers ⋈ items share no edge.
        let bad = JoinTree::Join(
            Box::new(JoinTree::Join(
                Box::new(JoinTree::Leaf(1)),
                Box::new(JoinTree::Leaf(2)),
            )),
            Box::new(JoinTree::Leaf(0)),
        );
        assert!(build_plan(&b, &bad, &cat, &mut ErrorInjector::oracle()).is_err());
    }

    #[test]
    fn incomplete_tree_rejected() {
        let cat = catalog();
        let b = bind(
            &parse("SELECT o_id FROM orders o JOIN customers c ON o.o_cust = c.c_id").unwrap(),
            &cat,
        )
        .unwrap();
        let partial = JoinTree::Leaf(0);
        assert!(build_plan(&b, &partial, &cat, &mut ErrorInjector::oracle()).is_err());
    }

    #[test]
    fn error_injection_changes_estimates() {
        let cat = catalog();
        let b = bind(
            &parse("SELECT o_id FROM orders WHERE o_total > 500.0").unwrap(),
            &cat,
        )
        .unwrap();
        let tree = JoinTree::left_deep(&[0]);
        let clean = build_plan(&b, &tree, &cat, &mut ErrorInjector::oracle()).unwrap();
        let noisy = build_plan(&b, &tree, &cat, &mut ErrorInjector::with_bound(1, 4.0)).unwrap();
        assert_ne!(clean.nodes[0].est_rows, noisy.nodes[0].est_rows);
        // Same plan with the same seed is reproducible.
        let noisy2 = build_plan(&b, &tree, &cat, &mut ErrorInjector::with_bound(1, 4.0)).unwrap();
        assert_eq!(noisy.nodes[0].est_rows, noisy2.nodes[0].est_rows);
    }

    #[test]
    fn display_is_tree_shaped() {
        let p = plan("SELECT COUNT(*) FROM orders");
        let d = p.display();
        assert!(d.contains("HashAgg"));
        assert!(d.contains("Scan"));
        assert!(d.lines().count() >= 4);
    }
}
